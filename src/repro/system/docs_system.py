"""DocsSystem — the full pipeline of Figure 1 behind one facade.

Lifecycle (mirroring the architecture figure's numbered flows):

1. ``prepare(dataset)`` — the ingest plane
   (:class:`repro.system.ingest.IngestPipeline`): batch-link every task
   against the KB, compute all domain vectors with the vectorised DVE,
   bulk-store the tasks, register their arena rows, then select golden
   tasks. ``prepare`` runs exactly once per system; a second call
   raises.
2. New worker arrives -> ``bootstrap`` with her golden-task answers
   (quality pre-test, Section 5.2).
3. Worker requests tasks -> ``assign`` (OTA: entropy-reduction benefit,
   Theorems 2-4, linear top-k).
4. Worker submits -> ``submit`` (incremental TI, Section 4.2), with the
   full iterative TI re-run every z submissions.
5. At any point after ``prepare``, ``add_tasks`` ingests *new* tasks
   mid-campaign through the same pipeline (live task growth — the
   streaming scenario the paper's fixed task set excludes); they join
   the assignable pool immediately.
6. ``finalize`` — final full TI; inferred truths returned to the
   requester.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.core.arena import AnswerLog
from repro.core.assignment import TaskAssigner
from repro.core.golden import select_golden_tasks
from repro.core.incremental import IncrementalTruthInference
from repro.core.quality_store import WorkerQualityStore
from repro.core.truth_inference import TruthInference
from repro.core.types import Answer, Task
from repro.datasets.base import CrowdDataset
from repro.errors import ValidationError
from repro.linking import EntityLinker
from repro.platform.storage import SystemDatabase
from repro.system.config import DocsConfig
from repro.system.ingest import IngestPipeline, IngestReport


class DocsSystem:
    """The domain-aware crowdsourcing system.

    Implements the :class:`repro.platform.amt_sim.CrowdEngine` protocol
    so it can be driven by :class:`repro.platform.PlatformSimulator`
    alongside the competitor engines.

    Args:
        config: system configuration (defaults follow the paper).
    """

    name = "DOCS"

    def __init__(self, config: Optional[DocsConfig] = None):
        self._config = config or DocsConfig()
        self._config.validate()
        self._db: Optional[SystemDatabase] = None
        self._incremental: Optional[IncrementalTruthInference] = None
        self._log: Optional[AnswerLog] = None
        self._store: Optional[WorkerQualityStore] = None
        self._assigner = TaskAssigner(hit_size=self._config.hit_size)
        self._bootstrapped: Set[str] = set()
        self._golden_truths: Dict[int, int] = {}
        #: Pristine golden-bootstrap qualities: the full iterative TI is
        #: (re)initialised from these, never from the incrementally
        #: drifted store (Section 4.1 initialises from golden tasks).
        self._golden_qualities: Dict[str, np.ndarray] = {}
        self._submissions_since_rerun = 0
        self._pipeline: Optional[IngestPipeline] = None

    @property
    def config(self) -> DocsConfig:
        """The active configuration."""
        return self._config

    @property
    def database(self) -> SystemDatabase:
        """The system's storage (tasks, answers, golden registry)."""
        if self._db is None:
            raise ValidationError("system not prepared; call prepare()")
        return self._db

    @property
    def quality_store(self) -> WorkerQualityStore:
        """The persistent worker model."""
        if self._store is None:
            raise ValidationError("system not prepared; call prepare()")
        return self._store

    # -- CrowdEngine protocol -------------------------------------------

    def prepare(self, dataset: CrowdDataset) -> None:
        """Build the ingest pipeline, run it over the dataset, and
        select golden tasks.

        ``prepare`` is single-shot by design: the golden selection, the
        worker-quality store, and the arena all key off the initial
        batch, so rebuilding them silently would discard campaign state.

        Raises:
            ValidationError: if the system is already prepared, or the
                dataset carries duplicate task ids.
        """
        if self._db is not None:
            raise ValidationError(
                "prepare() already ran for this DocsSystem; use "
                "add_tasks() to ingest more tasks, or build a new system"
            )
        m = dataset.taxonomy.size
        linker = EntityLinker(dataset.kb, top_c=self._config.top_c)

        # Build everything in locals and commit only after the ingest
        # succeeds: a rejected dataset (e.g. duplicate ids) must leave
        # the system un-prepared and retryable.
        db = SystemDatabase()
        store = WorkerQualityStore(
            m, default_quality=self._config.default_quality
        )
        incremental = IncrementalTruthInference(store)
        pipeline = IngestPipeline(db, incremental, linker)
        pipeline.ingest(dataset.tasks)

        golden_count = min(self._config.golden_count, len(dataset.tasks))
        golden_indices = select_golden_tasks(
            [t.domain_vector for t in dataset.tasks], golden_count
        )
        golden_ids = []
        golden_truths: Dict[int, int] = {}
        for idx in golden_indices:
            task = dataset.tasks[idx]
            if task.ground_truth is None:
                continue
            golden_ids.append(task.task_id)
            golden_truths[task.task_id] = task.ground_truth
        db.mark_golden(golden_ids)

        self._db = db
        self._store = store
        self._incremental = incremental
        self._log = AnswerLog(incremental.arena)
        self._pipeline = pipeline
        self._bootstrapped = set()
        self._golden_qualities = {}
        self._golden_truths = golden_truths
        self._submissions_since_rerun = 0

    def add_tasks(self, tasks: Sequence[Task]) -> IngestReport:
        """Ingest new tasks mid-campaign (live task growth).

        Runs the same staged pipeline as :meth:`prepare` — batch
        linking, vectorised DVE, bulk store, arena block registration —
        so the new tasks are immediately eligible for assignment and
        their answers flow through the same incremental/full TI as the
        initial batch. Golden tasks and existing worker qualities are
        unchanged.

        Args:
            tasks: the new tasks; ids must not collide with anything
                already ingested.

        Returns:
            The pipeline's :class:`repro.system.ingest.IngestReport`.

        Raises:
            ValidationError: if called before :meth:`prepare`, or on
                duplicate task ids.
        """
        if self._pipeline is None:
            raise ValidationError(
                "system not prepared; call prepare() before add_tasks()"
            )
        return self._pipeline.ingest(tasks)

    def golden_task_ids(self) -> List[int]:
        """Golden tasks assigned to every new worker."""
        return self.database.golden_ids

    def needs_bootstrap(self, worker_id: str) -> bool:
        """New workers are quality-tested before real assignments."""
        return (
            bool(self._golden_truths)
            and worker_id not in self._bootstrapped
            and worker_id not in self.quality_store
        )

    def bootstrap(self, worker_id: str, answers: Sequence[Answer]) -> None:
        """Initialise a new worker's quality from golden-task answers."""
        self._bootstrapped.add(worker_id)
        if not answers:
            return
        domain_vectors = {
            task.task_id: task.domain_vector
            for task in self.database.tasks()
        }
        stats = self.quality_store.initialize_from_golden(
            worker_id,
            {a.task_id: a.choice for a in answers},
            self._golden_truths,
            domain_vectors,
        )
        self._golden_qualities[worker_id] = (
            self.quality_store.quality_or_default(worker_id)
        )

    def assign(self, worker_id: str, k: Optional[int] = None) -> List[int]:
        """OTA: the k highest-benefit tasks this worker has not answered.

        Benefits are computed directly against the arena's persistent
        buffers; no per-arrival task state is materialised.
        """
        if self._incremental is None:
            raise ValidationError("system not prepared; call prepare()")
        answered = self.database.answers.tasks_answered_by(worker_id)
        quality = self.quality_store.blended_quality(worker_id)
        return self._assigner.assign(
            self._incremental.arena,
            quality,
            answered_by_worker=answered,
            k=k,
        )

    def submit(self, answer: Answer) -> None:
        """Ingest an answer: store it, update TI incrementally, and
        re-run the full iterative TI every z submissions."""
        if self._incremental is None:
            raise ValidationError("system not prepared; call prepare()")
        # Validate against the task before touching any store, so a bad
        # answer cannot leave the answer table, the incremental state,
        # and the answer log disagreeing with each other.
        ell = self._incremental.state(answer.task_id).num_choices
        if not 1 <= answer.choice <= ell:
            raise ValidationError(
                f"choice {answer.choice} outside [1, {ell}] for task "
                f"{answer.task_id}"
            )
        self.database.answers.insert(answer)
        self._incremental.submit(answer)
        self._log.append(answer)
        self._submissions_since_rerun += 1
        if self._submissions_since_rerun >= self._config.rerun_interval:
            self._run_full_inference()
            self._submissions_since_rerun = 0

    def finalize(self) -> Dict[int, int]:
        """Final full TI; returns task id -> inferred truth."""
        result = self._run_full_inference()
        truths = result.truths() if result is not None else {}
        complete: Dict[int, int] = {}
        for task in self.database.tasks():
            if task.task_id in truths:
                complete[task.task_id] = truths[task.task_id]
            else:
                state = self._incremental.state(task.task_id)
                complete[task.task_id] = state.inferred_truth()
        return complete

    # -- internals -------------------------------------------------------

    def _run_full_inference(self):
        if self._log is None or len(self._log) == 0:
            return None
        ti = TruthInference(
            max_iterations=self._config.ti_max_iterations,
            default_quality=self._config.default_quality,
        )
        # Initialise from the pristine golden-test qualities: warm
        # starts from the incrementally updated store would anchor EM to
        # the drift the incremental pass accumulates on low-weight
        # domains.
        initial = dict(self._golden_qualities)
        # The append-only log already holds the solver's index arrays;
        # no answer re-indexing or domain-vector re-stacking per re-run.
        result = ti.infer_from_log(self._log, initial_qualities=initial)
        self._incremental.resync_from_arena_result(result)
        return result
