"""DocsSystem — the full pipeline of Figure 1 behind one facade.

Lifecycle (mirroring the architecture figure's numbered flows):

1. ``prepare(dataset)`` — the ingest plane
   (:class:`repro.system.ingest.IngestPipeline`): batch-link every task
   against the KB, compute all domain vectors with the vectorised DVE,
   bulk-store the tasks, register their arena rows, then select golden
   tasks. ``prepare`` runs exactly once per system; a second call
   raises.
2. New worker arrives -> ``bootstrap`` with her golden-task answers
   (quality pre-test, Section 5.2).
3. Worker requests tasks -> ``assign`` (OTA: entropy-reduction benefit,
   Theorems 2-4, linear top-k).
4. Worker submits -> ``submit`` (incremental TI, Section 4.2), with the
   full iterative TI re-run every z submissions.
5. At any point after ``prepare``, ``add_tasks`` ingests *new* tasks
   mid-campaign through the same pipeline (live task growth — the
   streaming scenario the paper's fixed task set excludes); they join
   the assignable pool immediately.
6. ``finalize`` — final full TI; inferred truths returned to the
   requester.

**Durability.** With ``storage="sqlite"`` the campaign runs on
:class:`repro.platform.sqlite_storage.SqliteSystemDatabase`: the task
catalogue and golden registry persist at ingest time, and every
campaign event (submits, golden bootstraps) spills to the durable
``answers_log`` journal through a batched write-behind buffer
(:class:`repro.platform.journal.AnswerJournal`) — flushed every
``config.journal_batch_size`` events, on :meth:`checkpoint`, and on
:meth:`close`. A crashed campaign is rebuilt by
:meth:`DocsSystem.resume`, which replays the journal through the same
ingest and serving code paths a live campaign uses, reproducing the
arena buffers, incremental-TI posteriors, worker qualities, and rerun
cursor exactly as they stood at the last flush.

**Compacted snapshots.** Full replay is O(campaign length). Every
``config.snapshot_every_batches`` flushed journal batches — and on
every :meth:`checkpoint` / :meth:`close` — the system also serialises
its hot state (arena buffers, campaign worker model, golden
qualities, rerun cursor) into ``snapshot_*`` tables, atomically with a
journal flush and compacted to the single newest image.
:meth:`resume` then loads the snapshot and replays only the journal
tail beyond its watermark — O(n + tail) instead of O(campaign). A
missing or corrupt snapshot is never fatal: resume falls back to full
replay.

**Graceful degradation.** Durability failures on serving paths —
exhausted lock-contention retries on a journal flush, a snapshot or
shared-store export hitting ``sqlite3.Error`` — do not take the
campaign down. The system drops to an explicit **degraded** mode
(:meth:`durability_status`): accepted answers keep serving from the
in-memory indexes and stay buffered in the journal's pending queue,
shared-store export deltas queue in a backlog, and every entry into
degraded mode is logged loudly. :meth:`checkpoint` retries the durable
write; on success it drains the backlog and restores ``durable`` mode
with zero accepted answers lost. Only ``sqlite3.Error`` degrades —
anything else (validation errors, an injected
:class:`~repro.platform.faults.CrashPoint`) propagates unchanged.

**Cross-requester worker model.** The paper's Section 4.2 maintains
worker quality *in the database across requesters*. Passing
``worker_store=`` (typically a durable
:class:`repro.platform.sqlite_storage.SqliteWorkerQualityStore` shared
by many campaigns) turns that on: workers already known to the shared
store skip the golden pre-test and enter the campaign seeded with
their stored (quality, weight) statistics, and the campaign merges its
own batch estimates back into the shared store — Theorem-1 deltas at
every full-TI re-run boundary, plus each worker's golden-test estimate
at bootstrap time.
"""

from __future__ import annotations

import logging
import multiprocessing
import sqlite3
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.arena import AnswerLog
from repro.core.assignment import TaskAssigner
from repro.core.golden import select_golden_tasks
from repro.core.incremental import IncrementalTruthInference
from repro.core.quality_store import WorkerQualityStore
from repro.core.serving import AssignmentIndex
from repro.core.shared_arena import SharedStateArena
from repro.core.truth_inference import TruthInference
from repro.core.types import Answer, Task
from repro.datasets.base import CrowdDataset
from repro.errors import (
    JournalCorruptionError,
    ServingPoolError,
    UnknownWorkerError,
    ValidationError,
)
from repro.kb.knowledge_base import KnowledgeBase
from repro.linking import EntityLinker
from repro.platform.journal import (
    KIND_ANSWER,
    KIND_BOOTSTRAP_ANSWER,
    KIND_BOOTSTRAP_DONE,
)
from repro.platform.retry import RetryPolicy
from repro.platform.sqlite_storage import (
    CampaignSnapshot,
    SqliteSystemDatabase,
)
from repro.platform.storage import SystemDatabase
from repro.system.config import DocsConfig
from repro.system.ingest import IngestPipeline, IngestReport
from repro.system.parallel import ServingPool

logger = logging.getLogger(__name__)

#: Supported storage backends.
STORAGE_MODES = ("memory", "sqlite")


class DocsSystem:
    """The domain-aware crowdsourcing system.

    Implements the :class:`repro.platform.amt_sim.CrowdEngine` protocol
    so it can be driven by :class:`repro.platform.PlatformSimulator`
    alongside the competitor engines.

    Args:
        config: system configuration (defaults follow the paper).
        storage: ``"memory"`` (default; fastest, nothing survives the
            process) or ``"sqlite"`` (durable: tasks, golden registry,
            the answer journal, and compacted hot-state snapshots live
            in one SQLite file, and the campaign can be resumed from it
            with :meth:`resume`).
        path: the SQLite database path; required with
            ``storage="sqlite"`` (pass ``":memory:"`` explicitly for an
            ephemeral throwaway database).
        worker_store: an optional *shared, cross-campaign* worker model
            (any object with the
            :class:`repro.core.quality_store.WorkerQualityStore`
            interface, typically a durable
            :class:`repro.platform.sqlite_storage.SqliteWorkerQualityStore`
            shared by many campaigns). Workers it knows skip the golden
            pre-test and are seeded from it; the campaign merges its
            Theorem-1 batch estimates back at re-run boundaries. The
            campaign does not own the store and never closes it.
    """

    name = "DOCS"

    def __init__(
        self,
        config: Optional[DocsConfig] = None,
        *,
        storage: str = "memory",
        path: Optional[str] = None,
        worker_store: Optional[WorkerQualityStore] = None,
    ):
        self._config = config or DocsConfig()
        self._config.validate()
        if storage not in STORAGE_MODES:
            raise ValidationError(
                f"unknown storage mode {storage!r}; expected one of "
                f"{STORAGE_MODES}"
            )
        if storage == "sqlite" and path is None:
            raise ValidationError(
                "storage='sqlite' requires a database path; pass "
                "path=... (use ':memory:' explicitly for an ephemeral "
                "database)"
            )
        self._storage = storage
        self._path = path
        self._db: Optional[SystemDatabase] = None
        self._incremental: Optional[IncrementalTruthInference] = None
        self._log: Optional[AnswerLog] = None
        self._store: Optional[WorkerQualityStore] = None
        self._assigner = TaskAssigner(hit_size=self._config.hit_size)
        #: The serving-plane index (built on prepare/resume when
        #: ``config.serve_index``); row-wise invalidation rides the
        #: arena's write epochs, so add_tasks/submit/re-runs need no
        #: explicit hooks here.
        self._serving_index: Optional[AssignmentIndex] = None
        #: The multi-process serving pool (built on prepare/resume when
        #: ``config.workers`` >= 1 over a shared-memory arena); arena
        #: mutations quiesce it through :meth:`_arena_write`.
        self._pool: Optional[ServingPool] = None
        self._bootstrapped: Set[str] = set()
        self._golden_truths: Dict[int, int] = {}
        #: Pristine golden-bootstrap qualities: the full iterative TI is
        #: (re)initialised from these, never from the incrementally
        #: drifted store (Section 4.1 initialises from golden tasks).
        self._golden_qualities: Dict[str, np.ndarray] = {}
        self._submissions_since_rerun = 0
        self._pipeline: Optional[IngestPipeline] = None
        #: The shared cross-campaign worker model (None = campaign-local
        #: qualities only, the pre-PR-4 behaviour).
        self._shared_store = worker_store
        #: Workers whose campaign stats were seeded from the shared store.
        self._seeded: Set[str] = set()
        #: Per-worker (quality, weight) last derived from a full-TI
        #: re-run — the Theorem-1 baseline for shared-store delta
        #: exports. Maintained even without a shared store so one can be
        #: attached mid-campaign.
        self._exported_log: Dict[
            str, Tuple[np.ndarray, np.ndarray]
        ] = {}
        #: journal.flushed_batches as of the last snapshot (the
        #: auto-snapshot trigger's baseline).
        self._last_snapshot_batch = 0
        #: True while resume() replays the journal: suppresses
        #: shared-store exports (the original run already made them)
        #: and snapshot writes.
        self._replaying = False
        #: Filled by resume(): {"snapshot_seq": int | None,
        #: "tail_entries": int} (plus "salvage" under repair=True).
        self._resume_info: Optional[Dict[str, object]] = None
        #: True while durable writes are failing: answers buffer in
        #: memory (journal pending), exports queue in
        #: ``_pending_shared_exports``, serving continues.
        self._degraded = False
        #: Why the campaign degraded (first failure's description).
        self._degraded_reason: Optional[str] = None
        #: Shared-store deltas (worker_id, Δmass, Δu) that could not be
        #: merged while degraded; drained by :meth:`checkpoint`.
        self._pending_shared_exports: List[
            Tuple[str, np.ndarray, np.ndarray]
        ] = []

    @property
    def config(self) -> DocsConfig:
        """The active configuration."""
        return self._config

    @property
    def storage(self) -> str:
        """The storage mode: ``"memory"`` or ``"sqlite"``."""
        return self._storage

    @property
    def path(self) -> Optional[str]:
        """The SQLite database path (``None`` in memory mode)."""
        return self._path

    @property
    def database(self) -> SystemDatabase:
        """The system's storage (tasks, answers, golden registry)."""
        if self._db is None:
            raise ValidationError("system not prepared; call prepare()")
        return self._db

    @property
    def quality_store(self) -> WorkerQualityStore:
        """The campaign-local worker model."""
        if self._store is None:
            raise ValidationError("system not prepared; call prepare()")
        return self._store

    @property
    def shared_worker_store(self) -> Optional[WorkerQualityStore]:
        """The shared cross-campaign worker model, if attached."""
        return self._shared_store

    @property
    def serving_index(self) -> Optional[AssignmentIndex]:
        """The serving-plane benefit index (``None`` before
        :meth:`prepare`, or when ``config.serve_index`` is off)."""
        return self._serving_index

    @property
    def serving_pool(self) -> Optional[ServingPool]:
        """The multi-process serving pool (``None`` before
        :meth:`prepare`, with ``config.workers == 0``, or after the
        pool degraded/closed)."""
        return self._pool

    @property
    def resume_info(self) -> Optional[Dict[str, object]]:
        """How the system was rebuilt, on a resumed system.

        ``{"snapshot_seq": watermark or None, "tail_entries": n}`` —
        ``snapshot_seq`` is ``None`` when resume fell back to full
        journal replay. ``None`` on systems that were never resumed.
        """
        return self._resume_info

    def attach_worker_store(self, worker_store: WorkerQualityStore) -> None:
        """Attach a shared cross-campaign worker model mid-campaign.

        Useful after :meth:`resume`, which needs the task catalogue to
        know the taxonomy size a store must match. Export semantics on
        first contact: a worker the store does not know receives the
        campaign's *full current estimate* (a bare post-attachment
        delta could encode an out-of-range revision against a store
        with no base mass); a worker the store already knows receives
        deltas from the attachment-time baseline onward.

        Raises:
            ValidationError: if a store is already attached, or the
                store's taxonomy size disagrees with the campaign's.
        """
        if self._shared_store is not None:
            raise ValidationError(
                "a shared worker store is already attached"
            )
        if self._incremental is not None and (
            worker_store.num_domains
            != self._incremental.arena.num_domains
        ):
            raise ValidationError(
                f"shared worker store covers "
                f"{worker_store.num_domains} domains but the campaign "
                f"taxonomy has {self._incremental.arena.num_domains}"
            )
        self._shared_store = worker_store

    # -- CrowdEngine protocol -------------------------------------------

    def prepare(self, dataset: CrowdDataset) -> None:
        """Build the ingest pipeline, run it over the dataset, and
        select golden tasks.

        ``prepare`` is single-shot by design: the golden selection, the
        worker-quality store, and the arena all key off the initial
        batch, so rebuilding them silently would discard campaign state.

        Raises:
            ValidationError: if the system is already prepared (use
                :meth:`add_tasks` to grow the pool, or build a new
                system), or the dataset carries duplicate task ids
                (deduplicate it first).
        """
        if self._db is not None:
            raise ValidationError(
                "prepare() already ran for this DocsSystem; use "
                "add_tasks() to ingest more tasks, or build a new system"
            )
        m = dataset.taxonomy.size
        if self._shared_store is not None and (
            self._shared_store.num_domains != m
        ):
            raise ValidationError(
                f"shared worker store covers "
                f"{self._shared_store.num_domains} domains but the "
                f"dataset taxonomy has {m}"
            )
        linker = EntityLinker(dataset.kb, top_c=self._config.top_c)

        # Build everything in locals and commit only after the ingest
        # succeeds: a rejected dataset (e.g. duplicate ids) must leave
        # the system un-prepared and retryable.
        db = self._make_database()
        shared_arena = self._make_arena(m)
        try:
            store = WorkerQualityStore(
                m, default_quality=self._config.default_quality
            )
            incremental = IncrementalTruthInference(
                store, arena=shared_arena
            )
            pipeline = IngestPipeline(
                db, incremental, linker,
                link_workers=self._link_workers(),
            )
            pipeline.ingest(dataset.tasks)

            golden_count = min(
                self._config.golden_count, len(dataset.tasks)
            )
            golden_indices = select_golden_tasks(
                [t.domain_vector for t in dataset.tasks], golden_count
            )
            golden_ids = []
            golden_truths: Dict[int, int] = {}
            for idx in golden_indices:
                task = dataset.tasks[idx]
                if task.ground_truth is None:
                    continue
                golden_ids.append(task.task_id)
                golden_truths[task.task_id] = task.ground_truth
            db.mark_golden(golden_ids)
        except Exception:
            if hasattr(db, "close"):
                db.close()
            if shared_arena is not None:
                shared_arena.close()
            raise

        if getattr(db, "journal", None) is not None:
            db.answers.bind_row_resolver(incremental.arena.global_row)
        self._db = db
        self._store = store
        self._incremental = incremental
        self._log = AnswerLog(incremental.arena)
        self._pipeline = pipeline
        self._bootstrapped = set()
        self._golden_qualities = {}
        self._golden_truths = golden_truths
        self._submissions_since_rerun = 0
        self._build_serving_index()

    def _build_serving_index(self) -> None:
        """Stand up the AssignmentIndex over the freshly built arena.

        Lifecycle note: this runs once per prepare/resume. Later state
        changes — ``add_tasks`` growth blocks, per-answer incremental
        updates, full-TI resyncs, snapshot overlays — invalidate the
        index row-wise through the arena's write epochs, so nothing
        else needs to call back in here.

        With ``config.workers`` >= 1 (and the arena in shared memory —
        see :meth:`_make_arena`) this also forks the
        :class:`repro.system.parallel.ServingPool`. The owner-side
        index stays attached as the degradation fallback: a pool whose
        worker dies is detached on the spot and arrivals keep being
        served single-process with identical picks.
        """
        if not self._config.serve_index:
            return
        arena = self._incremental.arena
        self._serving_index = AssignmentIndex(
            arena,
            bucket_granularity=self._config.serve_bucket_granularity,
            frontier_size=self._config.serve_frontier_size,
            max_buckets=self._config.serve_max_buckets,
        )
        self._assigner.attach_index(self._serving_index)
        if self._config.workers >= 1 and isinstance(
            arena, SharedStateArena
        ):
            self._pool = ServingPool(
                arena,
                self._config.workers,
                bucket_granularity=(
                    self._config.serve_bucket_granularity
                ),
                frontier_size=self._config.serve_frontier_size,
                max_buckets=self._config.serve_max_buckets,
            )
            self._assigner.attach_pool(self._pool)

    def _make_arena(self, num_domains: int) -> Optional[SharedStateArena]:
        """A shared-memory arena when ``config.workers`` asks for one.

        Returns ``None`` — let the incremental engine build its
        ordinary heap arena — when workers are off or the platform
        lacks the ``fork`` start method the pool needs (logged; the
        campaign serves single-process rather than failing).
        """
        if self._config.workers < 1:
            return None
        if "fork" not in multiprocessing.get_all_start_methods():
            logger.warning(
                "config.workers=%d needs the 'fork' start method, "
                "which this platform lacks; serving single-process",
                self._config.workers,
            )
            return None
        return SharedStateArena(num_domains)

    def _link_workers(self) -> int:
        """Stage-1 ingest linking fan-out (``0`` below two workers —
        one forked child would only add fork overhead)."""
        workers = self._config.workers
        return workers if workers >= 2 else 0

    def _rerun_shards(self) -> int:
        """Full-TI rerun shard count (``0`` below two workers)."""
        workers = self._config.workers
        return workers if workers >= 2 else 0

    @contextmanager
    def _arena_write(self) -> Iterator[None]:
        """Run an arena mutation under the pool's writer barrier.

        Without a pool — or nested inside an outer write section (a
        full-TI resync triggered by a submit already inside one) —
        this is a plain pass-through. A pool that cannot quiesce (a
        worker died) is detached and closed, and the mutation proceeds
        single-process: the write itself must happen regardless of
        pool health.
        """
        pool = self._pool
        if pool is None or pool.state != "serving":
            yield
            return
        try:
            section = pool.write_section()
            section.__enter__()
        except ServingPoolError as exc:
            logger.warning(
                "serving pool failed to quiesce (%s); detaching and "
                "continuing single-process", exc,
            )
            self._detach_pool()
            yield
            return
        try:
            yield
        finally:
            section.__exit__(None, None, None)

    def _detach_pool(self) -> None:
        """Drop and close the serving pool (idempotent, ``None``-safe)."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        self._assigner.attach_pool(None)
        try:
            pool.close()
        except Exception:  # pragma: no cover - shutdown best effort
            logger.exception("serving pool close failed")

    def _shutdown_parallel(self) -> None:
        """Stop the pool and unlink the shared arena. Idempotent.

        Ordering matters: workers detach before the owner unlinks, so
        no select can race the teardown. After this the system no
        longer serves (its arena views are gone) — callers reach here
        only through :meth:`close`.
        """
        self._detach_pool()
        incremental = self._incremental
        if incremental is not None and isinstance(
            incremental.arena, SharedStateArena
        ):
            incremental.arena.close()

    def _commit_retry_policy(self) -> RetryPolicy:
        """The config-derived backoff policy for durable commits."""
        return RetryPolicy(
            attempts=self._config.commit_retry_attempts,
            base_delay=self._config.commit_retry_base_delay,
            max_delay=self._config.commit_retry_max_delay,
        )

    def _make_database(self) -> SystemDatabase:
        if self._storage == "memory":
            return SystemDatabase()
        db = SqliteSystemDatabase(
            self._path,
            journal_batch_size=self._config.journal_batch_size,
            busy_timeout_ms=self._config.busy_timeout_ms,
            retry=self._commit_retry_policy(),
        )
        if len(db) > 0:
            db.close()
            raise ValidationError(
                f"database at {self._path!r} already holds a campaign; "
                f"continue it with DocsSystem.resume({self._path!r}) or "
                "choose a fresh path"
            )
        return db

    def add_tasks(self, tasks: Sequence[Task]) -> IngestReport:
        """Ingest new tasks mid-campaign (live task growth).

        Runs the same staged pipeline as :meth:`prepare` — batch
        linking, vectorised DVE, bulk store, arena block registration —
        so the new tasks are immediately eligible for assignment and
        their answers flow through the same incremental/full TI as the
        initial batch. Golden tasks and existing worker qualities are
        unchanged.

        Args:
            tasks: the new tasks; ids must not collide with anything
                already ingested.

        Returns:
            The pipeline's :class:`repro.system.ingest.IngestReport`.

        Raises:
            ValidationError: if called before :meth:`prepare`, or on
                duplicate task ids (the message names the offending id;
                deduplicate the batch or assign fresh ids).
        """
        if self._pipeline is None:
            raise ValidationError(
                "system not prepared; call prepare() before add_tasks()"
            )
        # Growth re-maps arena segments; serving workers must be parked
        # at their queues while it happens (they follow the new
        # generation on their next request).
        with self._arena_write():
            return self._pipeline.ingest(tasks)

    def golden_task_ids(self) -> List[int]:
        """Golden tasks assigned to every new worker."""
        return self.database.golden_ids

    def needs_bootstrap(self, worker_id: str) -> bool:
        """New workers are quality-tested before real assignments.

        Workers already known to the shared cross-campaign store are
        *not* new: they skip the golden pre-test and enter this
        campaign seeded with their stored statistics (Section 4.2's
        worker model maintained across requesters).
        """
        if self._seed_from_shared(worker_id):
            return False
        return (
            bool(self._golden_truths)
            and worker_id not in self._bootstrapped
            and worker_id not in self.quality_store
        )

    def _seed_from_shared(self, worker_id: str) -> bool:
        """Seed a shared-store worker into the campaign model (once).

        Returns:
            True if the worker is covered by the shared store (seeded
            now or earlier); False if there is nothing to seed from.
        """
        if self._shared_store is None or self._store is None:
            return False
        if worker_id in self._seeded:
            return True
        if (
            worker_id in self._bootstrapped
            or worker_id in self._store
        ):
            # The campaign already has its own evidence for this
            # worker; never clobber it with the shared prior.
            return False
        if worker_id not in self._shared_store:
            return False
        stats = self._shared_store.get(worker_id)
        self._store.set(worker_id, stats.quality, stats.weight)
        # The shared prior plays the golden-test role for full-TI
        # (re)initialisation, exactly like a pre-test quality would.
        self._golden_qualities[worker_id] = (
            self._shared_store.quality_or_default(worker_id)
        )
        self._bootstrapped.add(worker_id)
        self._seeded.add(worker_id)
        return True

    def _check_bootstrapped(self, worker_id: str) -> None:
        """Reject assignment for workers still owing the golden pre-test.

        Seeding from the shared store counts as bootstrapped (the
        stored prior plays the pre-test's role); with no golden tasks
        every worker is assignable cold. The raise replaces the bare
        ``KeyError`` this pre-bootstrap path used to surface: the
        error now names the id and how to proceed, and is a
        :class:`~repro.errors.ValidationError` the HTTP service maps
        to 404.
        """
        if self.needs_bootstrap(worker_id):
            raise UnknownWorkerError(
                worker_id,
                context=(
                    "in this campaign: the worker has not completed "
                    "the golden bootstrap pre-test — fetch "
                    "golden_task_ids() and call bootstrap() with their "
                    "answers first (workers known to a shared worker "
                    "store skip the pre-test)"
                ),
            )

    def bootstrap(self, worker_id: str, answers: Sequence[Answer]) -> None:
        """Initialise a new worker's quality from golden-task answers.

        Durability failures (``sqlite3.Error`` on the journal flush or
        the shared-store merge) degrade the campaign instead of failing
        the bootstrap: the worker's quality is live in memory, the
        journal retains the bootstrap events in its pending buffer, and
        the shared-store delta queues for :meth:`checkpoint` to drain.
        """
        self._restore_bootstrap(worker_id, answers)
        journal = getattr(self.database, "journal", None)
        if journal is not None:
            arena = self._incremental.arena
            rows = [arena.global_row(a.task_id) for a in answers]
            try:
                journal.record_bootstrap(worker_id, answers, rows)
            except sqlite3.Error as exc:
                # The bootstrap events are retained in the pending
                # buffer; only the batch-full flush failed.
                self._enter_degraded("journal flush during bootstrap", exc)
        if self._shared_store is not None and answers:
            # The golden pre-test is campaign evidence the shared store
            # would otherwise never see (full-TI re-runs cover only the
            # answer log). Durable-first: flush the just-recorded
            # bootstrap before merging, so a crash cannot leave golden
            # evidence in the store for a bootstrap the campaign file
            # never recorded. While the flush is failing the merge is
            # queued, not applied — same rule, degraded spelling. The
            # merge itself goes through the atomic delta primitive —
            # other campaigns may be exporting to the same file
            # concurrently.
            durable = True
            if journal is not None:
                try:
                    journal.flush()
                except sqlite3.Error as exc:
                    self._enter_degraded(
                        "journal flush during bootstrap", exc
                    )
                    durable = False
            stats = self.quality_store.get(worker_id)
            delta_mass = stats.quality * stats.weight
            delta_u = stats.weight.copy()
            if durable:
                try:
                    self._shared_store.apply_batch_delta(
                        worker_id, delta_mass, delta_u
                    )
                except sqlite3.Error as exc:
                    self._enter_degraded(
                        "shared-store bootstrap export", exc
                    )
                    self._pending_shared_exports.append(
                        (worker_id, delta_mass, delta_u)
                    )
            else:
                self._pending_shared_exports.append(
                    (worker_id, delta_mass, delta_u)
                )
        self._maybe_auto_snapshot()

    def _restore_bootstrap(
        self, worker_id: str, answers: Sequence[Answer]
    ) -> None:
        """Apply a golden bootstrap without journaling it (shared by
        the live path and journal replay)."""
        self._bootstrapped.add(worker_id)
        if not answers:
            return
        domain_vectors = {
            a.task_id: self.database.task(a.task_id).domain_vector
            for a in answers
        }
        self.quality_store.initialize_from_golden(
            worker_id,
            {a.task_id: a.choice for a in answers},
            self._golden_truths,
            domain_vectors,
        )
        self._golden_qualities[worker_id] = (
            self.quality_store.quality_or_default(worker_id)
        )

    def assign(self, worker_id: str, k: Optional[int] = None) -> List[int]:
        """OTA: the k highest-benefit tasks this worker has not answered.

        Benefits are computed directly against the arena's persistent
        buffers; no per-arrival task state is materialised. With
        ``config.serve_index`` (the default) the arrival is served from
        the :class:`repro.core.serving.AssignmentIndex`'s cached
        benefit columns — only rows dirtied since the worker's last
        identical-quality arrival are re-evaluated, and the picks are
        bit-identical to a full-pool evaluation.

        Raises:
            ValidationError: if the system is not prepared.
            UnknownWorkerError: if the campaign runs a golden pre-test
                and this worker has not completed it (and no shared
                store knows her) — historically this pre-bootstrap path
                surfaced as a bare ``KeyError``; it now names the id
                and the remediation so callers (and the HTTP service,
                which maps it to 404) can route the worker to
                :meth:`bootstrap` first.
        """
        if self._incremental is None:
            raise ValidationError("system not prepared; call prepare()")
        self._check_bootstrapped(worker_id)
        answered = self.database.answers.tasks_answered_by(worker_id)
        quality = self.quality_store.blended_quality(worker_id)
        return self._assigner.assign(
            self._incremental.arena,
            quality,
            answered_by_worker=answered,
            k=k,
        )

    def assign_many(
        self, worker_ids: Sequence[str], k: Optional[int] = None
    ) -> List[List[int]]:
        """One HIT per arriving worker, served as a single batch.

        With ``config.workers`` the selects fan out across the serving
        pool's processes and evaluate concurrently; without one the
        arrivals run through the same strategy ladder :meth:`assign`
        uses. Picks are bit-identical to calling :meth:`assign` per
        worker in order, either way.

        Args:
            worker_ids: the arriving workers (duplicates allowed; each
                occurrence is served independently).
            k: HIT size override applied to every arrival.

        Returns:
            One task-id list per worker id, order preserved.
        """
        if self._incremental is None:
            raise ValidationError("system not prepared; call prepare()")
        arrivals = []
        for worker_id in worker_ids:
            self._check_bootstrapped(worker_id)
            answered = self.database.answers.tasks_answered_by(
                worker_id
            )
            quality = self.quality_store.blended_quality(worker_id)
            arrivals.append((quality, answered))
        return self._assigner.assign_many(
            self._incremental.arena, arrivals, k=k
        )

    def submit(self, answer: Answer) -> None:
        """Ingest an answer: store it, update TI incrementally, and
        re-run the full iterative TI every z submissions."""
        if self._incremental is None:
            raise ValidationError("system not prepared; call prepare()")
        # Validate against the task before touching any store, so a bad
        # answer cannot leave the answer table, the incremental state,
        # and the answer log disagreeing with each other.
        ell = self._incremental.state(answer.task_id).num_choices
        if not 1 <= answer.choice <= ell:
            raise ValidationError(
                f"choice {answer.choice} outside [1, {ell}] for task "
                f"{answer.task_id}"
            )
        self._seed_from_shared(answer.worker_id)
        try:
            self.database.answers.insert(answer)
        except sqlite3.Error as exc:
            # The in-memory index accepted the answer and the journal
            # retained it in the pending buffer before the batch-full
            # flush failed — nothing is dropped, the event is just not
            # durable yet. Serve on, degraded.
            self._enter_degraded("journal flush during submit", exc)
        with self._arena_write():
            self._apply_answer(answer)
        self._maybe_auto_snapshot()

    def _apply_answer(self, answer: Answer) -> None:
        """Drive one answer through the serving plane: incremental TI,
        the answer log, and the every-z full re-run (shared by the live
        submit path and journal replay)."""
        self._incremental.submit(answer)
        self._log.append(answer)
        self._submissions_since_rerun += 1
        if self._submissions_since_rerun >= self._config.rerun_interval:
            self._run_full_inference()
            self._submissions_since_rerun = 0

    def current_truths(self) -> Dict[int, int]:
        """Current incremental truth estimates, task id -> choice.

        A read-only inspection surface (the service's ``/truths``
        endpoint): reports what incremental TI believes *now*, without
        the full iterative re-run :meth:`finalize` performs — so
        calling it mid-campaign perturbs nothing.

        Raises:
            ValidationError: if the system is not prepared.
        """
        if self._incremental is None:
            raise ValidationError("system not prepared; call prepare()")
        return {
            task.task_id: self._incremental.state(
                task.task_id
            ).inferred_truth()
            for task in self.database.tasks()
        }

    def finalize(self) -> Dict[int, int]:
        """Final full TI; returns task id -> inferred truth."""
        with self._arena_write():
            result = self._run_full_inference()
        truths = result.truths() if result is not None else {}
        complete: Dict[int, int] = {}
        for task in self.database.tasks():
            if task.task_id in truths:
                complete[task.task_id] = truths[task.task_id]
            else:
                state = self._incremental.state(task.task_id)
                complete[task.task_id] = state.inferred_truth()
        return complete

    # -- durability ------------------------------------------------------

    def checkpoint(self) -> int:
        """Flush the write-behind answer journal and snapshot hot state.

        Bounds the crash-loss window to zero as of this call; between
        checkpoints a crash can lose at most the unflushed tail (under
        ``config.journal_batch_size`` events). With journaled sqlite
        storage the flush and a compacted hot-state snapshot commit in
        one transaction, so a later :meth:`resume` loads the snapshot
        and replays nothing. Idempotent; a no-op (0) with in-memory
        storage.

        This is also the **degraded-mode recovery path**: a campaign
        that dropped to degraded mode (see :meth:`durability_status`)
        retries the durable write here — on success every buffered
        event commits, the queued shared-store deltas drain, and the
        campaign returns to ``durable`` with zero accepted answers
        lost. On continued failure the error propagates (the campaign
        stays degraded and keeps serving).

        Returns:
            The number of journal rows made durable.

        Raises:
            ValidationError: if the system is not prepared.
            sqlite3.Error: if the durable write is still failing.
        """
        db = self.database
        if getattr(db, "journal", None) is not None:
            try:
                flushed = self.snapshot()
            except sqlite3.Error as exc:
                self._enter_degraded("checkpoint", exc)
                raise
            self._drain_shared_backlog()
            self._exit_degraded()
            return flushed
        if hasattr(db, "checkpoint"):
            return db.checkpoint()
        return 0

    def flush_journal(self) -> int:
        """Make every accepted-but-buffered event durable, without the
        snapshot a full :meth:`checkpoint` would also write.

        The HTTP service's submit coalescing acknowledges a whole batch
        of answers behind **one** such flush — cheaper than a
        per-answer fsync, durable by ack time, and far lighter than
        snapshotting per batch. A failing flush degrades the campaign
        exactly like the serving paths do (the answers stay accepted
        and buffered; :meth:`checkpoint` recovers) rather than raising.

        Returns:
            Journal rows made durable (0 with in-memory storage, with
            nothing pending, or when the flush failed into degraded
            mode).
        """
        journal = (
            getattr(self._db, "journal", None)
            if self._db is not None
            else None
        )
        if journal is None:
            return 0
        try:
            return journal.flush()
        except sqlite3.Error as exc:
            self._enter_degraded("service batch flush", exc)
            return 0

    def durability_status(self) -> Dict[str, object]:
        """Where this campaign's durability stands, as a plain dict.

        Keys:

        - ``mode`` — ``"memory"`` (nothing durable by design),
          ``"durable"`` (journaled sqlite, healthy), or ``"degraded"``
          (durable writes failing; serving continues from memory).
        - ``degraded`` — convenience boolean for ``mode ==
          "degraded"``.
        - ``reason`` — the first failure that degraded the campaign
          (``None`` when healthy).
        - ``buffered_events`` — journal events accepted but not yet
          durable (the crash-loss window; bounded by
          ``config.journal_batch_size`` when healthy, unbounded while
          degraded).
        - ``queued_exports`` — shared-store deltas waiting for
          :meth:`checkpoint` to drain.
        """
        journal = (
            getattr(self._db, "journal", None)
            if self._db is not None
            else None
        )
        if journal is None:
            mode = "memory"
        elif self._degraded:
            mode = "degraded"
        else:
            mode = "durable"
        return {
            "mode": mode,
            "degraded": self._degraded,
            "reason": self._degraded_reason,
            "buffered_events": (
                journal.pending if journal is not None else 0
            ),
            "queued_exports": len(self._pending_shared_exports),
        }

    def _enter_degraded(
        self, description: str, exc: BaseException
    ) -> None:
        """Flip to degraded mode (idempotent), loudly on first entry."""
        if not self._degraded:
            self._degraded = True
            self._degraded_reason = f"{description}: {exc}"
            logger.error(
                "durable write failed (%s: %s); campaign at %r is now "
                "DEGRADED — serving continues from memory, accepted "
                "answers stay buffered, shared-store exports queue; "
                "call checkpoint() to retry the durable write",
                description, exc, self._path, exc_info=True,
            )
        else:
            logger.warning(
                "durable write failed again while degraded (%s: %s)",
                description, exc,
            )

    def _exit_degraded(self) -> None:
        """Return to durable mode after a successful checkpoint."""
        if not self._degraded:
            return
        self._degraded = False
        reason, self._degraded_reason = self._degraded_reason, None
        logger.warning(
            "campaign at %r recovered from degraded mode (was: %s); "
            "buffered events are durable and queued exports drained",
            self._path, reason,
        )

    def _drain_shared_backlog(self) -> None:
        """Merge queued shared-store deltas, oldest first.

        A delta is popped only after its merge commits, so a failure
        mid-drain keeps the remainder queued (and the campaign
        degraded) — Theorem 1's fold is order-insensitive but losing a
        queued delta would permanently under-count the campaign's
        evidence.
        """
        while self._pending_shared_exports:
            if self._shared_store is None:
                return
            worker_id, delta_mass, delta_u = (
                self._pending_shared_exports[0]
            )
            try:
                self._shared_store.apply_batch_delta(
                    worker_id, delta_mass, delta_u
                )
            except sqlite3.Error as exc:
                self._enter_degraded("shared-store backlog drain", exc)
                raise
            self._pending_shared_exports.pop(0)

    def hot_state_digest(self) -> str:
        """SHA-256 over the campaign's hot state, as a hex string.

        Covers exactly the state :meth:`resume` promises to rebuild
        bit-identically: the arena's choice-group buffers (R/M/S/logN),
        the campaign worker model, the pristine golden qualities, the
        bootstrapped-worker set, and the rerun cursor. Two systems
        with equal digests will serve identical assignments and infer
        identical truths — the kill-and-resume suites (and operators
        comparing a resumed service against a reference) rely on this
        instead of diffing buffers by hand.
        """
        if self._incremental is None:
            raise ValidationError("system not prepared; call prepare()")
        import hashlib

        digest = hashlib.sha256()
        arena = self._incremental.arena
        # Settle the lazy entropy cache first: a live system with dirty
        # rows and its freshly resumed twin must hash identically.
        arena.refresh_entropies()
        groups = arena.export_hot_state()
        for ell in sorted(groups):
            group = groups[ell]
            digest.update(f"group:{ell}:{group.count}".encode())
            for buffer in (group.R, group.M, group.S, group.logN):
                digest.update(np.ascontiguousarray(buffer).tobytes())
        store = self.quality_store
        for worker_id in sorted(store.known_workers()):
            stats = store.get(worker_id)
            digest.update(worker_id.encode())
            digest.update(stats.quality.tobytes())
            digest.update(stats.weight.tobytes())
        for worker_id in sorted(self._golden_qualities):
            digest.update(worker_id.encode())
            digest.update(self._golden_qualities[worker_id].tobytes())
        digest.update(
            ",".join(sorted(self._bootstrapped)).encode()
        )
        digest.update(str(self._submissions_since_rerun).encode())
        return digest.hexdigest()

    def snapshot(self) -> int:
        """Write a compacted hot-state snapshot (journaled sqlite only).

        Serialises the arena's choice-group buffers, the campaign
        worker model, the pristine golden qualities, the
        bootstrapped-worker set, the shared-store export baselines, and
        the rerun cursor into the campaign file's ``snapshot_*`` tables
        — in the same transaction as a journal flush, replacing any
        older snapshot. :meth:`resume` then loads this image and
        replays only the journal tail written after it.

        Returns:
            Journal rows made durable by the embedded flush.

        Raises:
            ValidationError: if the system is not prepared, or storage
                is not journaled sqlite (in-memory campaigns have
                nothing durable to snapshot into).
        """
        db = self.database
        if getattr(db, "journal", None) is None:
            raise ValidationError(
                "snapshots require storage='sqlite'; in-memory "
                "campaigns have no durable file to snapshot into"
            )
        store = self.quality_store
        payload = CampaignSnapshot(
            num_domains=self._incremental.arena.num_domains,
            rerun_cursor=self._submissions_since_rerun,
            groups=self._incremental.arena.export_hot_state(),
            workers={
                worker_id: store.get(worker_id)
                for worker_id in store.known_workers()
            },
            golden_qualities={
                worker_id: quality.copy()
                for worker_id, quality in self._golden_qualities.items()
            },
            bootstrapped=set(self._bootstrapped),
            exported={
                worker_id: (quality.copy(), weight.copy())
                for worker_id, (quality, weight) in (
                    self._exported_log.items()
                )
            },
        )
        flushed = db.write_snapshot(payload)
        self._last_snapshot_batch = db.journal.flushed_batches
        if self._config.truncate_journal:
            # The snapshot just committed covers every row at or below
            # its watermark; archive them so later resumes validate and
            # replay only the tail.
            db.journal.truncate_through(payload.journal_seq)
        return flushed

    def _maybe_auto_snapshot(self) -> None:
        """Snapshot when enough journal batches accrued since the last."""
        every = self._config.snapshot_every_batches
        if every <= 0 or self._replaying:
            return
        journal = getattr(self._db, "journal", None)
        if journal is None:
            return
        if journal.flushed_batches - self._last_snapshot_batch >= every:
            try:
                self.snapshot()
            except sqlite3.Error as exc:
                # The snapshot transaction rolled back and the journal's
                # cursors/pending buffer were restored; the campaign
                # serves on degraded until a checkpoint succeeds.
                self._enter_degraded("auto-snapshot", exc)

    def close(self) -> None:
        """Checkpoint (flush + snapshot) and release the storage
        backend (idempotent).

        After ``close`` the campaign file holds everything needed by
        :meth:`resume`, including a snapshot of the final hot state. A
        no-op with in-memory storage or before :meth:`prepare`.

        A degraded campaign whose final snapshot still fails raises
        instead of closing: silently releasing the connection would
        drop the buffered (accepted but not yet durable) events — and
        the parallel serving plane stays up, so the still-degraded
        campaign keeps serving.

        With ``config.workers`` the close also stops the serving pool
        and unlinks the shared-memory arena (after the durability
        work, which reads the arena buffers) — so even an in-memory
        campaign with workers must be closed to release ``/dev/shm``.
        """
        if self._db is not None and hasattr(self._db, "close"):
            if (
                getattr(self._db, "journal", None) is not None
                and not getattr(self._db, "closed", False)
            ):
                self.snapshot()
            self._db.close()
        self._shutdown_parallel()

    @classmethod
    def resume(
        cls,
        path: str,
        config: Optional[DocsConfig] = None,
        kb: Optional[KnowledgeBase] = None,
        worker_store: Optional[WorkerQualityStore] = None,
        repair: bool = False,
    ) -> "DocsSystem":
        """Rebuild a sqlite-backed campaign from its database file.

        Loads the task catalogue in its original arena registration
        order, re-registers every task through the bulk-ingest plane
        (linking and DVE are skipped — domain vectors persisted with the
        tasks), restores the golden registry, then rebuilds the hot
        state: if the file holds a valid snapshot, its image is loaded
        and only the journal tail beyond its watermark is replayed —
        O(n + tail) instead of O(campaign); otherwise (no snapshot, or
        one that fails its checksum / shape / watermark checks, logged
        as a warning) the whole journal replays through the same
        bootstrap/submit code paths a live campaign uses. Either way
        the resumed system's hot state — arena buffers, incremental-TI
        posteriors, worker qualities, rerun cursor — is identical to
        the original's at its last flush, and the campaign continues
        from there: ``assign`` / ``submit`` / ``add_tasks`` /
        ``finalize`` all work. :attr:`resume_info` records which path
        ran. One caveat scopes the identical-state guarantee: with a
        shared ``worker_store``, the *full-replay fallback* re-seeds
        returning workers from the store's **current** values (seeding
        is not a journal event), so if the store moved on since the
        original seed the rebuilt campaign tracks the newer prior; the
        snapshot path restores the exact seeded values.

        Args:
            path: the SQLite file a ``DocsSystem(storage="sqlite")``
                campaign ran on.
            config: configuration for the resumed system; must match
                the original run's inference knobs (``rerun_interval``,
                ``default_quality``, ``ti_max_iterations`` — and
                ``workers``, whose rerun shard count fixes the full
                TI's floating-point accumulation order) for the replay
                to reproduce it exactly.
            kb: optional knowledge base, re-attached to the ingest
                pipeline so :meth:`add_tasks` can link *new* task texts
                after the resume. Without it, added tasks must carry
                precomputed domain vectors.
            worker_store: optional shared cross-campaign worker model
                (see the constructor). Exports made before the crash
                are not repeated during replay.
            repair: salvage a torn journal tail before validating —
                :meth:`repro.platform.journal.AnswerJournal.salvage`
                truncates back to the last CRC-consistent batch
                boundary, so a file whose final write was cut mid-batch
                resumes at the longest replayable prefix instead of
                raising :class:`~repro.errors.JournalCorruptionError`.
                The salvage report (what was dropped, and why) lands in
                :attr:`resume_info` under ``"salvage"``. Committed
                batches are never touched; default off, because
                truncation is irreversible.

        Returns:
            The resumed, ready-to-serve system.

        Raises:
            ValidationError: if the database holds no campaign.
            JournalCorruptionError: if the journal fails its integrity
                check (partial/corrupt final batch) and ``repair`` is
                off — or fails it even after a salvage.
        """
        system = cls(
            config, storage="sqlite", path=path,
            worker_store=worker_store,
        )
        cfg = system._config
        db = SqliteSystemDatabase(
            path,
            journal_batch_size=cfg.journal_batch_size,
            busy_timeout_ms=cfg.busy_timeout_ms,
            retry=system._commit_retry_policy(),
        )
        shared_arena: Optional[SharedStateArena] = None
        try:
            tasks = db.tasks_in_ingest_order()
            if not tasks:
                raise ValidationError(
                    f"nothing to resume at {path!r}: the database holds "
                    "no tasks; run a campaign with "
                    "DocsSystem(storage='sqlite', path=...) first"
                )
            salvage_report = None
            if repair:
                salvage_report = db.journal.salvage()
            db.journal.validate()
            missing = [
                t.task_id for t in tasks if t.domain_vector is None
            ]
            if missing:
                raise ValidationError(
                    f"task {missing[0]} has no persisted domain vector; "
                    "the file was not written by a DocsSystem campaign "
                    "and cannot be resumed"
                )
            m = int(tasks[0].domain_vector.shape[0])
            if worker_store is not None and (
                worker_store.num_domains != m
            ):
                raise ValidationError(
                    f"shared worker store covers "
                    f"{worker_store.num_domains} domains but the "
                    f"campaign taxonomy has {m}"
                )
            store = WorkerQualityStore(
                m, default_quality=cfg.default_quality
            )
            shared_arena = system._make_arena(m)
            incremental = IncrementalTruthInference(
                store, arena=shared_arena
            )
            linker = (
                EntityLinker(kb, top_c=cfg.top_c)
                if kb is not None
                else None
            )
            pipeline = IngestPipeline(
                db, incremental, linker,
                link_workers=system._link_workers(),
            )
            pipeline.ingest(tasks, store=False)
            db.answers.bind_row_resolver(incremental.arena.global_row)

            by_id = {t.task_id: t for t in tasks}
            golden_truths: Dict[int, int] = {}
            for task_id in db.golden_ids:
                task = by_id.get(task_id)
                if task is not None and task.ground_truth is not None:
                    golden_truths[task_id] = task.ground_truth

            system._db = db
            system._store = store
            system._incremental = incremental
            system._log = AnswerLog(incremental.arena)
            system._pipeline = pipeline
            system._golden_truths = golden_truths

            snapshot = db.load_snapshot()
            if snapshot is not None:
                problem = system._check_snapshot(snapshot)
                if problem is not None:
                    logger.warning(
                        "snapshot at %r rejected (%s); falling back to "
                        "full journal replay", path, problem,
                    )
                    snapshot = None
            if snapshot is None and db.journal.archived_through >= 0:
                # config.truncate_journal moved the pre-watermark rows
                # into the archive; without a usable snapshot their
                # serving-plane effect cannot be reproduced.
                raise JournalCorruptionError(
                    f"the journal at {path!r} was truncated through seq "
                    f"{db.journal.archived_through} after a snapshot, "
                    "but no usable snapshot remains — full replay "
                    "cannot rebuild the truncated prefix; restore the "
                    "file from a backup"
                )
            if snapshot is not None:
                system._install_snapshot(snapshot)
            tail = system._replay_journal(
                from_seq=(
                    snapshot.journal_seq if snapshot is not None else -1
                )
            )
            system._resume_info = {
                "snapshot_seq": (
                    snapshot.journal_seq
                    if snapshot is not None
                    else None
                ),
                "tail_entries": tail,
            }
            if repair:
                system._resume_info["salvage"] = salvage_report
            system._last_snapshot_batch = db.journal.flushed_batches
            system._build_serving_index()
        except Exception:
            db.close()
            system._db = None
            system._detach_pool()
            if shared_arena is not None:
                shared_arena.close()
            raise
        return system

    def _check_snapshot(self, snapshot: CampaignSnapshot) -> Optional[str]:
        """Is this snapshot consistent with the catalogue and journal?

        Returns a human-readable problem (the caller logs it and falls
        back to full replay), or ``None`` when the snapshot is usable.
        """
        arena = self._incremental.arena
        if snapshot.num_domains != arena.num_domains:
            return (
                f"snapshot taxonomy size {snapshot.num_domains} != "
                f"catalogue taxonomy size {arena.num_domains}"
            )
        last = self.database.journal.last_committed_seq
        if snapshot.journal_seq > last:
            return (
                f"snapshot watermark seq {snapshot.journal_seq} is "
                f"beyond the journal's last committed seq {last} "
                "(journal rows were deleted after the snapshot)"
            )
        if snapshot.rerun_cursor < 0:
            return f"negative rerun cursor {snapshot.rerun_cursor}"
        for worker_id, stats in snapshot.workers.items():
            if stats.quality.shape != (arena.num_domains,):
                return f"worker {worker_id} stats have a wrong shape"
        return arena.check_hot_state(snapshot.groups)

    def _install_snapshot(self, snapshot: CampaignSnapshot) -> None:
        """Overlay a validated snapshot onto the freshly registered
        system (arena rows, worker model, bootstrap + export state)."""
        with self._arena_write():
            self._incremental.arena.load_hot_state(snapshot.groups)
        for worker_id, stats in snapshot.workers.items():
            self._store.set(worker_id, stats.quality, stats.weight)
        self._golden_qualities = {
            worker_id: quality.copy()
            for worker_id, quality in snapshot.golden_qualities.items()
        }
        self._bootstrapped = set(snapshot.bootstrapped)
        self._exported_log = {
            worker_id: (quality.copy(), weight.copy())
            for worker_id, (quality, weight) in snapshot.exported.items()
        }
        self._submissions_since_rerun = snapshot.rerun_cursor

    def _restore_compacted(self, through_seq: int) -> None:
        """Rebuild the indexes the snapshot cannot carry, in bulk.

        Answers at or before the watermark are already applied to the
        snapshot's numeric state; what replay cannot skip is the
        in-memory answer table, the append-only answer log, and the
        per-task answer histories. They are rebuilt from one columnar
        journal read with no per-answer inference arithmetic and no
        full-TI re-runs — the O(tail-free) part of snapshot resume.
        Pre-watermark bootstrap events need nothing at all: their whole
        effect lives in the snapshot's worker tables.
        """
        rows = self.database.journal.committed_answers_through(
            through_seq
        )
        if not rows:
            return
        arena = self._incremental.arena
        order = np.asarray(arena.task_ids(), dtype=np.int64)
        task_rows = np.fromiter(
            (row[1] for row in rows), dtype=np.int64, count=len(rows)
        )
        task_ids = np.fromiter(
            (row[2] for row in rows), dtype=np.int64, count=len(rows)
        )
        out_of_range = (task_rows < 0) | (task_rows >= order.shape[0])
        mismatch = out_of_range.copy()
        valid = ~out_of_range
        mismatch[valid] = order[task_rows[valid]] != task_ids[valid]
        if mismatch.any():
            first = int(np.flatnonzero(mismatch)[0])
            raise JournalCorruptionError(
                f"journal entry {rows[first][0]}: task "
                f"{int(task_ids[first])} does not register at the "
                f"recorded arena row {int(task_rows[first])}; the "
                "journal and the task catalogue disagree — restore the "
                "file from a backup"
            )
        choices = np.fromiter(
            (row[4] for row in rows), dtype=np.int64, count=len(rows)
        )
        worker_ids = [row[3] for row in rows]
        answers = [
            Answer(worker_id, int(task_id), int(choice))
            for worker_id, task_id, choice in zip(
                worker_ids, task_ids, choices
            )
        ]
        self.database.answers.restore_batch(answers)
        self._log.extend_restored(task_rows, worker_ids, choices)
        self._incremental.restore_answers(answers)

    def _replay_journal(self, from_seq: int = -1) -> int:
        """Re-apply committed journal events in commit order.

        Entries with ``seq <= from_seq`` are already baked into the
        installed snapshot's numeric state and only rebuild indexes
        (see :meth:`_restore_compacted`); entries beyond the watermark
        replay through the same bootstrap/submit code paths a live
        campaign uses.

        Returns:
            The number of tail entries fully re-applied.
        """
        arena = self._incremental.arena
        pending_bootstrap: Dict[str, List[Answer]] = {}
        tail_entries = 0
        self._replaying = True
        try:
            if from_seq >= 0:
                self._restore_compacted(from_seq)
            for entry in self.database.journal.replay(
                after_seq=from_seq
            ):
                tail_entries += 1
                if entry.kind == KIND_BOOTSTRAP_ANSWER:
                    pending_bootstrap.setdefault(
                        entry.worker_id, []
                    ).append(
                        Answer(
                            entry.worker_id, entry.task_id, entry.choice
                        )
                    )
                elif entry.kind == KIND_BOOTSTRAP_DONE:
                    answers = pending_bootstrap.pop(entry.worker_id, [])
                    self._restore_bootstrap(entry.worker_id, answers)
                elif entry.kind == KIND_ANSWER:
                    expected_row = arena.global_row(entry.task_id)
                    if entry.task_row != expected_row:
                        raise JournalCorruptionError(
                            f"journal entry {entry.seq}: task "
                            f"{entry.task_id} registers at arena row "
                            f"{expected_row} but the journal recorded "
                            f"row {entry.task_row}; the journal and the "
                            "task catalogue disagree — restore the file "
                            "from a backup"
                        )
                    answer = Answer(
                        entry.worker_id, entry.task_id, entry.choice
                    )
                    # A shared-store worker's seeding is not a journal
                    # event (the shared store is durable on its own);
                    # re-seed here so her replayed answers use the
                    # stored prior, as the live run did. Note the store
                    # may have moved on since the original seed — the
                    # snapshot path restores the exact seeded values.
                    self._seed_from_shared(entry.worker_id)
                    self.database.answers.restore(answer)
                    self._apply_answer(answer)
                else:
                    raise JournalCorruptionError(
                        f"journal entry {entry.seq} has unknown kind "
                        f"{entry.kind}; the file is newer than this "
                        "code or corrupt"
                    )
        finally:
            self._replaying = False
        if pending_bootstrap:
            workers = ", ".join(sorted(pending_bootstrap))
            raise JournalCorruptionError(
                "journal ends inside an unfinished bootstrap for "
                f"worker(s) {workers}: the final batch is partial; "
                "restore the file from a backup, or delete the dangling "
                "rows to fall back to the last consistent checkpoint"
            )
        return tail_entries

    # -- internals -------------------------------------------------------

    def _run_full_inference(self):
        if self._log is None or len(self._log) == 0:
            return None
        ti = TruthInference(
            max_iterations=self._config.ti_max_iterations,
            default_quality=self._config.default_quality,
        )
        # Initialise from the pristine golden-test qualities: warm
        # starts from the incrementally updated store would anchor EM to
        # the drift the incremental pass accumulates on low-weight
        # domains.
        initial = dict(self._golden_qualities)
        # The append-only log already holds the solver's index arrays;
        # no answer re-indexing or domain-vector re-stacking per re-run.
        result = ti.infer_from_log(
            self._log,
            initial_qualities=initial,
            shards=self._rerun_shards(),
        )
        self._incremental.resync_from_arena_result(
            result, precision=self._config.serve_resync_precision
        )
        self._export_to_shared(result)
        return result

    def _export_to_shared(self, result) -> None:
        """Merge campaign evidence into the shared store (Theorem 1).

        A full-TI re-run's per-worker (quality, weight) is the exact
        batch estimate over this campaign's answer log. Exporting the
        *delta* since the previous re-run — in mass form, via
        :meth:`~repro.core.quality_store.WorkerQualityStore.apply_batch_delta`
        — makes repeated exports telescope to exactly one export of the
        final campaign estimate, so re-run boundaries can sync as often
        as they like without double counting. Baselines are maintained
        even without a shared store (and during journal replay, when
        the original run's exports must not repeat) so a store attached
        later starts from the right boundary.

        Two crash-boundary rules keep the store sane:

        - a worker the store does not know receives the campaign's
          *full cumulative* estimate, not the delta since the baseline
          — a delta against a store that never got the base mass can
          encode a pure revision and land out of [0, 1];
        - the journal is flushed before the first merge, so the
          evidence being exported is durable in the campaign file
          first. A crash right after the flush loses at most one
          un-merged delta (bounded under-count); re-run-boundary
          exports are never double-merged, because replay re-derives
          their baselines without exporting. One bounded exception
          remains: a ``finalize()`` export past the last re-run
          boundary is not a journal event, so if the final snapshot is
          lost (full-replay fallback) and the resumed campaign is
          finalized again, that one tail delta can repeat.
        """
        exporting = (
            self._shared_store is not None and not self._replaying
        )
        durable = True
        if exporting:
            journal = getattr(self._db, "journal", None)
            if journal is not None:
                try:
                    journal.flush()
                except sqlite3.Error as exc:
                    # Durable-first still holds under degradation: the
                    # deltas queue instead of merging, so the store
                    # never sees evidence the campaign file lost.
                    self._enter_degraded(
                        "journal flush before shared export", exc
                    )
                    durable = False
        for worker_row, worker_id in enumerate(result.worker_ids):
            quality = np.asarray(
                result.qualities[worker_row], dtype=float
            )
            weight = np.asarray(result.weights[worker_row], dtype=float)
            previous = self._exported_log.get(worker_id)
            if previous is None or (
                exporting and worker_id not in self._shared_store
            ):
                # First export for this worker, or a baseline advanced
                # before any store saw this worker (a store attached
                # mid-campaign): ship the whole campaign estimate.
                delta_mass = quality * weight
                delta_u = weight.copy()
            else:
                prev_q, prev_u = previous
                delta_mass = quality * weight - prev_q * prev_u
                # Weights only grow (u_k = sum of r_k over answered
                # tasks); clip guards floating-point drift.
                delta_u = np.clip(weight - prev_u, 0.0, None)
            self._exported_log[worker_id] = (
                quality.copy(), weight.copy()
            )
            if exporting and (
                np.any(delta_u > 0) or np.any(delta_mass != 0)
            ):
                if durable:
                    try:
                        self._shared_store.apply_batch_delta(
                            worker_id, delta_mass, delta_u
                        )
                    except sqlite3.Error as exc:
                        self._enter_degraded("shared-store export", exc)
                        self._pending_shared_exports.append(
                            (worker_id, delta_mass, delta_u)
                        )
                        # Queue the remaining workers too, preserving
                        # export order against the same stuck store.
                        durable = False
                else:
                    self._pending_shared_exports.append(
                        (worker_id, delta_mass, delta_u)
                    )
