"""DocsSystem — the full pipeline of Figure 1 behind one facade.

Lifecycle (mirroring the architecture figure's numbered flows):

1. ``prepare(dataset)`` — the ingest plane
   (:class:`repro.system.ingest.IngestPipeline`): batch-link every task
   against the KB, compute all domain vectors with the vectorised DVE,
   bulk-store the tasks, register their arena rows, then select golden
   tasks. ``prepare`` runs exactly once per system; a second call
   raises.
2. New worker arrives -> ``bootstrap`` with her golden-task answers
   (quality pre-test, Section 5.2).
3. Worker requests tasks -> ``assign`` (OTA: entropy-reduction benefit,
   Theorems 2-4, linear top-k).
4. Worker submits -> ``submit`` (incremental TI, Section 4.2), with the
   full iterative TI re-run every z submissions.
5. At any point after ``prepare``, ``add_tasks`` ingests *new* tasks
   mid-campaign through the same pipeline (live task growth — the
   streaming scenario the paper's fixed task set excludes); they join
   the assignable pool immediately.
6. ``finalize`` — final full TI; inferred truths returned to the
   requester.

**Durability.** With ``storage="sqlite"`` the campaign runs on
:class:`repro.platform.sqlite_storage.SqliteSystemDatabase`: the task
catalogue and golden registry persist at ingest time, and every
campaign event (submits, golden bootstraps) spills to the durable
``answers_log`` journal through a batched write-behind buffer
(:class:`repro.platform.journal.AnswerJournal`) — flushed every
``config.journal_batch_size`` events, on :meth:`checkpoint`, and on
:meth:`close`. A crashed campaign is rebuilt by
:meth:`DocsSystem.resume`, which replays the journal through the same
ingest and serving code paths a live campaign uses, reproducing the
arena buffers, incremental-TI posteriors, worker qualities, and rerun
cursor exactly as they stood at the last flush.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.core.arena import AnswerLog
from repro.core.assignment import TaskAssigner
from repro.core.golden import select_golden_tasks
from repro.core.incremental import IncrementalTruthInference
from repro.core.quality_store import WorkerQualityStore
from repro.core.truth_inference import TruthInference
from repro.core.types import Answer, Task
from repro.datasets.base import CrowdDataset
from repro.errors import JournalCorruptionError, ValidationError
from repro.kb.knowledge_base import KnowledgeBase
from repro.linking import EntityLinker
from repro.platform.journal import (
    KIND_ANSWER,
    KIND_BOOTSTRAP_ANSWER,
    KIND_BOOTSTRAP_DONE,
)
from repro.platform.sqlite_storage import SqliteSystemDatabase
from repro.platform.storage import SystemDatabase
from repro.system.config import DocsConfig
from repro.system.ingest import IngestPipeline, IngestReport

#: Supported storage backends.
STORAGE_MODES = ("memory", "sqlite")


class DocsSystem:
    """The domain-aware crowdsourcing system.

    Implements the :class:`repro.platform.amt_sim.CrowdEngine` protocol
    so it can be driven by :class:`repro.platform.PlatformSimulator`
    alongside the competitor engines.

    Args:
        config: system configuration (defaults follow the paper).
        storage: ``"memory"`` (default; fastest, nothing survives the
            process) or ``"sqlite"`` (durable: tasks, golden registry,
            and the answer journal live in one SQLite file, and the
            campaign can be resumed from it with :meth:`resume`).
        path: the SQLite database path; required with
            ``storage="sqlite"`` (pass ``":memory:"`` explicitly for an
            ephemeral throwaway database).
    """

    name = "DOCS"

    def __init__(
        self,
        config: Optional[DocsConfig] = None,
        *,
        storage: str = "memory",
        path: Optional[str] = None,
    ):
        self._config = config or DocsConfig()
        self._config.validate()
        if storage not in STORAGE_MODES:
            raise ValidationError(
                f"unknown storage mode {storage!r}; expected one of "
                f"{STORAGE_MODES}"
            )
        if storage == "sqlite" and path is None:
            raise ValidationError(
                "storage='sqlite' requires a database path; pass "
                "path=... (use ':memory:' explicitly for an ephemeral "
                "database)"
            )
        self._storage = storage
        self._path = path
        self._db: Optional[SystemDatabase] = None
        self._incremental: Optional[IncrementalTruthInference] = None
        self._log: Optional[AnswerLog] = None
        self._store: Optional[WorkerQualityStore] = None
        self._assigner = TaskAssigner(hit_size=self._config.hit_size)
        self._bootstrapped: Set[str] = set()
        self._golden_truths: Dict[int, int] = {}
        #: Pristine golden-bootstrap qualities: the full iterative TI is
        #: (re)initialised from these, never from the incrementally
        #: drifted store (Section 4.1 initialises from golden tasks).
        self._golden_qualities: Dict[str, np.ndarray] = {}
        self._submissions_since_rerun = 0
        self._pipeline: Optional[IngestPipeline] = None

    @property
    def config(self) -> DocsConfig:
        """The active configuration."""
        return self._config

    @property
    def storage(self) -> str:
        """The storage mode: ``"memory"`` or ``"sqlite"``."""
        return self._storage

    @property
    def path(self) -> Optional[str]:
        """The SQLite database path (``None`` in memory mode)."""
        return self._path

    @property
    def database(self) -> SystemDatabase:
        """The system's storage (tasks, answers, golden registry)."""
        if self._db is None:
            raise ValidationError("system not prepared; call prepare()")
        return self._db

    @property
    def quality_store(self) -> WorkerQualityStore:
        """The persistent worker model."""
        if self._store is None:
            raise ValidationError("system not prepared; call prepare()")
        return self._store

    # -- CrowdEngine protocol -------------------------------------------

    def prepare(self, dataset: CrowdDataset) -> None:
        """Build the ingest pipeline, run it over the dataset, and
        select golden tasks.

        ``prepare`` is single-shot by design: the golden selection, the
        worker-quality store, and the arena all key off the initial
        batch, so rebuilding them silently would discard campaign state.

        Raises:
            ValidationError: if the system is already prepared (use
                :meth:`add_tasks` to grow the pool, or build a new
                system), or the dataset carries duplicate task ids
                (deduplicate it first).
        """
        if self._db is not None:
            raise ValidationError(
                "prepare() already ran for this DocsSystem; use "
                "add_tasks() to ingest more tasks, or build a new system"
            )
        m = dataset.taxonomy.size
        linker = EntityLinker(dataset.kb, top_c=self._config.top_c)

        # Build everything in locals and commit only after the ingest
        # succeeds: a rejected dataset (e.g. duplicate ids) must leave
        # the system un-prepared and retryable.
        db = self._make_database()
        try:
            store = WorkerQualityStore(
                m, default_quality=self._config.default_quality
            )
            incremental = IncrementalTruthInference(store)
            pipeline = IngestPipeline(db, incremental, linker)
            pipeline.ingest(dataset.tasks)

            golden_count = min(
                self._config.golden_count, len(dataset.tasks)
            )
            golden_indices = select_golden_tasks(
                [t.domain_vector for t in dataset.tasks], golden_count
            )
            golden_ids = []
            golden_truths: Dict[int, int] = {}
            for idx in golden_indices:
                task = dataset.tasks[idx]
                if task.ground_truth is None:
                    continue
                golden_ids.append(task.task_id)
                golden_truths[task.task_id] = task.ground_truth
            db.mark_golden(golden_ids)
        except Exception:
            if hasattr(db, "close"):
                db.close()
            raise

        if getattr(db, "journal", None) is not None:
            db.answers.bind_row_resolver(incremental.arena.global_row)
        self._db = db
        self._store = store
        self._incremental = incremental
        self._log = AnswerLog(incremental.arena)
        self._pipeline = pipeline
        self._bootstrapped = set()
        self._golden_qualities = {}
        self._golden_truths = golden_truths
        self._submissions_since_rerun = 0

    def _make_database(self) -> SystemDatabase:
        if self._storage == "memory":
            return SystemDatabase()
        db = SqliteSystemDatabase(
            self._path,
            journal_batch_size=self._config.journal_batch_size,
        )
        if len(db) > 0:
            db.close()
            raise ValidationError(
                f"database at {self._path!r} already holds a campaign; "
                f"continue it with DocsSystem.resume({self._path!r}) or "
                "choose a fresh path"
            )
        return db

    def add_tasks(self, tasks: Sequence[Task]) -> IngestReport:
        """Ingest new tasks mid-campaign (live task growth).

        Runs the same staged pipeline as :meth:`prepare` — batch
        linking, vectorised DVE, bulk store, arena block registration —
        so the new tasks are immediately eligible for assignment and
        their answers flow through the same incremental/full TI as the
        initial batch. Golden tasks and existing worker qualities are
        unchanged.

        Args:
            tasks: the new tasks; ids must not collide with anything
                already ingested.

        Returns:
            The pipeline's :class:`repro.system.ingest.IngestReport`.

        Raises:
            ValidationError: if called before :meth:`prepare`, or on
                duplicate task ids (the message names the offending id;
                deduplicate the batch or assign fresh ids).
        """
        if self._pipeline is None:
            raise ValidationError(
                "system not prepared; call prepare() before add_tasks()"
            )
        return self._pipeline.ingest(tasks)

    def golden_task_ids(self) -> List[int]:
        """Golden tasks assigned to every new worker."""
        return self.database.golden_ids

    def needs_bootstrap(self, worker_id: str) -> bool:
        """New workers are quality-tested before real assignments."""
        return (
            bool(self._golden_truths)
            and worker_id not in self._bootstrapped
            and worker_id not in self.quality_store
        )

    def bootstrap(self, worker_id: str, answers: Sequence[Answer]) -> None:
        """Initialise a new worker's quality from golden-task answers."""
        self._restore_bootstrap(worker_id, answers)
        journal = getattr(self.database, "journal", None)
        if journal is not None:
            arena = self._incremental.arena
            journal.record_bootstrap(
                worker_id,
                answers,
                [arena.global_row(a.task_id) for a in answers],
            )

    def _restore_bootstrap(
        self, worker_id: str, answers: Sequence[Answer]
    ) -> None:
        """Apply a golden bootstrap without journaling it (shared by
        the live path and journal replay)."""
        self._bootstrapped.add(worker_id)
        if not answers:
            return
        domain_vectors = {
            a.task_id: self.database.task(a.task_id).domain_vector
            for a in answers
        }
        self.quality_store.initialize_from_golden(
            worker_id,
            {a.task_id: a.choice for a in answers},
            self._golden_truths,
            domain_vectors,
        )
        self._golden_qualities[worker_id] = (
            self.quality_store.quality_or_default(worker_id)
        )

    def assign(self, worker_id: str, k: Optional[int] = None) -> List[int]:
        """OTA: the k highest-benefit tasks this worker has not answered.

        Benefits are computed directly against the arena's persistent
        buffers; no per-arrival task state is materialised.
        """
        if self._incremental is None:
            raise ValidationError("system not prepared; call prepare()")
        answered = self.database.answers.tasks_answered_by(worker_id)
        quality = self.quality_store.blended_quality(worker_id)
        return self._assigner.assign(
            self._incremental.arena,
            quality,
            answered_by_worker=answered,
            k=k,
        )

    def submit(self, answer: Answer) -> None:
        """Ingest an answer: store it, update TI incrementally, and
        re-run the full iterative TI every z submissions."""
        if self._incremental is None:
            raise ValidationError("system not prepared; call prepare()")
        # Validate against the task before touching any store, so a bad
        # answer cannot leave the answer table, the incremental state,
        # and the answer log disagreeing with each other.
        ell = self._incremental.state(answer.task_id).num_choices
        if not 1 <= answer.choice <= ell:
            raise ValidationError(
                f"choice {answer.choice} outside [1, {ell}] for task "
                f"{answer.task_id}"
            )
        self.database.answers.insert(answer)
        self._apply_answer(answer)

    def _apply_answer(self, answer: Answer) -> None:
        """Drive one answer through the serving plane: incremental TI,
        the answer log, and the every-z full re-run (shared by the live
        submit path and journal replay)."""
        self._incremental.submit(answer)
        self._log.append(answer)
        self._submissions_since_rerun += 1
        if self._submissions_since_rerun >= self._config.rerun_interval:
            self._run_full_inference()
            self._submissions_since_rerun = 0

    def finalize(self) -> Dict[int, int]:
        """Final full TI; returns task id -> inferred truth."""
        result = self._run_full_inference()
        truths = result.truths() if result is not None else {}
        complete: Dict[int, int] = {}
        for task in self.database.tasks():
            if task.task_id in truths:
                complete[task.task_id] = truths[task.task_id]
            else:
                state = self._incremental.state(task.task_id)
                complete[task.task_id] = state.inferred_truth()
        return complete

    # -- durability ------------------------------------------------------

    def checkpoint(self) -> int:
        """Flush the write-behind answer journal to disk.

        Bounds the crash-loss window to zero as of this call; between
        checkpoints a crash can lose at most the unflushed tail (under
        ``config.journal_batch_size`` events). Idempotent; a no-op (0)
        with in-memory storage.

        Returns:
            The number of journal rows made durable.

        Raises:
            ValidationError: if the system is not prepared.
        """
        db = self.database
        if hasattr(db, "checkpoint"):
            return db.checkpoint()
        return 0

    def close(self) -> None:
        """Checkpoint and release the storage backend (idempotent).

        After ``close`` the campaign file holds everything needed by
        :meth:`resume`. A no-op with in-memory storage or before
        :meth:`prepare`.
        """
        if self._db is not None and hasattr(self._db, "close"):
            self._db.close()

    @classmethod
    def resume(
        cls,
        path: str,
        config: Optional[DocsConfig] = None,
        kb: Optional[KnowledgeBase] = None,
    ) -> "DocsSystem":
        """Rebuild a sqlite-backed campaign from its database file.

        Loads the task catalogue in its original arena registration
        order, re-registers every task through the bulk-ingest plane
        (linking and DVE are skipped — domain vectors persisted with the
        tasks), restores the golden registry, then replays the answer
        journal in commit order through the same bootstrap/submit code
        paths a live campaign uses. The resumed system's hot state —
        arena buffers, incremental-TI posteriors, worker qualities,
        rerun cursor — is identical to the original's at its last
        flush, and the campaign continues from there: ``assign`` /
        ``submit`` / ``add_tasks`` / ``finalize`` all work.

        Args:
            path: the SQLite file a ``DocsSystem(storage="sqlite")``
                campaign ran on.
            config: configuration for the resumed system; must match
                the original run's inference knobs (``rerun_interval``,
                ``default_quality``, ``ti_max_iterations``) for the
                replay to reproduce it exactly.
            kb: optional knowledge base, re-attached to the ingest
                pipeline so :meth:`add_tasks` can link *new* task texts
                after the resume. Without it, added tasks must carry
                precomputed domain vectors.

        Returns:
            The resumed, ready-to-serve system.

        Raises:
            ValidationError: if the database holds no campaign.
            JournalCorruptionError: if the journal fails its integrity
                check (partial/corrupt final batch).
        """
        system = cls(config, storage="sqlite", path=path)
        cfg = system._config
        db = SqliteSystemDatabase(
            path, journal_batch_size=cfg.journal_batch_size
        )
        try:
            tasks = db.tasks_in_ingest_order()
            if not tasks:
                raise ValidationError(
                    f"nothing to resume at {path!r}: the database holds "
                    "no tasks; run a campaign with "
                    "DocsSystem(storage='sqlite', path=...) first"
                )
            db.journal.validate()
            missing = [
                t.task_id for t in tasks if t.domain_vector is None
            ]
            if missing:
                raise ValidationError(
                    f"task {missing[0]} has no persisted domain vector; "
                    "the file was not written by a DocsSystem campaign "
                    "and cannot be resumed"
                )
            m = int(tasks[0].domain_vector.shape[0])
            store = WorkerQualityStore(
                m, default_quality=cfg.default_quality
            )
            incremental = IncrementalTruthInference(store)
            linker = (
                EntityLinker(kb, top_c=cfg.top_c)
                if kb is not None
                else None
            )
            pipeline = IngestPipeline(db, incremental, linker)
            pipeline.ingest(tasks, store=False)
            db.answers.bind_row_resolver(incremental.arena.global_row)

            by_id = {t.task_id: t for t in tasks}
            golden_truths: Dict[int, int] = {}
            for task_id in db.golden_ids:
                task = by_id.get(task_id)
                if task is not None and task.ground_truth is not None:
                    golden_truths[task_id] = task.ground_truth

            system._db = db
            system._store = store
            system._incremental = incremental
            system._log = AnswerLog(incremental.arena)
            system._pipeline = pipeline
            system._golden_truths = golden_truths
            system._replay_journal()
        except Exception:
            db.close()
            system._db = None
            raise
        return system

    def _replay_journal(self) -> None:
        """Re-apply every committed journal event in commit order."""
        arena = self._incremental.arena
        pending_bootstrap: Dict[str, List[Answer]] = {}
        for entry in self.database.journal.replay():
            if entry.kind == KIND_BOOTSTRAP_ANSWER:
                pending_bootstrap.setdefault(entry.worker_id, []).append(
                    Answer(entry.worker_id, entry.task_id, entry.choice)
                )
            elif entry.kind == KIND_BOOTSTRAP_DONE:
                answers = pending_bootstrap.pop(entry.worker_id, [])
                self._restore_bootstrap(entry.worker_id, answers)
            elif entry.kind == KIND_ANSWER:
                expected_row = arena.global_row(entry.task_id)
                if entry.task_row != expected_row:
                    raise JournalCorruptionError(
                        f"journal entry {entry.seq}: task "
                        f"{entry.task_id} registers at arena row "
                        f"{expected_row} but the journal recorded row "
                        f"{entry.task_row}; the journal and the task "
                        "catalogue disagree — restore the file from a "
                        "backup"
                    )
                answer = Answer(
                    entry.worker_id, entry.task_id, entry.choice
                )
                self.database.answers.restore(answer)
                self._apply_answer(answer)
            else:
                raise JournalCorruptionError(
                    f"journal entry {entry.seq} has unknown kind "
                    f"{entry.kind}; the file is newer than this code "
                    "or corrupt"
                )
        if pending_bootstrap:
            workers = ", ".join(sorted(pending_bootstrap))
            raise JournalCorruptionError(
                "journal ends inside an unfinished bootstrap for "
                f"worker(s) {workers}: the final batch is partial; "
                "restore the file from a backup, or delete the dangling "
                "rows to fall back to the last consistent checkpoint"
            )

    # -- internals -------------------------------------------------------

    def _run_full_inference(self):
        if self._log is None or len(self._log) == 0:
            return None
        ti = TruthInference(
            max_iterations=self._config.ti_max_iterations,
            default_quality=self._config.default_quality,
        )
        # Initialise from the pristine golden-test qualities: warm
        # starts from the incrementally updated store would anchor EM to
        # the drift the incremental pass accumulates on low-weight
        # domains.
        initial = dict(self._golden_qualities)
        # The append-only log already holds the solver's index arrays;
        # no answer re-indexing or domain-vector re-stacking per re-run.
        result = ti.infer_from_log(self._log, initial_qualities=initial)
        self._incremental.resync_from_arena_result(result)
        return result
