"""DocsSystem — the campaign shell of Figure 1 behind one facade.

Since the engine-plane refactor this class is a *host*, not the
inference core: the DOCS serving heart (DVE ingest, arena, incremental
TI, Eq. 8 OTA, the AssignmentIndex/ServingPool ladder) lives in
:class:`repro.engines.docs.DocsEngine`, one entry of the engine
registry (:mod:`repro.engines`). ``DocsSystem`` hosts **any** registered
engine — ``DocsConfig.engine`` names it — and layers the campaign
surface around it: storage, the write-behind answer journal, compacted
snapshots, graceful degradation, resume, and the shared cross-campaign
worker store.

Lifecycle (mirroring the architecture figure's numbered flows):

1. ``prepare(dataset)`` — the ingest plane: with the default ``"docs"``
   engine, batch-link every task against the KB, compute all domain
   vectors with the vectorised DVE, bulk-store the tasks, register
   their arena rows, then select golden tasks. ``prepare`` runs exactly
   once per system; a second call raises.
2. New worker arrives -> ``bootstrap`` with her golden-task answers
   (quality pre-test, Section 5.2).
3. Worker requests tasks -> ``assign`` (for DOCS: OTA entropy-reduction
   benefit, Theorems 2-4, linear top-k).
4. Worker submits -> ``submit`` (for DOCS: incremental TI, Section 4.2,
   with the full iterative TI re-run every z submissions).
5. At any point after ``prepare``, ``add_tasks`` ingests *new* tasks
   mid-campaign (engines advertising the live-growth capability).
6. ``finalize`` — the engine's final inference; inferred truths
   returned to the requester.

**Capability-driven hosting.** The shell consults
:meth:`repro.engines.Engine.capabilities` instead of type checks. An
engine advertising :data:`~repro.engines.CAP_HOT_STATE` (the DOCS core
and its brute-force oracle) gets the full durability plane below —
snapshots, ``hot_state_digest``, snapshot-accelerated resume. Any
other registered engine (the Figure 8 baselines, ``batched-em``) runs
**memory-only inference** behind the same campaign surface: with
sqlite storage its raw events (golden bootstraps, answers) still spill
to the durable journal, and :meth:`resume` rebuilds the campaign by
replaying them through the engine from scratch (pass the original
``dataset=``).

**Durability.** With ``storage="sqlite"`` the campaign runs on
:class:`repro.platform.sqlite_storage.SqliteSystemDatabase`: the task
catalogue and golden registry persist at ingest time, and every
campaign event (submits, golden bootstraps) spills to the durable
``answers_log`` journal through a batched write-behind buffer
(:class:`repro.platform.journal.AnswerJournal`) — flushed every
``config.journal_batch_size`` events, on :meth:`checkpoint`, and on
:meth:`close`. A crashed campaign is rebuilt by
:meth:`DocsSystem.resume`, which replays the journal through the same
ingest and serving code paths a live campaign uses, reproducing the
arena buffers, incremental-TI posteriors, worker qualities, and rerun
cursor exactly as they stood at the last flush.

**Compacted snapshots.** Full replay is O(campaign length). Every
``config.snapshot_every_batches`` flushed journal batches — and on
every :meth:`checkpoint` / :meth:`close` — the system also serialises
the engine's hot state (arena buffers, campaign worker model, golden
qualities, rerun cursor) into ``snapshot_*`` tables, atomically with a
journal flush and compacted to the single newest image.
:meth:`resume` then loads the snapshot and replays only the journal
tail beyond its watermark — O(n + tail) instead of O(campaign). A
missing or corrupt snapshot is never fatal: resume falls back to full
replay. (Hot-state engines only.)

**Graceful degradation.** Durability failures on serving paths —
exhausted lock-contention retries on a journal flush, a snapshot or
shared-store export hitting ``sqlite3.Error`` — do not take the
campaign down. The system drops to an explicit **degraded** mode
(:meth:`durability_status`): accepted answers keep serving from the
in-memory indexes and stay buffered in the journal's pending queue,
shared-store export deltas queue in a backlog, and every entry into
degraded mode is logged loudly. :meth:`checkpoint` retries the durable
write; on success it drains the backlog and restores ``durable`` mode
with zero accepted answers lost. Only ``sqlite3.Error`` degrades —
anything else (validation errors, an injected
:class:`~repro.platform.faults.CrashPoint`) propagates unchanged.

**Cross-requester worker model.** The paper's Section 4.2 maintains
worker quality *in the database across requesters*. Passing
``worker_store=`` (typically a durable
:class:`repro.platform.sqlite_storage.SqliteWorkerQualityStore` shared
by many campaigns) turns that on for hot-state engines: workers
already known to the shared store skip the golden pre-test and enter
the campaign seeded with their stored (quality, weight) statistics,
and the campaign merges its own batch estimates back into the shared
store — Theorem-1 deltas at every full-TI re-run boundary, plus each
worker's golden-test estimate at bootstrap time.
"""

from __future__ import annotations

import logging
import sqlite3
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.quality_store import WorkerQualityStore
from repro.core.serving import AssignmentIndex
from repro.core.types import Answer, Task
from repro.datasets.base import CrowdDataset
from repro.errors import (
    JournalCorruptionError,
    ValidationError,
)
from repro.kb.knowledge_base import KnowledgeBase
from repro.platform.journal import (
    KIND_ANSWER,
    KIND_BOOTSTRAP_ANSWER,
    KIND_BOOTSTRAP_DONE,
)
from repro.platform.retry import RetryPolicy
from repro.platform.sqlite_storage import SqliteSystemDatabase
from repro.platform.storage import (
    RestoredAnswerColumns,
    SystemDatabase,
)
from repro.system.config import DocsConfig
from repro.system.ingest import IngestReport
from repro.system.parallel import ServingPool

logger = logging.getLogger(__name__)

#: Supported storage backends.
STORAGE_MODES = ("memory", "sqlite")


class DocsSystem:
    """The campaign shell: any registered engine behind one facade.

    With the default ``config.engine == "docs"`` this is the
    domain-aware crowdsourcing system of the paper, bit-identical to
    the pre-refactor monolith; with any other registry name the same
    surface hosts that engine (see the module docstring for what the
    capability hooks change). Implements the
    :class:`repro.engines.Engine` lifecycle, so it can be driven by
    :class:`repro.platform.PlatformSimulator` alongside bare engines.

    Args:
        config: system configuration (defaults follow the paper);
            ``config.engine`` names the hosted inference engine.
        storage: ``"memory"`` (default; fastest, nothing survives the
            process) or ``"sqlite"`` (durable: tasks, golden registry,
            the answer journal, and — for hot-state engines —
            compacted snapshots live in one SQLite file, and the
            campaign can be resumed from it with :meth:`resume`).
        path: the SQLite database path; required with
            ``storage="sqlite"`` (pass ``":memory:"`` explicitly for an
            ephemeral throwaway database).
        worker_store: an optional *shared, cross-campaign* worker model
            (any object with the
            :class:`repro.core.quality_store.WorkerQualityStore`
            interface, typically a durable
            :class:`repro.platform.sqlite_storage.SqliteWorkerQualityStore`
            shared by many campaigns). Workers it knows skip the golden
            pre-test and are seeded from it; the campaign merges its
            Theorem-1 batch estimates back at re-run boundaries. The
            campaign does not own the store and never closes it.
            Hot-state engines only.
    """

    def __init__(
        self,
        config: Optional[DocsConfig] = None,
        *,
        storage: str = "memory",
        path: Optional[str] = None,
        worker_store: Optional[WorkerQualityStore] = None,
    ):
        self._config = config or DocsConfig()
        self._config.validate()
        if storage not in STORAGE_MODES:
            raise ValidationError(
                f"unknown storage mode {storage!r}; expected one of "
                f"{STORAGE_MODES}"
            )
        if storage == "sqlite" and path is None:
            raise ValidationError(
                "storage='sqlite' requires a database path; pass "
                "path=... (use ':memory:' explicitly for an ephemeral "
                "database)"
            )
        self._storage = storage
        self._path = path
        self._db: Optional[SystemDatabase] = None

        # The hosted inference engine (lazy import: the registry's
        # factories reach back into repro.system).
        from repro.engines.base import (
            CAP_HOT_STATE,
            CAP_LIVE_GROWTH,
        )
        from repro.engines.registry import make_engine

        self._engine = make_engine(
            self._config.engine,
            seed=self._config.seed,
            config=self._config,
        )
        caps = self._engine.capabilities()
        #: Hot-state capability: the engine exposes the DocsEngine host
        #: seam (build/rebuild, arena_write, snapshots, digests). The
        #: shell's durability plane keys off this, never off types.
        self._hot = CAP_HOT_STATE in caps
        self._live_growth = CAP_LIVE_GROWTH in caps
        if self._hot:
            # The shell owns durable-first export ordering around the
            # engine's full-TI re-runs.
            self._engine.on_rerun = self._export_to_shared
        if worker_store is not None:
            if not self._hot:
                raise ValidationError(
                    f"engine {self._engine.name!r} has no hot-state "
                    "capability and cannot maintain a shared "
                    "cross-campaign worker store"
                )
            self._engine.attach_shared_store(worker_store)

        #: Task id -> journal row, for engines without an arena to
        #: resolve rows (bound to the journal with sqlite storage).
        self._task_rows: Dict[int, int] = {}
        #: journal.flushed_batches as of the last snapshot (the
        #: auto-snapshot trigger's baseline).
        self._last_snapshot_batch = 0
        #: True while resume() replays the journal: suppresses
        #: shared-store exports (the original run already made them)
        #: and snapshot writes.
        self._replaying = False
        #: Filled by resume(): {"snapshot_seq": int | None,
        #: "tail_entries": int} (plus "salvage" under repair=True).
        self._resume_info: Optional[Dict[str, object]] = None
        #: How the archived answer prefix was rebuilt on resume:
        #: "index-carry" (snapshot-carried columns), "archive-scan"
        #: (the committed_answers_through read), or None (fresh
        #: campaign / full replay / nothing archived).
        self._restore_path: Optional[str] = None
        #: True while durable writes are failing: answers buffer in
        #: memory (journal pending), exports queue in
        #: ``_pending_shared_exports``, serving continues.
        self._degraded = False
        #: Why the campaign degraded (first failure's description).
        self._degraded_reason: Optional[str] = None
        #: Shared-store deltas (worker_id, Δmass, Δu) that could not be
        #: merged while degraded; drained by :meth:`checkpoint`.
        self._pending_shared_exports: List[
            Tuple[str, np.ndarray, np.ndarray]
        ] = []

    # -- identity & accessors --------------------------------------------

    @property
    def name(self) -> str:
        """The hosted engine's display name (``"DOCS"`` by default)."""
        return self._engine.name

    @property
    def engine(self):
        """The hosted :class:`repro.engines.Engine` instance."""
        return self._engine

    @property
    def config(self) -> DocsConfig:
        """The active configuration."""
        return self._config

    @property
    def storage(self) -> str:
        """The storage mode: ``"memory"`` or ``"sqlite"``."""
        return self._storage

    @property
    def path(self) -> Optional[str]:
        """The SQLite database path (``None`` in memory mode)."""
        return self._path

    @property
    def database(self) -> SystemDatabase:
        """The system's storage (tasks, answers, golden registry)."""
        if self._db is None:
            raise ValidationError("system not prepared; call prepare()")
        return self._db

    @property
    def quality_store(self) -> WorkerQualityStore:
        """The campaign-local worker model (hot-state engines)."""
        self._require_hot("a campaign worker model")
        return self._engine.quality_store

    @property
    def shared_worker_store(self) -> Optional[WorkerQualityStore]:
        """The shared cross-campaign worker model, if attached."""
        return self._shared_store

    @property
    def serving_index(self) -> Optional[AssignmentIndex]:
        """The serving-plane benefit index (``None`` before
        :meth:`prepare`, when ``config.serve_index`` is off, or for
        engines without the hot-state serving plane)."""
        return self._engine.serving_index if self._hot else None

    @property
    def serving_pool(self) -> Optional[ServingPool]:
        """The multi-process serving pool (``None`` before
        :meth:`prepare`, with ``config.workers == 0``, after the
        pool degraded/closed, or for engines without one)."""
        return self._engine.pool if self._hot else None

    @property
    def resume_info(self) -> Optional[Dict[str, object]]:
        """How the system was rebuilt, on a resumed system.

        ``{"snapshot_seq": watermark or None, "tail_entries": n}`` —
        ``snapshot_seq`` is ``None`` when resume fell back to full
        journal replay (always, for engines without snapshots).
        ``None`` on systems that were never resumed.
        """
        return self._resume_info

    # Backward-compatible views of the engine-owned hot state (tests
    # and the durability plane read these; the engine owns the truth).

    @property
    def _incremental(self):
        return self._engine.incremental if self._hot else None

    @property
    def _log(self):
        return self._engine.log if self._hot else None

    @property
    def _bootstrapped(self) -> Set[str]:
        if self._hot:
            return self._engine.bootstrapped
        return getattr(self._engine, "_bootstrapped", set())

    @property
    def _exported_log(self):
        return self._engine.exported_log if self._hot else {}

    @property
    def _submissions_since_rerun(self) -> int:
        return (
            self._engine.submissions_since_rerun if self._hot else 0
        )

    @property
    def _shared_store(self) -> Optional[WorkerQualityStore]:
        return self._engine.shared_store if self._hot else None

    def _require_hot(self, what: str) -> None:
        """Reject a hot-state-only operation for engines without the
        capability, naming the engine and the missing surface."""
        if not self._hot:
            raise ValidationError(
                f"engine {self._engine.name!r} has no hot-state "
                f"capability and therefore no {what}"
            )

    def attach_worker_store(self, worker_store: WorkerQualityStore) -> None:
        """Attach a shared cross-campaign worker model mid-campaign.

        Useful after :meth:`resume`, which needs the task catalogue to
        know the taxonomy size a store must match. Export semantics on
        first contact: a worker the store does not know receives the
        campaign's *full current estimate* (a bare post-attachment
        delta could encode an out-of-range revision against a store
        with no base mass); a worker the store already knows receives
        deltas from the attachment-time baseline onward.

        Raises:
            ValidationError: if a store is already attached, the
                store's taxonomy size disagrees with the campaign's,
                or the hosted engine has no hot-state capability.
        """
        self._require_hot("shared worker store")
        self._engine.attach_shared_store(worker_store)

    # -- Engine lifecycle (hosted) ---------------------------------------

    def prepare(self, dataset: CrowdDataset) -> None:
        """Build the hosted engine over the dataset, persisting the
        task catalogue and golden registry into this campaign's storage.

        With a hot-state engine this runs its full ingest plane into
        the campaign database; other engines prepare their own
        in-memory state while the shell stores the catalogue (and, with
        sqlite, journals every later event for replay-based resume).

        ``prepare`` is single-shot by design: the golden selection, the
        worker model, and the serving state all key off the initial
        batch, so rebuilding them silently would discard campaign state.

        Raises:
            ValidationError: if the system is already prepared (use
                :meth:`add_tasks` to grow the pool, or build a new
                system), or the dataset carries duplicate task ids
                (deduplicate it first).
        """
        if self._db is not None:
            raise ValidationError(
                "prepare() already ran for this DocsSystem; use "
                "add_tasks() to ingest more tasks, or build a new system"
            )
        db = self._make_database()
        try:
            if self._hot:
                self._engine.build(db, dataset)
            else:
                db.add_tasks(dataset.tasks)
                self._engine.prepare(dataset)
                db.mark_golden(self._engine.golden_task_ids())
                self._task_rows = {
                    t.task_id: i
                    for i, t in enumerate(dataset.tasks)
                }
        except Exception:
            if hasattr(db, "close"):
                db.close()
            raise
        if getattr(db, "journal", None) is not None:
            db.answers.bind_row_resolver(self._row_resolver())
        self._db = db
        if self._hot:
            self._engine.build_serving_plane()

    def _row_resolver(self):
        """task id -> journal row: the arena's registration row for
        hot-state engines, the ingest position otherwise."""
        if self._hot:
            return self._engine.incremental.arena.global_row
        return self._task_rows.__getitem__

    def _task_row(self, task_id: int) -> int:
        return self._row_resolver()(task_id)

    def _commit_retry_policy(self) -> RetryPolicy:
        """The config-derived backoff policy for durable commits."""
        return RetryPolicy(
            attempts=self._config.commit_retry_attempts,
            base_delay=self._config.commit_retry_base_delay,
            max_delay=self._config.commit_retry_max_delay,
        )

    def _make_database(self) -> SystemDatabase:
        if self._storage == "memory":
            return SystemDatabase()
        db = SqliteSystemDatabase(
            self._path,
            journal_batch_size=self._config.journal_batch_size,
            busy_timeout_ms=self._config.busy_timeout_ms,
            retry=self._commit_retry_policy(),
        )
        if len(db) > 0:
            db.close()
            raise ValidationError(
                f"database at {self._path!r} already holds a campaign; "
                f"continue it with DocsSystem.resume({self._path!r}) or "
                "choose a fresh path"
            )
        return db

    def add_tasks(self, tasks: Sequence[Task]) -> IngestReport:
        """Ingest new tasks mid-campaign (live task growth).

        Runs the hot-state engine's staged pipeline — batch linking,
        vectorised DVE, bulk store, arena block registration — so the
        new tasks are immediately eligible for assignment and their
        answers flow through the same incremental/full TI as the
        initial batch. Golden tasks and existing worker qualities are
        unchanged.

        Args:
            tasks: the new tasks; ids must not collide with anything
                already ingested.

        Returns:
            The pipeline's :class:`repro.system.ingest.IngestReport`.

        Raises:
            ValidationError: if called before :meth:`prepare`, on
                duplicate task ids (the message names the offending id;
                deduplicate the batch or assign fresh ids), or when the
                hosted engine does not advertise the live-growth
                capability.
        """
        if not self._live_growth:
            raise ValidationError(
                f"engine {self._engine.name!r} does not advertise the "
                "live-growth capability; its task set is fixed at "
                "prepare()"
            )
        return self._engine.add_tasks(tasks)

    def golden_task_ids(self) -> List[int]:
        """Golden tasks assigned to every new worker."""
        return self._engine.golden_task_ids()

    def needs_bootstrap(self, worker_id: str) -> bool:
        """New workers are quality-tested before real assignments.

        Workers already known to the shared cross-campaign store are
        *not* new: they skip the golden pre-test and enter this
        campaign seeded with their stored statistics (Section 4.2's
        worker model maintained across requesters).
        """
        return self._engine.needs_bootstrap(worker_id)

    def bootstrap(self, worker_id: str, answers: Sequence[Answer]) -> None:
        """Initialise a new worker's quality from golden-task answers.

        Durability failures (``sqlite3.Error`` on the journal flush or
        the shared-store merge) degrade the campaign instead of failing
        the bootstrap: the worker's quality is live in memory, the
        journal retains the bootstrap events in its pending buffer, and
        the shared-store delta queues for :meth:`checkpoint` to drain.
        """
        if self._hot:
            self._engine.restore_bootstrap(worker_id, answers)
        else:
            self._engine.bootstrap(worker_id, answers)
        journal = getattr(self.database, "journal", None)
        if journal is not None:
            rows = [self._task_row(a.task_id) for a in answers]
            try:
                journal.record_bootstrap(worker_id, answers, rows)
            except sqlite3.Error as exc:
                # The bootstrap events are retained in the pending
                # buffer; only the batch-full flush failed.
                self._enter_degraded("journal flush during bootstrap", exc)
        if self._shared_store is not None and answers:
            # The golden pre-test is campaign evidence the shared store
            # would otherwise never see (full-TI re-runs cover only the
            # answer log). Durable-first: flush the just-recorded
            # bootstrap before merging, so a crash cannot leave golden
            # evidence in the store for a bootstrap the campaign file
            # never recorded. While the flush is failing the merge is
            # queued, not applied — same rule, degraded spelling. The
            # merge itself goes through the atomic delta primitive —
            # other campaigns may be exporting to the same file
            # concurrently.
            durable = True
            if journal is not None:
                try:
                    journal.flush()
                except sqlite3.Error as exc:
                    self._enter_degraded(
                        "journal flush during bootstrap", exc
                    )
                    durable = False
            stats = self.quality_store.get(worker_id)
            delta_mass = stats.quality * stats.weight
            delta_u = stats.weight.copy()
            if durable:
                try:
                    self._shared_store.apply_batch_delta(
                        worker_id, delta_mass, delta_u
                    )
                except sqlite3.Error as exc:
                    self._enter_degraded(
                        "shared-store bootstrap export", exc
                    )
                    self._pending_shared_exports.append(
                        (worker_id, delta_mass, delta_u)
                    )
            else:
                self._pending_shared_exports.append(
                    (worker_id, delta_mass, delta_u)
                )
        self._maybe_auto_snapshot()

    def assign(self, worker_id: str, k: Optional[int] = None) -> List[int]:
        """The engine's pick of up to k tasks for this arrival.

        With the DOCS engine this is OTA — the k highest-benefit tasks
        the worker has not answered, served from the AssignmentIndex's
        cached benefit columns with picks bit-identical to a full-pool
        evaluation; other engines apply their own policy.

        Raises:
            ValidationError: if the system is not prepared.
            UnknownWorkerError: if the campaign runs a golden pre-test
                and this worker has not completed it (and no shared
                store knows her) — bootstrap discipline, uniform across
                every engine; callers (and the HTTP service, which maps
                it to 404) route the worker to :meth:`bootstrap` first.
        """
        if self._hot:
            return self._engine.assign(worker_id, k)
        return self._engine.assign(
            worker_id, k if k is not None else self._config.hit_size
        )

    def assign_many(
        self, worker_ids: Sequence[str], k: Optional[int] = None
    ) -> List[List[int]]:
        """One HIT per arriving worker, served as a single batch.

        With the DOCS engine and ``config.workers`` the selects fan out
        across the serving pool's processes and evaluate concurrently;
        engines without the batch-assign capability are served one
        arrival at a time. Picks are identical to calling
        :meth:`assign` per worker in order, either way.

        Args:
            worker_ids: the arriving workers (duplicates allowed; each
                occurrence is served independently).
            k: HIT size override applied to every arrival.

        Returns:
            One task-id list per worker id, order preserved.
        """
        if self._hot:
            return self._engine.assign_many(worker_ids, k)
        return self._engine.assign_many(
            worker_ids, k if k is not None else self._config.hit_size
        )

    def submit(self, answer: Answer) -> None:
        """Ingest an answer: store it durably and drive it through the
        engine's inference (for DOCS: incremental TI, with the full
        iterative re-run every z submissions)."""
        if self._hot:
            engine = self._engine
            if engine.incremental is None:
                raise ValidationError(
                    "system not prepared; call prepare()"
                )
            # Validate against the task before touching any store, so a
            # bad answer cannot leave the answer table, the incremental
            # state, and the answer log disagreeing with each other.
            engine.validate_choice(answer)
            engine.seed_from_shared(answer.worker_id)
            try:
                self.database.answers.insert(answer)
            except sqlite3.Error as exc:
                # The in-memory index accepted the answer and the
                # journal retained it in the pending buffer before the
                # batch-full flush failed — nothing is dropped, the
                # event is just not durable yet. Serve on, degraded.
                self._enter_degraded("journal flush during submit", exc)
            with engine.arena_write():
                engine.apply_answer(answer)
        else:
            # The engine validates and indexes first (its own answer
            # table enforces at-most-once); only accepted answers reach
            # the journal.
            self._engine.submit(answer)
            try:
                self.database.answers.insert(answer)
            except sqlite3.Error as exc:
                self._enter_degraded("journal flush during submit", exc)
        self._maybe_auto_snapshot()

    def current_truths(self) -> Dict[int, int]:
        """Current truth estimates, task id -> choice, if the engine
        exposes them live.

        A read-only inspection surface (the service's ``/truths``
        endpoint): with the DOCS engine it reports what incremental TI
        believes *now*, without the full iterative re-run
        :meth:`finalize` performs — so calling it mid-campaign perturbs
        nothing.

        Raises:
            ValidationError: if the system is not prepared, or the
                engine only infers at finalize time.
        """
        return self._engine.current_truths()

    def finalize(self) -> Dict[int, int]:
        """The engine's final inference; returns task id -> truth,
        covering every task (unanswered tasks get the engine's
        documented uninformed default; see
        :meth:`unanswered_task_ids`)."""
        return self._engine.finalize()

    def unanswered_task_ids(self) -> List[int]:
        """Tasks finalized without a single answer (after
        :meth:`finalize`; see
        :meth:`repro.engines.Engine.unanswered_task_ids`)."""
        return self._engine.unanswered_task_ids()

    # -- durability ------------------------------------------------------

    def checkpoint(self) -> int:
        """Flush the write-behind answer journal and (for hot-state
        engines) snapshot the hot state.

        Bounds the crash-loss window to zero as of this call; between
        checkpoints a crash can lose at most the unflushed tail (under
        ``config.journal_batch_size`` events). With journaled sqlite
        storage and a hot-state engine the flush and a compacted
        hot-state snapshot commit in one transaction, so a later
        :meth:`resume` loads the snapshot and replays nothing.
        Idempotent; a no-op (0) with in-memory storage.

        This is also the **degraded-mode recovery path**: a campaign
        that dropped to degraded mode (see :meth:`durability_status`)
        retries the durable write here — on success every buffered
        event commits, the queued shared-store deltas drain, and the
        campaign returns to ``durable`` with zero accepted answers
        lost. On continued failure the error propagates (the campaign
        stays degraded and keeps serving).

        Returns:
            The number of journal rows made durable.

        Raises:
            ValidationError: if the system is not prepared.
            sqlite3.Error: if the durable write is still failing.
        """
        db = self.database
        if getattr(db, "journal", None) is not None:
            try:
                if self._hot:
                    flushed = self.snapshot()
                else:
                    flushed = db.journal.flush()
            except sqlite3.Error as exc:
                self._enter_degraded("checkpoint", exc)
                raise
            self._drain_shared_backlog()
            self._exit_degraded()
            return flushed
        if hasattr(db, "checkpoint"):
            return db.checkpoint()
        return 0

    def flush_journal(self) -> int:
        """Make every accepted-but-buffered event durable, without the
        snapshot a full :meth:`checkpoint` would also write.

        The HTTP service's submit coalescing acknowledges a whole batch
        of answers behind **one** such flush — cheaper than a
        per-answer fsync, durable by ack time, and far lighter than
        snapshotting per batch. A failing flush degrades the campaign
        exactly like the serving paths do (the answers stay accepted
        and buffered; :meth:`checkpoint` recovers) rather than raising.

        Returns:
            Journal rows made durable (0 with in-memory storage, with
            nothing pending, or when the flush failed into degraded
            mode).
        """
        journal = (
            getattr(self._db, "journal", None)
            if self._db is not None
            else None
        )
        if journal is None:
            return 0
        try:
            return journal.flush()
        except sqlite3.Error as exc:
            self._enter_degraded("service batch flush", exc)
            return 0

    def durability_status(self) -> Dict[str, object]:
        """Where this campaign's durability stands, as a plain dict.

        Keys:

        - ``mode`` — ``"memory"`` (nothing durable by design),
          ``"durable"`` (journaled sqlite, healthy), or ``"degraded"``
          (durable writes failing; serving continues from memory).
        - ``degraded`` — convenience boolean for ``mode ==
          "degraded"``.
        - ``reason`` — the first failure that degraded the campaign
          (``None`` when healthy).
        - ``buffered_events`` — journal events accepted but not yet
          durable (the crash-loss window; bounded by
          ``config.journal_batch_size`` when healthy, unbounded while
          degraded).
        - ``queued_exports`` — shared-store deltas waiting for
          :meth:`checkpoint` to drain.
        """
        journal = (
            getattr(self._db, "journal", None)
            if self._db is not None
            else None
        )
        if journal is None:
            mode = "memory"
        elif self._degraded:
            mode = "degraded"
        else:
            mode = "durable"
        return {
            "mode": mode,
            "degraded": self._degraded,
            "reason": self._degraded_reason,
            "buffered_events": (
                journal.pending if journal is not None else 0
            ),
            "queued_exports": len(self._pending_shared_exports),
        }

    def analytics(
        self,
        query: str,
        params: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        """Run one SQL-pushdown analytics query over this campaign.

        Delegates to :func:`repro.analytics.run_query` on the
        campaign's own sqlite connection: the query ranges over the
        **durable** answer prefix (``answers_archive`` plus committed
        ``answers_log`` rows) through the covering analytics indexes,
        building zero ``Answer``/``Task`` objects. Read-only — answers
        accepted but still buffered in the journal are invisible until
        the next flush/checkpoint, which is exactly the crash-surviving
        view.

        Args:
            query: a :data:`repro.analytics.QUERY_NAMES` entry.
            params: optional query parameters (ints, numeric strings,
                or ``parse_qs``-style one-element lists).

        Returns:
            ``{"query", "params", "rows"}`` of plain JSON-ready values.

        Raises:
            ValidationError: with in-memory storage (there is no
                durable relation to query), for an unknown query name
                (:class:`repro.analytics.UnknownAnalyticsQueryError`),
                or for a malformed parameter.
        """
        from repro.analytics import run_query

        conn = (
            getattr(self._db, "_conn", None)
            if self._db is not None
            else None
        )
        if conn is None or getattr(self._db, "journal", None) is None:
            raise ValidationError(
                "analytics needs journaled sqlite storage; this "
                f"campaign uses storage={self._storage!r}"
            )
        return run_query(conn, query, params)

    def _enter_degraded(
        self, description: str, exc: BaseException
    ) -> None:
        """Flip to degraded mode (idempotent), loudly on first entry."""
        if not self._degraded:
            self._degraded = True
            self._degraded_reason = f"{description}: {exc}"
            logger.error(
                "durable write failed (%s: %s); campaign at %r is now "
                "DEGRADED — serving continues from memory, accepted "
                "answers stay buffered, shared-store exports queue; "
                "call checkpoint() to retry the durable write",
                description, exc, self._path, exc_info=True,
            )
        else:
            logger.warning(
                "durable write failed again while degraded (%s: %s)",
                description, exc,
            )

    def _exit_degraded(self) -> None:
        """Return to durable mode after a successful checkpoint."""
        if not self._degraded:
            return
        self._degraded = False
        reason, self._degraded_reason = self._degraded_reason, None
        logger.warning(
            "campaign at %r recovered from degraded mode (was: %s); "
            "buffered events are durable and queued exports drained",
            self._path, reason,
        )

    def _drain_shared_backlog(self) -> None:
        """Merge queued shared-store deltas, oldest first.

        A delta is popped only after its merge commits, so a failure
        mid-drain keeps the remainder queued (and the campaign
        degraded) — Theorem 1's fold is order-insensitive but losing a
        queued delta would permanently under-count the campaign's
        evidence.
        """
        while self._pending_shared_exports:
            if self._shared_store is None:
                return
            worker_id, delta_mass, delta_u = (
                self._pending_shared_exports[0]
            )
            try:
                self._shared_store.apply_batch_delta(
                    worker_id, delta_mass, delta_u
                )
            except sqlite3.Error as exc:
                self._enter_degraded("shared-store backlog drain", exc)
                raise
            self._pending_shared_exports.pop(0)

    def hot_state_digest(self) -> str:
        """SHA-256 over the campaign's hot state, as a hex string.

        Covers exactly the state :meth:`resume` promises to rebuild
        bit-identically — see
        :meth:`repro.engines.docs.DocsEngine.hot_state_digest`. Two
        systems with equal digests will serve identical assignments and
        infer identical truths.

        Raises:
            ValidationError: if the system is not prepared, or the
                hosted engine has no hot-state capability.
        """
        self._require_hot("hot-state digest")
        return self._engine.hot_state_digest()

    def snapshot(self) -> int:
        """Write a compacted hot-state snapshot (journaled sqlite,
        hot-state engines only).

        Serialises the engine's hot state — arena choice-group buffers,
        the campaign worker model, the pristine golden qualities, the
        bootstrapped-worker set, the shared-store export baselines, and
        the rerun cursor — into the campaign file's ``snapshot_*``
        tables, in the same transaction as a journal flush, replacing
        any older snapshot. :meth:`resume` then loads this image and
        replays only the journal tail written after it.

        Returns:
            Journal rows made durable by the embedded flush.

        Raises:
            ValidationError: if the system is not prepared, storage is
                not journaled sqlite (in-memory campaigns have nothing
                durable to snapshot into), or the hosted engine has no
                hot state to snapshot.
        """
        db = self.database
        if getattr(db, "journal", None) is None:
            raise ValidationError(
                "snapshots require storage='sqlite'; in-memory "
                "campaigns have no durable file to snapshot into"
            )
        self._require_hot("snapshot image")
        payload = self._engine.snapshot_payload()
        flushed = db.write_snapshot(payload)
        self._last_snapshot_batch = db.journal.flushed_batches
        if self._config.truncate_journal:
            # The snapshot just committed covers every row at or below
            # its watermark; archive them so later resumes validate and
            # replay only the tail.
            db.journal.truncate_through(payload.journal_seq)
        return flushed

    def _maybe_auto_snapshot(self) -> None:
        """Snapshot when enough journal batches accrued since the last."""
        every = self._config.snapshot_every_batches
        if every <= 0 or self._replaying or not self._hot:
            return
        journal = getattr(self._db, "journal", None)
        if journal is None:
            return
        if journal.flushed_batches - self._last_snapshot_batch >= every:
            try:
                self.snapshot()
            except sqlite3.Error as exc:
                # The snapshot transaction rolled back and the journal's
                # cursors/pending buffer were restored; the campaign
                # serves on degraded until a checkpoint succeeds.
                self._enter_degraded("auto-snapshot", exc)

    def close(self) -> None:
        """Checkpoint (flush + snapshot where supported) and release
        the storage backend (idempotent).

        After ``close`` the campaign file holds everything needed by
        :meth:`resume` — for hot-state engines including a snapshot of
        the final hot state. A no-op with in-memory storage or before
        :meth:`prepare`.

        A degraded campaign whose final durable write still fails
        raises instead of closing: silently releasing the connection
        would drop the buffered (accepted but not yet durable) events —
        and the parallel serving plane stays up, so the still-degraded
        campaign keeps serving.

        With ``config.workers`` the close also stops the serving pool
        and unlinks the shared-memory arena (after the durability
        work, which reads the arena buffers) — so even an in-memory
        campaign with workers must be closed to release ``/dev/shm``.
        """
        if self._db is not None and hasattr(self._db, "close"):
            if (
                getattr(self._db, "journal", None) is not None
                and not getattr(self._db, "closed", False)
            ):
                if self._hot:
                    self.snapshot()
                else:
                    self._db.journal.flush()
            self._db.close()
        if self._hot:
            self._engine.shutdown_parallel()

    # -- resume ----------------------------------------------------------

    @classmethod
    def resume(
        cls,
        path: str,
        config: Optional[DocsConfig] = None,
        kb: Optional[KnowledgeBase] = None,
        worker_store: Optional[WorkerQualityStore] = None,
        repair: bool = False,
        dataset: Optional[CrowdDataset] = None,
    ) -> "DocsSystem":
        """Rebuild a sqlite-backed campaign from its database file.

        With a hot-state engine (``config.engine`` of ``"docs"`` /
        ``"oracle"``): loads the task catalogue in its original arena
        registration order, re-registers every task through the
        bulk-ingest plane (linking and DVE are skipped — domain vectors
        persisted with the tasks), restores the golden registry, then
        rebuilds the hot state: if the file holds a valid snapshot, its
        image is loaded and only the journal tail beyond its watermark
        is replayed — O(n + tail) instead of O(campaign); otherwise (no
        snapshot, or one that fails its checksum / shape / watermark
        checks, logged as a warning) the whole journal replays through
        the same bootstrap/submit code paths a live campaign uses.
        Either way the resumed system's hot state — arena buffers,
        incremental-TI posteriors, worker qualities, rerun cursor — is
        identical to the original's at its last flush, and the campaign
        continues from there: ``assign`` / ``submit`` / ``add_tasks`` /
        ``finalize`` all work. :attr:`resume_info` records which path
        ran. One caveat scopes the identical-state guarantee: with a
        shared ``worker_store``, the *full-replay fallback* re-seeds
        returning workers from the store's **current** values (seeding
        is not a journal event), so if the store moved on since the
        original seed the rebuilt campaign tracks the newer prior; the
        snapshot path restores the exact seeded values.

        With any other engine the campaign has no snapshot image:
        resume re-prepares the engine from the original ``dataset``
        (required — the catalogue alone lacks the KB/taxonomy an
        engine's ``prepare`` needs) and replays the **entire** journal
        — every golden bootstrap and answer — through the engine's own
        bootstrap/submit paths, rebuilding its in-memory inference
        state event for event.

        Args:
            path: the SQLite file a ``DocsSystem(storage="sqlite")``
                campaign ran on.
            config: configuration for the resumed system; must match
                the original run's engine and inference knobs
                (``rerun_interval``, ``default_quality``,
                ``ti_max_iterations`` — and ``workers``, whose rerun
                shard count fixes the full TI's floating-point
                accumulation order) for the replay to reproduce it
                exactly.
            kb: optional knowledge base, re-attached to the ingest
                pipeline so :meth:`add_tasks` can link *new* task texts
                after the resume. Without it, added tasks must carry
                precomputed domain vectors. Hot-state engines only.
            worker_store: optional shared cross-campaign worker model
                (see the constructor). Exports made before the crash
                are not repeated during replay.
            repair: salvage a torn journal tail before validating —
                :meth:`repro.platform.journal.AnswerJournal.salvage`
                truncates back to the last CRC-consistent batch
                boundary, so a file whose final write was cut mid-batch
                resumes at the longest replayable prefix instead of
                raising :class:`~repro.errors.JournalCorruptionError`.
                The salvage report (what was dropped, and why) lands in
                :attr:`resume_info` under ``"salvage"``. Committed
                batches are never touched; default off, because
                truncation is irreversible.
            dataset: the campaign's original dataset, required when the
                configured engine has no hot-state capability (its task
                ids must match the persisted catalogue).

        Returns:
            The resumed, ready-to-serve system.

        Raises:
            ValidationError: if the database holds no campaign, or a
                non-hot-state engine is resumed without ``dataset``.
            JournalCorruptionError: if the journal fails its integrity
                check (partial/corrupt final batch) and ``repair`` is
                off — or fails it even after a salvage.
        """
        system = cls(
            config, storage="sqlite", path=path,
            worker_store=worker_store,
        )
        cfg = system._config
        db = SqliteSystemDatabase(
            path,
            journal_batch_size=cfg.journal_batch_size,
            busy_timeout_ms=cfg.busy_timeout_ms,
            retry=system._commit_retry_policy(),
        )
        try:
            tasks = db.tasks_in_ingest_order()
            if not tasks:
                raise ValidationError(
                    f"nothing to resume at {path!r}: the database holds "
                    "no tasks; run a campaign with "
                    "DocsSystem(storage='sqlite', path=...) first"
                )
            salvage_report = None
            if repair:
                salvage_report = db.journal.salvage()
            db.journal.validate()
            if system._hot:
                snapshot = system._resume_hot(db, tasks, kb)
            else:
                snapshot = None
                system._resume_generic(db, tasks, dataset)
            db.answers.bind_row_resolver(system._row_resolver())
            tail = system._replay_journal(
                from_seq=(
                    snapshot.journal_seq if snapshot is not None else -1
                ),
                snapshot=snapshot,
            )
            system._resume_info = {
                "snapshot_seq": (
                    snapshot.journal_seq
                    if snapshot is not None
                    else None
                ),
                "tail_entries": tail,
                "restore_path": system._restore_path,
            }
            if repair:
                system._resume_info["salvage"] = salvage_report
            system._last_snapshot_batch = db.journal.flushed_batches
            if system._hot:
                system._engine.build_serving_plane()
        except Exception:
            db.close()
            system._db = None
            if system._hot:
                system._engine.shutdown_parallel()
            raise
        return system

    def _resume_hot(self, db, tasks: Sequence[Task], kb):
        """Rebuild a hot-state engine's catalogue registration and pick
        the resume path (snapshot tail-replay vs full replay).

        Returns the snapshot to replay beyond, or ``None`` for full
        replay.
        """
        missing = [
            t.task_id for t in tasks if t.domain_vector is None
        ]
        if missing:
            raise ValidationError(
                f"task {missing[0]} has no persisted domain vector; "
                "the file was not written by a DocsSystem campaign "
                "and cannot be resumed"
            )
        self._engine.rebuild(db, tasks, kb=kb)
        self._db = db
        snapshot = db.load_snapshot()
        if snapshot is not None:
            problem = self._engine.check_snapshot(
                snapshot, db.journal.last_committed_seq
            )
            if problem is not None:
                logger.warning(
                    "snapshot at %r rejected (%s); falling back to "
                    "full journal replay", self._path, problem,
                )
                snapshot = None
        if snapshot is None and db.journal.archived_through >= 0:
            # config.truncate_journal moved the pre-watermark rows
            # into the archive; without a usable snapshot their
            # serving-plane effect cannot be reproduced.
            raise JournalCorruptionError(
                f"the journal at {self._path!r} was truncated through "
                f"seq {db.journal.archived_through} after a snapshot, "
                "but no usable snapshot remains — full replay "
                "cannot rebuild the truncated prefix; restore the "
                "file from a backup"
            )
        if snapshot is not None:
            self._engine.install_snapshot(snapshot)
        return snapshot

    def _resume_generic(
        self,
        db,
        tasks: Sequence[Task],
        dataset: Optional[CrowdDataset],
    ) -> None:
        """Re-prepare a memory-only engine for full journal replay."""
        if dataset is None:
            raise ValidationError(
                f"engine {self._engine.name!r} has no hot-state "
                "capability; resuming it needs the campaign's original "
                "dataset — pass dataset=..."
            )
        catalogue_ids = sorted(t.task_id for t in tasks)
        dataset_ids = sorted(t.task_id for t in dataset.tasks)
        if catalogue_ids != dataset_ids:
            raise ValidationError(
                "the provided dataset's task ids do not match the "
                f"campaign catalogue at {self._path!r}; resume needs "
                "the same dataset the campaign ran on"
            )
        if db.journal.archived_through >= 0:
            raise JournalCorruptionError(
                f"the journal at {self._path!r} was truncated through "
                f"seq {db.journal.archived_through}, but engine "
                f"{self._engine.name!r} resumes by full replay only — "
                "the truncated prefix cannot be rebuilt; restore the "
                "file from a backup"
            )
        self._engine.prepare(dataset)
        self._task_rows = {
            t.task_id: i for i, t in enumerate(tasks)
        }
        self._db = db

    def _restore_compacted(self, through_seq: int) -> None:
        """Rebuild the indexes the snapshot cannot carry, in bulk.

        Answers at or before the watermark are already applied to the
        snapshot's numeric state; what replay cannot skip is the
        in-memory answer table, the append-only answer log, and the
        per-task answer histories. They are rebuilt from one columnar
        journal read with no per-answer inference arithmetic and no
        full-TI re-runs — the O(tail-free) part of snapshot resume.
        Pre-watermark bootstrap events need nothing at all: their whole
        effect lives in the snapshot's worker tables.
        """
        rows = self.database.journal.committed_answers_through(
            through_seq
        )
        if not rows:
            return
        arena = self._incremental.arena
        order = np.asarray(arena.task_ids(), dtype=np.int64)
        task_rows = np.fromiter(
            (row[1] for row in rows), dtype=np.int64, count=len(rows)
        )
        task_ids = np.fromiter(
            (row[2] for row in rows), dtype=np.int64, count=len(rows)
        )
        out_of_range = (task_rows < 0) | (task_rows >= order.shape[0])
        mismatch = out_of_range.copy()
        valid = ~out_of_range
        mismatch[valid] = order[task_rows[valid]] != task_ids[valid]
        if mismatch.any():
            first = int(np.flatnonzero(mismatch)[0])
            raise JournalCorruptionError(
                f"journal entry {rows[first][0]}: task "
                f"{int(task_ids[first])} does not register at the "
                f"recorded arena row {int(task_rows[first])}; the "
                "journal and the task catalogue disagree — restore the "
                "file from a backup"
            )
        choices = np.fromiter(
            (row[4] for row in rows), dtype=np.int64, count=len(rows)
        )
        worker_ids = [row[3] for row in rows]
        answers = [
            Answer(worker_id, int(task_id), int(choice))
            for worker_id, task_id, choice in zip(
                worker_ids, task_ids, choices
            )
        ]
        self.database.answers.restore_batch(answers)
        self._log.extend_restored(task_rows, worker_ids, choices)
        self._incremental.restore_answers(answers)
        self._restore_path = "archive-scan"

    def _restore_from_index(self, index) -> None:
        """Install the snapshot-carried answer columns — the
        O(snapshot + tail) resume path.

        The snapshot's :class:`repro.core.arena.AnswerLogState` holds
        the whole pre-watermark answer relation as int64 columns in
        arrival order, so nothing here reads ``answers_archive`` or
        ``answers_log`` and nothing loops over archived answers in
        Python: the answer log adopts the columns as block writes, and
        the answer table + per-task histories adopt them as a lazy
        :class:`repro.platform.storage.RestoredAnswerColumns` base that
        hydrates per key on first touch.
        """
        self._log.install_restored(index)
        self._restore_path = "index-carry"
        if index.task_rows.shape[0] == 0:
            return
        arena = self._incremental.arena
        order = np.asarray(arena.task_ids(), dtype=np.int64)
        columns = RestoredAnswerColumns(
            task_ids=order[index.task_rows],
            worker_rows=index.worker_rows,
            choices=index.choices + 1,
            worker_ids=index.worker_ids,
        )
        self.database.answers.install_restored_base(columns)
        self._incremental.install_restored_history(columns)

    def _replay_journal(self, from_seq: int = -1, snapshot=None) -> int:
        """Re-apply committed journal events in commit order.

        Entries with ``seq <= from_seq`` are already baked into the
        installed snapshot's numeric state and only rebuild indexes —
        from the snapshot's own answer-index columns when it carries
        them (:meth:`_restore_from_index`; no archived-prefix read), or
        by the :meth:`_restore_compacted` archive scan for snapshots
        written without an index (hot-state engines only). Entries
        beyond the watermark replay through the same bootstrap/submit
        code paths a live campaign uses.

        Returns:
            The number of tail entries fully re-applied.
        """
        engine = self._engine
        pending_bootstrap: Dict[str, List[Answer]] = {}
        tail_entries = 0
        self._replaying = True
        if self._hot:
            engine.replaying = True
        try:
            if from_seq >= 0:
                if (
                    snapshot is not None
                    and snapshot.answer_index is not None
                ):
                    self._restore_from_index(snapshot.answer_index)
                else:
                    self._restore_compacted(from_seq)
            for entry in self.database.journal.replay(
                after_seq=from_seq
            ):
                tail_entries += 1
                if entry.kind == KIND_BOOTSTRAP_ANSWER:
                    pending_bootstrap.setdefault(
                        entry.worker_id, []
                    ).append(
                        Answer(
                            entry.worker_id, entry.task_id, entry.choice
                        )
                    )
                elif entry.kind == KIND_BOOTSTRAP_DONE:
                    answers = pending_bootstrap.pop(entry.worker_id, [])
                    if self._hot:
                        engine.restore_bootstrap(
                            entry.worker_id, answers
                        )
                    else:
                        engine.bootstrap(entry.worker_id, answers)
                elif entry.kind == KIND_ANSWER:
                    expected_row = self._task_row(entry.task_id)
                    if entry.task_row != expected_row:
                        raise JournalCorruptionError(
                            f"journal entry {entry.seq}: task "
                            f"{entry.task_id} registers at arena row "
                            f"{expected_row} but the journal recorded "
                            f"row {entry.task_row}; the journal and the "
                            "task catalogue disagree — restore the file "
                            "from a backup"
                        )
                    answer = Answer(
                        entry.worker_id, entry.task_id, entry.choice
                    )
                    if self._hot:
                        # A shared-store worker's seeding is not a
                        # journal event (the shared store is durable on
                        # its own); re-seed here so her replayed answers
                        # use the stored prior, as the live run did.
                        # Note the store may have moved on since the
                        # original seed — the snapshot path restores
                        # the exact seeded values.
                        engine.seed_from_shared(entry.worker_id)
                        self.database.answers.restore(answer)
                        engine.apply_answer(answer)
                    else:
                        self.database.answers.restore(answer)
                        engine.submit(answer)
                else:
                    raise JournalCorruptionError(
                        f"journal entry {entry.seq} has unknown kind "
                        f"{entry.kind}; the file is newer than this "
                        "code or corrupt"
                    )
        finally:
            self._replaying = False
            if self._hot:
                engine.replaying = False
        if pending_bootstrap:
            workers = ", ".join(sorted(pending_bootstrap))
            raise JournalCorruptionError(
                "journal ends inside an unfinished bootstrap for "
                f"worker(s) {workers}: the final batch is partial; "
                "restore the file from a backup, or delete the dangling "
                "rows to fall back to the last consistent checkpoint"
            )
        return tail_entries

    # -- shared-store export (the engine's on_rerun hook) ----------------

    def _export_to_shared(self, result) -> None:
        """Merge campaign evidence into the shared store (Theorem 1),
        durable-first.

        The engine computes the telescoping per-worker deltas
        (:meth:`repro.engines.docs.DocsEngine.export_deltas`); the
        shell owns the crash-boundary ordering:

        - the journal is flushed before the first merge, so the
          evidence being exported is durable in the campaign file
          first. A crash right after the flush loses at most one
          un-merged delta (bounded under-count); re-run-boundary
          exports are never double-merged, because replay re-derives
          their baselines without exporting. One bounded exception
          remains: a ``finalize()`` export past the last re-run
          boundary is not a journal event, so if the final snapshot is
          lost (full-replay fallback) and the resumed campaign is
          finalized again, that one tail delta can repeat.
        - while the flush (or a merge) is failing, deltas queue in the
          degraded backlog instead of merging, so the store never sees
          evidence the campaign file lost.
        """
        engine = self._engine
        exporting = (
            engine.shared_store is not None and not engine.replaying
        )
        durable = True
        if exporting:
            journal = getattr(self._db, "journal", None)
            if journal is not None:
                try:
                    journal.flush()
                except sqlite3.Error as exc:
                    # Durable-first still holds under degradation: the
                    # deltas queue instead of merging, so the store
                    # never sees evidence the campaign file lost.
                    self._enter_degraded(
                        "journal flush before shared export", exc
                    )
                    durable = False
        for worker_id, delta_mass, delta_u in engine.export_deltas(
            result
        ):
            if durable:
                try:
                    engine.shared_store.apply_batch_delta(
                        worker_id, delta_mass, delta_u
                    )
                except sqlite3.Error as exc:
                    self._enter_degraded("shared-store export", exc)
                    self._pending_shared_exports.append(
                        (worker_id, delta_mass, delta_u)
                    )
                    # Queue the remaining workers too, preserving
                    # export order against the same stuck store.
                    durable = False
            else:
                self._pending_shared_exports.append(
                    (worker_id, delta_mass, delta_u)
                )
