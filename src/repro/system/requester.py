"""Requester-facing convenience: publish tasks, get truths back.

Wraps the platform simulator so that "requester submits tasks + budget,
DOCS returns inferred truths" (Figure 1) is one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.crowd.worker_pool import WorkerPool, WorkerPoolConfig
from repro.datasets.base import CrowdDataset
from repro.platform.amt_sim import PlatformSimulator, SimulationReport
from repro.system.config import DocsConfig
from repro.system.docs_system import DocsSystem
from repro.utils.rng import SeedLike


@dataclass
class CampaignResult:
    """What the requester gets back.

    Attributes:
        truths: task id -> inferred truth (1-based choice).
        report: the full simulation report (accuracy, spend, timing).
    """

    truths: Dict[int, int]
    report: SimulationReport

    def accuracy(self) -> float:
        """Fraction of tasks inferred correctly (needs ground truth)."""
        return self.report.accuracy


def run_campaign(
    dataset: CrowdDataset,
    pool: Optional[WorkerPool] = None,
    config: Optional[DocsConfig] = None,
    answers_per_task: int = 10,
    hit_size: Optional[int] = None,
    seed: SeedLike = 0,
    storage: str = "memory",
    path: Optional[str] = None,
    worker_store=None,
) -> CampaignResult:
    """Run a full DOCS campaign over a dataset with a simulated crowd.

    Args:
        dataset: the published tasks (with ground truth for scoring).
        pool: the workforce; a default specialist pool over the
            dataset's domains is generated when omitted.
        config: DOCS configuration.
        answers_per_task: budget, in answers per task (paper: 10).
        hit_size: tasks per HIT; defaults to the config's value.
        seed: simulation seed.
        storage: DocsSystem storage mode; with ``"sqlite"`` the campaign
            persists to ``path`` and is closed (journal flushed plus a
            final hot-state snapshot) before returning, ready for
            :meth:`repro.system.DocsSystem.resume`.
        path: SQLite path (required when ``storage="sqlite"``).
        worker_store: optional shared cross-campaign worker model (see
            :class:`repro.system.DocsSystem`); known workers skip the
            golden pre-test and the campaign's quality estimates merge
            back into it. Not closed by this function.

    Returns:
        A :class:`CampaignResult`.
    """
    cfg = config or DocsConfig(seed=seed)
    if pool is None:
        active = tuple(d.taxonomy_index for d in dataset.domains)
        pool = WorkerPool.generate(
            WorkerPoolConfig(
                num_workers=50,
                num_domains=dataset.taxonomy.size,
                active_domains=active,
                seed=seed,
            )
        )
    simulator = PlatformSimulator(
        dataset,
        pool,
        answers_per_task=answers_per_task,
        hit_size=hit_size if hit_size is not None else cfg.hit_size,
        seed=seed,
    )
    system = DocsSystem(
        cfg, storage=storage, path=path, worker_store=worker_store
    )
    try:
        report = simulator.run(system)
    finally:
        system.close()
    return CampaignResult(truths=report.truths, report=report)
