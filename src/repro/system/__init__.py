"""The assembled DOCS system (Figure 1).

:class:`DocsSystem` wires DVE + TI + OTA over the platform substrate and
implements the same engine protocol as the competitors, so end-to-end
comparisons run all systems through one simulator.
"""

from repro.system.config import DocsConfig
from repro.system.docs_system import DocsSystem
from repro.system.ingest import IngestPipeline, IngestReport
from repro.system.requester import CampaignResult, run_campaign

__all__ = [
    "DocsConfig",
    "DocsSystem",
    "IngestPipeline",
    "IngestReport",
    "CampaignResult",
    "run_campaign",
]
