"""The Yahoo QA-style dataset ("QA", [35]).

1000 search-engine-style questions whose best answers come from Yahoo!
Answers. Per Section 6.2, most queries concentrate on four domains
(Entertain, Science, Sports, Business). Defining properties:

- *heterogeneous phrasing*: many distinct question forms, little
  template repetition (topic models perform worst here in Figure 3(c));
- *entity-rich*: questions mention several linkable entities, which is
  what makes Table 3's enumeration baseline explode on QA;
- some questions span two domains (the paper's "Harlem Globetrotters
  whistle song" example) — generated here as cross-domain entity pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.types import Task
from repro.datasets.base import (
    CrowdDataset,
    DatasetDomain,
    assign_ground_truths,
    behavior_mixture,
    sample_dominant_concepts,
)
from repro.kb.freebase_sim import SyntheticKBConfig, build_synthetic_kb
from repro.kb.lexicon import DOMAIN_VOCABULARY
from repro.kb.taxonomy import default_taxonomy
from repro.utils.rng import SeedLike, make_rng

_DOMAIN_MAPPING: Dict[str, str] = {
    "Entertain": "Entertainment & Music",
    "Science": "Science & Mathematics",
    "Sports": "Sports",
    "Business": "Business & Finance",
}

#: Varied question frames. ``{a}``/``{b}``/``{c}`` are entity slots;
#: ``{w}`` and ``{x}`` are filled with random words from the task
#: domain's vocabulary, so phrasing varies even within a frame.
_QUESTION_FRAMES: Tuple[str, ...] = (
    "Where does {a} originate from: here or abroad?",
    "Is there a name for the {w} that {a} and {b} are known for?",
    "Who owns {a}: {b} or {c}?",
    "What is the {w} of {a}, and is it bigger than that of {b}?",
    "Did {a} work with {b} on the famous {w}?",
    "Which came first: the {w} of {a} or the {x} of {b}?",
    "Why is {a} associated with the {w} and not the {x}?",
    "Can {a} and {b} both be credited for the {w} of {c} and {d}?",
    "When did {a} first appear alongside {b} and {c}?",
    "Does the {w} of {a} explain the {x} of {b}?",
    "Among {a}, {b}, {c} and {d}, who is known for the {w}?",
)

NUM_TASKS = 1000

#: Fraction of tasks whose entities are drawn from two different domains
#: (multi-domain tasks, Section 6.2's "Analysis on Multiple Domains").
CROSS_DOMAIN_FRACTION = 0.12


@dataclass(frozen=True)
class QAConfig:
    """Generation parameters for the QA dataset."""

    num_tasks: int = NUM_TASKS
    cross_domain_fraction: float = CROSS_DOMAIN_FRACTION
    seed: SeedLike = 0


def make_qa_dataset(config: QAConfig = QAConfig()) -> CrowdDataset:
    """Generate the QA dataset.

    Returns:
        A :class:`CrowdDataset` of ``num_tasks`` two-choice question
        tasks with 1-3 entities each and high phrasing diversity.
    """
    rng = make_rng(config.seed)
    taxonomy = default_taxonomy()
    kb = build_synthetic_kb(
        SyntheticKBConfig(
            concepts_per_domain=70,
            ambiguity_rate=0.5,
            collision_depth=10,
            famous_fraction=0.4,
            seed=rng.integers(0, 2**31),
        ),
        taxonomy=taxonomy,
    )

    domains = [
        DatasetDomain(
            label=label,
            taxonomy_domain=tax_domain,
            taxonomy_index=taxonomy.index_of(tax_domain),
        )
        for label, tax_domain in _DOMAIN_MAPPING.items()
    ]

    tasks: List[Task] = []
    labels: List[str] = []
    # Real search queries are lexically messy: the filler nouns around
    # the entities are not reliably domain-typed (people ask about the
    # "name", "team", or "brand" of anything). Fillers therefore draw
    # from the union of the active domains' vocabularies — the entity is
    # the only dependable domain signal, which is why surface-text topic
    # models fare worst on QA (Figure 3(c)).
    mixed_vocab = tuple(
        word
        for d in domains
        for word in DOMAIN_VOCABULARY[d.taxonomy_domain]
    )
    for task_id in range(config.num_tasks):
        domain = domains[task_id % len(domains)]
        frame = _QUESTION_FRAMES[int(rng.integers(0, len(_QUESTION_FRAMES)))]
        slots = sum(
            frame.count("{" + slot + "}") for slot in ("a", "b", "c", "d")
        )
        vocab = mixed_vocab

        cross = rng.random() < config.cross_domain_fraction
        if cross and slots >= 2:
            other = domains[int(rng.integers(0, len(domains)))]
            concepts = sample_dominant_concepts(
                kb, domain.taxonomy_index, slots - 1, rng
            ) + sample_dominant_concepts(kb, other.taxonomy_index, 1, rng)
        else:
            concepts = sample_dominant_concepts(
                kb, domain.taxonomy_index, slots, rng
            )

        fillers = {
            "w": str(rng.choice(vocab)),
            "x": str(rng.choice(vocab)),
        }
        mapping = dict(
            zip(("a", "b", "c", "d"), (c.name for c in concepts))
        )
        text = frame.format(**mapping, **fillers)
        tasks.append(
            Task(
                task_id=task_id,
                text=text,
                num_choices=2,
                true_domain=domain.taxonomy_index,
                behavior_domains=behavior_mixture(
                    concepts, domain.taxonomy_index, taxonomy.size
                ),
            )
        )
        labels.append(domain.label)

    assign_ground_truths(tasks, rng)
    return CrowdDataset(
        name="qa",
        tasks=tasks,
        kb=kb,
        domains=domains,
        task_labels=labels,
    )
