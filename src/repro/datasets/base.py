"""Dataset container and shared generation machinery."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.types import Task
from repro.errors import ValidationError
from repro.kb.concept import Concept
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.taxonomy import DomainTaxonomy
from repro.utils.math import normalize


@dataclass(frozen=True)
class DatasetDomain:
    """One dataset-level domain and its taxonomy mapping.

    The paper's datasets use their own labels (e.g. "NBA") that map onto
    Yahoo!-taxonomy domains (e.g. "Sports") — Section 6.2 verifies those
    mappings manually; here they are explicit.

    Attributes:
        label: the dataset-level domain name (e.g. "NBA").
        taxonomy_domain: the mapped taxonomy domain name (e.g. "Sports").
        taxonomy_index: index of ``taxonomy_domain`` in the taxonomy.
    """

    label: str
    taxonomy_domain: str
    taxonomy_index: int


@dataclass
class CrowdDataset:
    """A complete dataset: tasks, their KB, and domain annotations.

    Attributes:
        name: dataset id ("item", "4d", "qa", "sfv").
        tasks: the task list; each task carries ``ground_truth`` and
            ``true_domain`` (taxonomy index).
        kb: the knowledge base the tasks' entities live in.
        domains: the dataset-level domains with taxonomy mappings.
        task_labels: per-task dataset-level domain label, aligned with
            ``tasks`` (used for Figure 3's per-domain accuracy).
    """

    name: str
    tasks: List[Task]
    kb: KnowledgeBase
    domains: List[DatasetDomain]
    task_labels: List[str]

    def __post_init__(self) -> None:
        if len(self.tasks) != len(self.task_labels):
            raise ValidationError("task_labels misaligned with tasks")
        known = {d.label for d in self.domains}
        bad = [label for label in self.task_labels if label not in known]
        if bad:
            raise ValidationError(f"unknown task labels: {sorted(set(bad))[:5]}")

    @property
    def taxonomy(self) -> DomainTaxonomy:
        """The taxonomy the KB (and all domain vectors) are sized to."""
        return self.kb.taxonomy

    @property
    def num_tasks(self) -> int:
        """Number of tasks n."""
        return len(self.tasks)

    def task_by_id(self, task_id: int) -> Task:
        """Find a task by id (tasks are id-ordered by construction)."""
        for task in self.tasks:
            if task.task_id == task_id:
                return task
        raise ValidationError(f"unknown task id: {task_id}")

    def label_of(self, task_id: int) -> str:
        """Dataset-level domain label of a task."""
        for task, label in zip(self.tasks, self.task_labels):
            if task.task_id == task_id:
                return label
        raise ValidationError(f"unknown task id: {task_id}")

    def ground_truths(self) -> Dict[int, int]:
        """task id -> ground-truth choice (1-based)."""
        return {
            task.task_id: task.ground_truth
            for task in self.tasks
            if task.ground_truth is not None
        }

    def domain_label_indices(self) -> Dict[str, int]:
        """Dataset label -> taxonomy index."""
        return {d.label: d.taxonomy_index for d in self.domains}

    def summary(self) -> str:
        """One-line human-readable description."""
        per_domain = {
            d.label: sum(1 for lbl in self.task_labels if lbl == d.label)
            for d in self.domains
        }
        return (
            f"{self.name}: {self.num_tasks} tasks, "
            f"domains={per_domain}, kb={self.kb.num_concepts} concepts"
        )


def sample_concepts(
    kb: KnowledgeBase,
    taxonomy_index: int,
    count: int,
    rng: np.random.Generator,
    competitiveness: float = 0.35,
) -> List[Concept]:
    """Sample ``count`` distinct-name concepts from one taxonomy domain.

    A concept qualifies if its commonness is at least ``competitiveness``
    times its strongest same-name rival: tasks reference entities by
    names under which they are *plausible* referents (nobody calls the
    obscure namesake of a celebrity by the bare name in a question), so
    wildly outmatched senses are excluded. Context disambiguation still
    has real work to do for the remaining ambiguous names. Sampling is
    without replacement over names so a task never compares an entity
    with itself.
    """
    eligible: Dict[str, Concept] = {}
    for concept in kb.concepts_in_domain(taxonomy_index):
        strongest_rival = max(
            (
                c.commonness
                for c in kb.candidates(concept.name)
                if c.concept_id != concept.concept_id
            ),
            default=0.0,
        )
        if concept.commonness >= competitiveness * strongest_rival:
            # Keep the most common qualifying sense per name.
            held = eligible.get(concept.name)
            if held is None or concept.commonness > held.commonness:
                eligible[concept.name] = concept
    names = sorted(eligible)
    if len(names) < count:
        raise ValidationError(
            f"domain index {taxonomy_index} has only {len(names)} distinct "
            f"concept names; need {count}"
        )
    chosen = rng.choice(len(names), size=count, replace=False)
    return [eligible[names[int(i)]] for i in chosen]


def sample_concept_names(
    kb: KnowledgeBase,
    taxonomy_index: int,
    count: int,
    rng: np.random.Generator,
    competitiveness: float = 0.35,
) -> List[str]:
    """Name-only convenience wrapper over :func:`sample_concepts`."""
    return [
        c.name
        for c in sample_concepts(
            kb, taxonomy_index, count, rng, competitiveness
        )
    ]


def behavior_mixture(
    concepts: Sequence[Concept],
    primary_index: int,
    num_domains: int,
    primary_weight: float = 0.7,
) -> np.ndarray:
    """The task's soft behavioural domain mixture from its true entities.

    Real tasks are rarely purely one domain: a question about an athlete
    who also acts pulls on both skills. The mixture blends the primary
    domain (weight ``primary_weight``) with the average of the entities'
    normalised indicator vectors — so a task whose entities carry
    secondary domains has genuine behavioural mass there, which soft
    domain vectors (DOCS) can represent and hard topics (IC/FC) cannot.
    """
    if not 0.0 < primary_weight <= 1.0:
        raise ValidationError("primary_weight must be in (0, 1]")
    one_hot = np.zeros(num_domains)
    one_hot[primary_index] = 1.0
    if not concepts:
        return one_hot
    entity_mix = np.zeros(num_domains)
    counted = 0
    for concept in concepts:
        indicator = concept.indicator_vector(num_domains)
        total = indicator.sum()
        if total > 0:
            entity_mix += indicator / total
            counted += 1
    if counted == 0:
        return one_hot
    entity_mix /= counted
    return normalize(
        primary_weight * one_hot + (1.0 - primary_weight) * entity_mix
    )


def sample_dominant_concepts(
    kb: KnowledgeBase,
    taxonomy_index: int,
    count: int,
    rng: np.random.Generator,
    margin: float = 1.5,
    multi_domain: bool = False,
) -> List[Concept]:
    """Sample concepts that *dominate* their alias, primary in a domain.

    A concept dominates its alias when its commonness exceeds the
    *combined* commonness of all other same-name concepts by ``margin``
    (sum-based, so a crowd of minor senses cannot outweigh it). Use this
    for datasets about famous entities (SFV's renowned persons): the
    paper labels such a task's true domain as the entity's most renowned
    domain.

    Args:
        multi_domain: when False (default), only single-domain concepts
            qualify — their renowned domain is unambiguous. When True,
            only *multi*-domain concepts qualify (athletes who act,
            moguls in politics); their behavioural mixture genuinely
            spans domains, which is the case hard-topic methods cannot
            model.
    """
    eligible: Dict[str, Concept] = {}
    for concept in kb.concepts_in_domain(taxonomy_index):
        is_multi = len(concept.domain_indices) > 1
        if is_multi != multi_domain:
            continue
        rival_mass = sum(
            c.commonness
            for c in kb.candidates(concept.name)
            if c.concept_id != concept.concept_id
        )
        if concept.commonness >= margin * rival_mass:
            eligible[concept.name] = concept
    names = sorted(eligible)
    if len(names) < count:
        raise ValidationError(
            f"domain index {taxonomy_index} has only {len(names)} dominant "
            f"{'multi' if multi_domain else 'single'}-domain concept "
            f"names; need {count}"
        )
    chosen = rng.choice(len(names), size=count, replace=False)
    return [eligible[names[int(i)]] for i in chosen]


def sample_dominant_concept_names(
    kb: KnowledgeBase,
    taxonomy_index: int,
    count: int,
    rng: np.random.Generator,
    margin: float = 1.5,
) -> List[str]:
    """Name-only wrapper over :func:`sample_dominant_concepts`."""
    return [
        c.name
        for c in sample_dominant_concepts(
            kb, taxonomy_index, count, rng, margin
        )
    ]


def assign_ground_truths(
    tasks: Sequence[Task], rng: np.random.Generator
) -> None:
    """Give every task a uniform-random ground-truth choice (in place)."""
    for task in tasks:
        task.ground_truth = int(rng.integers(1, task.num_choices + 1))
