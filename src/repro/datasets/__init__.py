"""Synthetic reconstructions of the paper's four evaluation datasets.

The real datasets (ItemCompare, 4-Domain, Yahoo QA, SFV) are AMT
collections that are not redistributable; each generator reproduces the
*structural* properties the evaluation stresses (task counts, domain
counts, per-domain text-similarity profile, choice counts) so that every
experiment exercises the same code paths with the same dynamics:

- :mod:`repro.datasets.item` — Item: 360 tasks, 4 domains, one rigid
  template per domain (high intra-domain string similarity; the regime
  where topic models succeed).
- :mod:`repro.datasets.fourdomain` — 4D: 400 tasks, 4 domains, varied
  templates including *cross-domain lookalikes* ("compare the height of
  two players" vs "of two mountains") that defeat surface-text methods.
- :mod:`repro.datasets.qa` — QA: 1000 heterogeneous search-engine-style
  questions over 4 dominant domains, entity-rich.
- :mod:`repro.datasets.sfv` — SFV: 328 person-attribute tasks with 4
  choices collected from QA systems.
"""

from repro.datasets.base import CrowdDataset, DatasetDomain
from repro.datasets.registry import DATASET_NAMES, make_dataset

__all__ = ["CrowdDataset", "DatasetDomain", "DATASET_NAMES", "make_dataset"]
