"""The SFV-style dataset ([30]).

328 tasks, each asking an attribute of a person (e.g. "the age of Bill
Gates") with choices harvested from multiple QA systems. Per Section 6.2
the persons concentrate on Entertain, Business, Sports, Politics, and the
task's true domain is the person's most renowned domain. Defining
properties: short texts, one dominant entity per task, generic attribute
words that carry no domain signal — the worst case for topic models
(Figure 3(d)), while the entity link resolves the domain directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.types import Task
from repro.datasets.base import (
    CrowdDataset,
    DatasetDomain,
    assign_ground_truths,
    behavior_mixture,
    sample_dominant_concepts,
)
from repro.errors import ValidationError
from repro.kb.freebase_sim import SyntheticKBConfig, build_synthetic_kb
from repro.kb.taxonomy import default_taxonomy
from repro.utils.rng import SeedLike, make_rng

_DOMAIN_MAPPING: Dict[str, str] = {
    "Entertain": "Entertainment & Music",
    "Business": "Business & Finance",
    "Sports": "Sports",
    "Politics": "Politics & Government",
}

#: Attribute frames. Deliberately domain-neutral wording: the only domain
#: evidence is the person entity itself.
_ATTRIBUTE_FRAMES: Tuple[str, ...] = (
    "What is the age of {a}?",
    "What is the birthplace of {a}?",
    "What is the full name of the spouse of {a}?",
    "In which year was {a} born?",
    "What is the net worth of {a} according to public records?",
    "How tall is {a} compared to {b}?",
    "Where did {a} study before meeting {b}?",
    "Which city does {a} live in today, near {b} or {c}?",
    "What is the age gap between {a} and {b}?",
)

NUM_TASKS = 328

#: Choices per task: SFV aggregates candidate answers from several QA
#: systems, giving multi-choice tasks (we use 4).
NUM_CHOICES = 4

#: Fraction of tasks about persons renowned in *two* domains (athletes
#: who act, moguls in politics); their behaviour genuinely spans domains,
#: which soft domain vectors model and hard topics cannot.
MULTI_DOMAIN_FRACTION = 0.2


@dataclass(frozen=True)
class SFVConfig:
    """Generation parameters for the SFV dataset."""

    num_tasks: int = NUM_TASKS
    num_choices: int = NUM_CHOICES
    multi_domain_fraction: float = MULTI_DOMAIN_FRACTION
    seed: SeedLike = 0


def make_sfv_dataset(config: SFVConfig = SFVConfig()) -> CrowdDataset:
    """Generate the SFV dataset.

    Returns:
        A :class:`CrowdDataset` of ``num_tasks`` four-choice
        person-attribute tasks.
    """
    rng = make_rng(config.seed)
    taxonomy = default_taxonomy()
    kb = build_synthetic_kb(
        SyntheticKBConfig(
            concepts_per_domain=70,
            ambiguity_rate=0.55,
            collision_depth=10,
            famous_fraction=0.4,
            seed=rng.integers(0, 2**31),
        ),
        taxonomy=taxonomy,
    )

    domains = [
        DatasetDomain(
            label=label,
            taxonomy_domain=tax_domain,
            taxonomy_index=taxonomy.index_of(tax_domain),
        )
        for label, tax_domain in _DOMAIN_MAPPING.items()
    ]

    tasks: List[Task] = []
    labels: List[str] = []
    for task_id in range(config.num_tasks):
        domain = domains[task_id % len(domains)]
        frame = _ATTRIBUTE_FRAMES[int(rng.integers(0, len(_ATTRIBUTE_FRAMES)))]
        # SFV asks about renowned persons: the entity's dominant sense
        # defines the task's true domain, so sample dominant concepts.
        # The *subject* person may be renowned in two domains; companion
        # persons mentioned by the frame come from the same domain.
        slots = sum(
            frame.count("{" + s + "}") for s in ("a", "b", "c")
        )
        multi = rng.random() < config.multi_domain_fraction
        try:
            (person,) = sample_dominant_concepts(
                kb, domain.taxonomy_index, 1, rng, multi_domain=multi
            )
        except ValidationError:
            # Fall back to single-domain persons when the multi pool for
            # this domain is thin in the generated KB.
            (person,) = sample_dominant_concepts(
                kb, domain.taxonomy_index, 1, rng, multi_domain=False
            )
        companions = []
        if slots > 1:
            companions = [
                c
                for c in sample_dominant_concepts(
                    kb, domain.taxonomy_index, slots, rng
                )
                if c.name != person.name
            ][: slots - 1]
        mapping = dict(
            zip(
                ("a", "b", "c"),
                [person.name] + [c.name for c in companions],
            )
        )
        tasks.append(
            Task(
                task_id=task_id,
                text=frame.format(**mapping),
                num_choices=config.num_choices,
                true_domain=domain.taxonomy_index,
                behavior_domains=behavior_mixture(
                    [person] + companions,
                    domain.taxonomy_index,
                    taxonomy.size,
                    primary_weight=0.55,
                ),
                # One QA-system candidate is a convincing near-miss.
                distractor=int(rng.integers(1, config.num_choices + 1)),
            )
        )
        labels.append(domain.label)

    assign_ground_truths(tasks, rng)
    return CrowdDataset(
        name="sfv",
        tasks=tasks,
        kb=kb,
        domains=domains,
        task_labels=labels,
    )
