"""Dataset registry: name -> generator."""

from __future__ import annotations

from typing import Callable, Dict

from repro.datasets.base import CrowdDataset
from repro.datasets.fourdomain import FourDomainConfig, make_fourdomain_dataset
from repro.datasets.item import ItemConfig, make_item_dataset
from repro.datasets.qa import QAConfig, make_qa_dataset
from repro.datasets.sfv import SFVConfig, make_sfv_dataset
from repro.errors import ValidationError
from repro.utils.rng import SeedLike

DATASET_NAMES = ("item", "4d", "qa", "sfv")


def make_dataset(name: str, seed: SeedLike = 0, **overrides) -> CrowdDataset:
    """Build one of the paper's four datasets by name.

    Args:
        name: one of ``item``, ``4d``, ``qa``, ``sfv``.
        seed: generation seed.
        **overrides: forwarded to the dataset's config dataclass (e.g.
            ``num_tasks=100`` for a scaled-down QA).

    Returns:
        The generated :class:`~repro.datasets.base.CrowdDataset`.
    """
    key = name.lower()
    if key == "item":
        return make_item_dataset(ItemConfig(seed=seed, **overrides))
    if key == "4d":
        return make_fourdomain_dataset(FourDomainConfig(seed=seed, **overrides))
    if key == "qa":
        return make_qa_dataset(QAConfig(seed=seed, **overrides))
    if key == "sfv":
        return make_sfv_dataset(SFVConfig(seed=seed, **overrides))
    raise ValidationError(
        f"unknown dataset {name!r}; expected one of {DATASET_NAMES}"
    )
