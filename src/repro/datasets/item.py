"""The ItemCompare-style dataset ("Item", [18]).

360 tasks across 4 domains (NBA, Food, Auto, Country), 90 tasks each,
two choices. The defining property (Section 6.1): *task descriptions in
each domain are highly similar* — every task in a domain instantiates the
same comparison template. This is the regime where LDA-style domain
detection works (~100% in Figure 3(a)), making Item the control dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.types import Task
from repro.datasets.base import (
    CrowdDataset,
    DatasetDomain,
    assign_ground_truths,
    behavior_mixture,
    sample_concepts,
)
from repro.kb.freebase_sim import SyntheticKBConfig, build_synthetic_kb
from repro.kb.taxonomy import default_taxonomy
from repro.utils.rng import SeedLike, make_rng

#: dataset label -> (taxonomy domain, rigid comparison template).
_DOMAIN_TEMPLATES: Dict[str, Tuple[str, str]] = {
    "NBA": (
        "Sports",
        "Which player wins more championships in a season: {a} or {b}?",
    ),
    "Food": (
        "Food & Drink",
        "Which food contains more calories per recipe: {a} or {b}?",
    ),
    "Auto": (
        "Cars & Transportation",
        "Which car engine has more horsepower and torque: {a} or {b}?",
    ),
    "Country": (
        "Travel",
        "Which destination attracts more cruise visitors: {a} or {b}?",
    ),
}

#: Tasks per domain (360 total, matching the paper).
TASKS_PER_DOMAIN = 90


@dataclass(frozen=True)
class ItemConfig:
    """Generation parameters for the Item dataset."""

    tasks_per_domain: int = TASKS_PER_DOMAIN
    seed: SeedLike = 0


def make_item_dataset(config: ItemConfig = ItemConfig()) -> CrowdDataset:
    """Generate the Item dataset.

    Returns:
        A :class:`CrowdDataset` with 4 x ``tasks_per_domain`` two-choice
        tasks, rigidly templated per domain.
    """
    rng = make_rng(config.seed)
    taxonomy = default_taxonomy()
    kb = build_synthetic_kb(
        SyntheticKBConfig(
            concepts_per_domain=40,
            ambiguity_rate=0.3,
            collision_depth=2,
            seed=rng.integers(0, 2**31),
        ),
        taxonomy=taxonomy,
    )

    domains = [
        DatasetDomain(
            label=label,
            taxonomy_domain=tax_domain,
            taxonomy_index=taxonomy.index_of(tax_domain),
        )
        for label, (tax_domain, _) in _DOMAIN_TEMPLATES.items()
    ]

    tasks: List[Task] = []
    labels: List[str] = []
    task_id = 0
    for domain in domains:
        template = _DOMAIN_TEMPLATES[domain.label][1]
        for _ in range(config.tasks_per_domain):
            a, b = sample_concepts(kb, domain.taxonomy_index, 2, rng)
            tasks.append(
                Task(
                    task_id=task_id,
                    text=template.format(a=a.name, b=b.name),
                    num_choices=2,
                    true_domain=domain.taxonomy_index,
                    behavior_domains=behavior_mixture(
                        [a, b], domain.taxonomy_index, taxonomy.size
                    ),
                )
            )
            labels.append(domain.label)
            task_id += 1

    assign_ground_truths(tasks, rng)
    return CrowdDataset(
        name="item",
        tasks=tasks,
        kb=kb,
        domains=domains,
        task_labels=labels,
    )
