"""The 4-Domain dataset ("4D").

400 tasks across NBA, Car, Film, Mountain (100 each), two choices. The
defining property (Section 6.1): *task descriptions within a domain are
NOT similar* — each domain mixes several question forms, and crucially
some templates are shared verbatim across domains ("Compare the height of
{a} and {b}" for both players and mountains). Surface-text topic models
collapse those lookalikes into one latent domain; KB linking separates
them by what the entities actually are. This is the dataset where
Figure 3(b) shows DOCS >= 95% while IC and FC degrade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.types import Task
from repro.datasets.base import (
    CrowdDataset,
    DatasetDomain,
    assign_ground_truths,
    behavior_mixture,
    sample_concepts,
)
from repro.kb.freebase_sim import SyntheticKBConfig, build_synthetic_kb
from repro.kb.taxonomy import default_taxonomy
from repro.utils.rng import SeedLike, make_rng

#: Templates shared verbatim across two domains — the paper's motivating
#: failure case for text-similarity methods. Each entry: (template,
#: domains it is used in). Shared templates deliberately avoid
#: domain-specific vocabulary.
_SHARED_TEMPLATES: Tuple[Tuple[str, Tuple[str, str]], ...] = (
    ("Compare the height of {a} and {b}: which one is taller?",
     ("NBA", "Mountain")),
    ("Which one is older: {a} or {b}?", ("Car", "Film")),
    ("Is {a} better known worldwide than {b}?", ("NBA", "Film")),
)

#: Domain-specific templates (varied forms within each domain).
_DOMAIN_TEMPLATES: Dict[str, Tuple[str, ...]] = {
    "NBA": (
        "What position does {a} play: guard or forward?",
        "Has {a} won more championships with the team than {b}?",
        "Which athlete scored more in the playoff season: {a} or {b}?",
    ),
    "Car": (
        "Does {a} have more horsepower than {b}?",
        "Which sedan has better mileage and fuel economy: {a} or {b}?",
        "Is the engine torque of {a} higher than that of {b}?",
    ),
    "Film": (
        "Did {a} win an oscar before {b} did?",
        "Which movie starred {a}: the drama or the sitcom?",
        "Was the premiere of {a} earlier than the album of {b}?",
    ),
    "Mountain": (
        "Is the summit altitude of {a} above that of {b}?",
        "Which peak was measured by the geology expedition first: {a} or {b}?",
        "Does {a} have more fossil sites than {b}?",
    ),
}

_DOMAIN_MAPPING: Dict[str, str] = {
    "NBA": "Sports",
    "Car": "Cars & Transportation",
    "Film": "Entertainment & Music",
    "Mountain": "Science & Mathematics",
}

TASKS_PER_DOMAIN = 100

#: Fraction of each domain's tasks drawn from shared (cross-domain)
#: templates; the rest use domain-specific forms.
SHARED_FRACTION = 0.4


@dataclass(frozen=True)
class FourDomainConfig:
    """Generation parameters for the 4D dataset."""

    tasks_per_domain: int = TASKS_PER_DOMAIN
    shared_fraction: float = SHARED_FRACTION
    seed: SeedLike = 0


def make_fourdomain_dataset(
    config: FourDomainConfig = FourDomainConfig(),
) -> CrowdDataset:
    """Generate the 4D dataset.

    Returns:
        A :class:`CrowdDataset` of 4 x ``tasks_per_domain`` two-choice
        tasks with heterogeneous, partially cross-domain templates.
    """
    rng = make_rng(config.seed)
    taxonomy = default_taxonomy()
    kb = build_synthetic_kb(
        SyntheticKBConfig(
            concepts_per_domain=60,
            ambiguity_rate=0.35,
            collision_depth=2,
            seed=rng.integers(0, 2**31),
        ),
        taxonomy=taxonomy,
    )

    domains = [
        DatasetDomain(
            label=label,
            taxonomy_domain=tax_domain,
            taxonomy_index=taxonomy.index_of(tax_domain),
        )
        for label, tax_domain in _DOMAIN_MAPPING.items()
    ]
    shared_by_label: Dict[str, List[str]] = {label: [] for label in _DOMAIN_MAPPING}
    for template, members in _SHARED_TEMPLATES:
        for label in members:
            shared_by_label[label].append(template)

    tasks: List[Task] = []
    labels: List[str] = []
    task_id = 0
    for domain in domains:
        shared_pool = shared_by_label[domain.label]
        specific_pool = list(_DOMAIN_TEMPLATES[domain.label])
        shared_count = int(round(config.tasks_per_domain * config.shared_fraction))
        for idx in range(config.tasks_per_domain):
            if idx < shared_count and shared_pool:
                template = shared_pool[idx % len(shared_pool)]
            else:
                template = specific_pool[idx % len(specific_pool)]
            a, b = sample_concepts(kb, domain.taxonomy_index, 2, rng)
            tasks.append(
                Task(
                    task_id=task_id,
                    text=template.format(a=a.name, b=b.name),
                    num_choices=2,
                    true_domain=domain.taxonomy_index,
                    behavior_domains=behavior_mixture(
                        [a, b], domain.taxonomy_index, taxonomy.size
                    ),
                )
            )
            labels.append(domain.label)
            task_id += 1

    assign_ground_truths(tasks, rng)
    return CrowdDataset(
        name="4d",
        tasks=tasks,
        kb=kb,
        domains=domains,
        task_labels=labels,
    )
