"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``demo`` — run a full DOCS campaign on one dataset and print the
  outcome (the quickstart, parameterised).
- ``run`` — run a campaign with a chosen storage backend
  (``--store sqlite --db PATH`` persists it), or ``--resume`` a
  persisted campaign from its database file.
- ``datasets`` — list the built-in dataset generators with their sizes.
- ``engines`` — list the registered inference engines (the names
  ``run --engine``, ``DocsConfig.engine``, and the service's campaign
  ``engine`` field accept).
- ``detect`` — run DVE over a dataset and report domain-detection
  accuracy.
- ``compare-ti`` — the Figure 5 comparison on one dataset.
- ``compare-ota`` — the Figure 8 end-to-end comparison on one dataset.
- ``check-db`` — integrity-check a campaign database: journal CRC
  validation, snapshot checksum, and a salvage dry-run (``--salvage``
  actually truncates a torn tail to the last consistent batch).
- ``analyze`` — run one SQL-pushdown analytics report
  (worker-accuracy, convergence, leaderboard, spam) over a campaign
  database and print JSON; ``--explain`` prints the query plan
  instead.
- ``serve`` — run the asyncio HTTP service: campaign lifecycle, task
  upload, assignment, and answer submission over the network, with a
  bounded arrival queue (429 backpressure) and coalesced journal
  flushes. ``--resume`` reopens every campaign in ``--db-dir``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        default="4d",
        choices=("item", "4d", "qa", "sfv"),
        help="which of the paper's datasets to use",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="master random seed"
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of DOCS: Domain-Aware Crowdsourcing System "
            "(VLDB 2016)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a full DOCS campaign")
    _add_common(demo)
    demo.add_argument(
        "--answers-per-task",
        type=int,
        default=10,
        help="budget in answers per task",
    )
    demo.add_argument(
        "--hit-size", type=int, default=3, help="tasks per HIT (k)"
    )
    demo.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "serve from N forked worker processes over a shared-memory "
            "arena (0 = single-process; >= 2 also shards the full-TI "
            "reruns and ingest linking N ways; requires fork)"
        ),
    )

    run = sub.add_parser(
        "run",
        help="run (or resume) a campaign with durable storage",
    )
    _add_common(run)
    run.add_argument(
        "--answers-per-task",
        type=int,
        default=10,
        help="budget in answers per task",
    )
    run.add_argument(
        "--hit-size", type=int, default=3, help="tasks per HIT (k)"
    )
    run.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "serve from N forked worker processes over a shared-memory "
            "arena (0 = single-process; >= 2 also shards the full-TI "
            "reruns and ingest linking N ways; requires fork)"
        ),
    )
    run.add_argument(
        "--store",
        default="memory",
        choices=("memory", "sqlite"),
        help="storage backend for the campaign state",
    )
    run.add_argument(
        "--db",
        default=None,
        help="SQLite database path (required with --store sqlite)",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume the campaign persisted at --db (loads the latest "
            "snapshot and replays the journal tail; full replay when "
            "no snapshot is usable) and report its current inference"
        ),
    )
    run.add_argument(
        "--snapshot-every",
        type=int,
        default=None,
        metavar="N",
        help=(
            "with --store sqlite, write a compacted hot-state snapshot "
            "every N flushed journal batches (default: config's "
            "snapshot_every_batches; 0 = only on checkpoint/close)"
        ),
    )
    run.add_argument(
        "--worker-db",
        default=None,
        metavar="PATH",
        help=(
            "SQLite file holding the shared cross-campaign worker "
            "model; known workers skip the golden pre-test and this "
            "campaign's quality estimates merge back into it"
        ),
    )
    run.add_argument(
        "--engine",
        default=None,
        metavar="NAME",
        help=(
            "inference engine the campaign shell hosts (see 'repro "
            "engines'; default: docs). Engines without the hot-state "
            "capability run memory-only inference behind the same "
            "campaign surface"
        ),
    )

    sub.add_parser("datasets", help="list built-in datasets")

    sub.add_parser(
        "engines",
        help=(
            "list registered inference engines (usable with run "
            "--engine, DocsConfig.engine, and the service's campaign "
            "'engine' field)"
        ),
    )

    detect = sub.add_parser(
        "detect", help="DVE domain-detection accuracy on a dataset"
    )
    _add_common(detect)

    compare_ti = sub.add_parser(
        "compare-ti", help="Figure 5 truth-inference comparison"
    )
    _add_common(compare_ti)

    compare_ota = sub.add_parser(
        "compare-ota", help="Figure 8 end-to-end OTA comparison"
    )
    _add_common(compare_ota)

    check = sub.add_parser(
        "check-db",
        help=(
            "integrity-check a campaign database (journal CRC, "
            "snapshot checksum, salvage dry-run)"
        ),
    )
    check.add_argument(
        "path", help="SQLite campaign database file to check"
    )
    check.add_argument(
        "--salvage",
        action="store_true",
        help=(
            "truncate a torn journal tail back to the last consistent "
            "batch (IRREVERSIBLE: drops the rows the dry-run reports; "
            "committed consistent batches are never touched)"
        ),
    )

    analyze = sub.add_parser(
        "analyze",
        help=(
            "run a SQL-pushdown analytics report over a campaign "
            "database (worker-accuracy, convergence, leaderboard, "
            "spam)"
        ),
    )
    analyze.add_argument(
        "path", help="SQLite campaign database file to analyze"
    )
    analyze.add_argument(
        "query",
        help=(
            "analytics query name; see docs/api.md for the registry "
            "and per-query parameters"
        ),
    )
    analyze.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help=(
            "query parameter (repeatable), e.g. --param window=50"
        ),
    )
    analyze.add_argument(
        "--explain",
        action="store_true",
        help=(
            "print the EXPLAIN QUERY PLAN lines instead of running "
            "the query (covering-index sanity check)"
        ),
    )

    serve = sub.add_parser(
        "serve",
        help=(
            "serve DOCS campaigns over HTTP (stdlib asyncio; see "
            "docs/api.md for the endpoint table)"
        ),
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="bind port (0 picks a free one and prints it)",
    )
    serve.add_argument(
        "--db-dir",
        default=None,
        help=(
            "directory for campaign databases and the shared worker "
            "store; omitted = everything in memory"
        ),
    )
    serve.add_argument(
        "--worker-db",
        default=None,
        help=(
            "shared worker-store path (default: <db-dir>/workers.db)"
        ),
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=128,
        help=(
            "bounded arrival-queue capacity; beyond it requests get "
            "429 + Retry-After"
        ),
    )
    serve.add_argument(
        "--coalesce-max",
        type=int,
        default=64,
        help=(
            "max requests drained per scheduling round (submit "
            "batch size per journal flush)"
        ),
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help=(
            "reopen every campaign whose <name>.meta.json sidecar "
            "lives in --db-dir before accepting traffic"
        ),
    )

    report = sub.add_parser(
        "report",
        help="assemble benchmarks/results/*.txt into one markdown report",
    )
    report.add_argument(
        "--results-dir",
        default="benchmarks/results",
        help="directory the benchmarks wrote their tables to",
    )
    report.add_argument(
        "--output",
        default=None,
        help="write the report here instead of stdout",
    )
    return parser


def _cmd_demo(args) -> int:
    from repro.datasets import make_dataset
    from repro.system import DocsConfig, run_campaign

    dataset = make_dataset(args.dataset, seed=args.seed)
    print(dataset.summary())
    result = run_campaign(
        dataset,
        config=DocsConfig(seed=args.seed, workers=args.workers),
        answers_per_task=args.answers_per_task,
        hit_size=args.hit_size,
        seed=args.seed,
    )
    report = result.report
    print(f"answers collected : {report.total_answers}")
    print(f"HITs issued       : {len(report.hit_log)}")
    print(f"spend             : ${report.hit_log.total_spend():.2f}")
    print(f"worst assignment  : {report.max_assign_seconds * 1e3:.2f} ms")
    print(f"accuracy          : {result.accuracy():.1%}")
    return 0


def _cmd_run(args) -> int:
    from repro.datasets import make_dataset
    from repro.platform.sqlite_storage import SqliteWorkerQualityStore
    from repro.system import DocsConfig, DocsSystem, run_campaign

    if args.store == "sqlite" and not args.db:
        print("--store sqlite requires --db PATH", file=sys.stderr)
        return 2

    if args.resume:
        if not args.db:
            print("--resume requires --db PATH", file=sys.stderr)
            return 2
        config = DocsConfig(seed=args.seed, workers=args.workers)
        if args.snapshot_every is not None:
            from dataclasses import replace

            config = replace(
                config, snapshot_every_batches=args.snapshot_every
            )
        if args.engine:
            from dataclasses import replace

            config = replace(config, engine=args.engine)
        worker_db = None
        if args.worker_db:
            # The store must be attached *during* resume so a
            # full-replay fallback re-seeds returning workers from it;
            # its taxonomy size comes from the persisted domain
            # vectors (float64 blobs).
            import sqlite3

            conn = sqlite3.connect(args.db)
            try:
                row = conn.execute(
                    "SELECT LENGTH(domain_vector) FROM tasks "
                    "WHERE domain_vector IS NOT NULL LIMIT 1"
                ).fetchone()
            except sqlite3.OperationalError:
                row = None
            finally:
                conn.close()
            if row is None:
                print(
                    f"{args.db} holds no resumable campaign",
                    file=sys.stderr,
                )
                return 2
            worker_db = SqliteWorkerQualityStore(
                int(row[0]) // 8, path=args.worker_db
            )
        # Engines without the hot-state capability resume by full
        # replay through a re-prepared engine, which needs the
        # campaign's original dataset (same generator, same seed).
        from repro.engines import CAP_HOT_STATE, make_engine

        probe = make_engine(
            config.engine, seed=args.seed, config=config
        )
        hot = CAP_HOT_STATE in probe.capabilities()
        system = DocsSystem.resume(
            args.db,
            config=config,
            worker_store=worker_db,
            dataset=(
                None
                if hot
                else make_dataset(args.dataset, seed=args.seed)
            ),
        )
        truths = system.finalize()
        tasks = system.database.tasks()
        scored = [t for t in tasks if t.ground_truth is not None]
        info = system.resume_info or {}
        snapshot_seq = info.get("snapshot_seq")
        source = (
            f"snapshot@seq {snapshot_seq} + "
            f"{info.get('tail_entries', 0)} tail event(s)"
            if snapshot_seq is not None
            else f"full replay ({info.get('tail_entries', 0)} event(s))"
        )
        print(f"resumed campaign   : {args.db}")
        print(f"rebuilt from       : {source}")
        print(f"tasks restored     : {len(tasks)}")
        print(f"answers replayed   : {len(system.database.answers)}")
        if hot:
            print(
                "workers known      : "
                f"{len(list(system.quality_store.known_workers()))}"
            )
        if scored:
            correct = sum(
                truths[t.task_id] == t.ground_truth for t in scored
            )
            print(
                f"accuracy           : {correct / len(scored):.1%} "
                f"({correct}/{len(scored)})"
            )
        system.close()
        if worker_db is not None:
            worker_db.close()
        return 0

    dataset = make_dataset(args.dataset, seed=args.seed)
    print(dataset.summary())
    config = DocsConfig(seed=args.seed, workers=args.workers)
    if args.snapshot_every is not None:
        from dataclasses import replace

        config = replace(
            config, snapshot_every_batches=args.snapshot_every
        )
    if args.engine:
        from dataclasses import replace

        config = replace(config, engine=args.engine)
    worker_db = None
    if args.worker_db:
        worker_db = SqliteWorkerQualityStore(
            dataset.taxonomy.size, path=args.worker_db
        )
    result = run_campaign(
        dataset,
        config=config,
        answers_per_task=args.answers_per_task,
        hit_size=args.hit_size,
        seed=args.seed,
        storage=args.store,
        path=args.db,
        worker_store=worker_db,
    )
    report = result.report
    print(f"answers collected : {report.total_answers}")
    print(f"accuracy          : {result.accuracy():.1%}")
    if worker_db is not None:
        print(
            "worker model       : "
            f"{len(list(worker_db.known_workers()))} worker(s) in "
            f"{args.worker_db}"
        )
        worker_db.close()
    if args.store == "sqlite":
        print(f"campaign persisted: {args.db}")
        print(
            "resume with       : python -m repro run --store sqlite "
            f"--db {args.db} --resume"
        )
    return 0


def _cmd_datasets(args) -> int:
    from repro.datasets import DATASET_NAMES, make_dataset

    for name in DATASET_NAMES:
        dataset = make_dataset(name, seed=0)
        print(dataset.summary())
    return 0


def _cmd_engines(args) -> int:
    from repro.engines import ENGINES

    width = max(len(name) for name in ENGINES)
    for spec in ENGINES.values():
        print(f"{spec.name:<{width}}  {spec.summary}")
    return 0


def _cmd_detect(args) -> int:
    from repro.core.dve import DomainVectorEstimator
    from repro.datasets import make_dataset
    from repro.linking import EntityLinker

    dataset = make_dataset(args.dataset, seed=args.seed)
    estimator = DomainVectorEstimator(
        EntityLinker(dataset.kb), dataset.taxonomy.size
    )
    vectors = estimator.estimate_batch([t.text for t in dataset.tasks])
    correct = sum(
        int(np.argmax(vector)) == task.true_domain
        for task, vector in zip(dataset.tasks, vectors)
    )
    print(
        f"{args.dataset}: domain detection "
        f"{correct}/{dataset.num_tasks} "
        f"({correct / dataset.num_tasks:.1%})"
    )
    return 0


def _cmd_compare_ti(args) -> int:
    from repro.experiments import build_context
    from repro.experiments.fig5 import (
        format_ti_comparison,
        run_ti_comparison,
    )

    context = build_context(args.dataset, seed=args.seed)
    result = run_ti_comparison(context)
    print(format_ti_comparison([result]))
    return 0


def _cmd_compare_ota(args) -> int:
    from repro.experiments.fig8 import (
        format_ota_comparison,
        run_ota_comparison,
    )

    result = run_ota_comparison(args.dataset, seed=args.seed)
    print(format_ota_comparison([result]))
    return 0


def _cmd_check_db(args) -> int:
    import os

    from repro.errors import JournalCorruptionError, SchemaVersionError
    from repro.platform.sqlite_storage import (
        SCHEMA_VERSION,
        SqliteSystemDatabase,
    )

    if not os.path.exists(args.path):
        print(f"no such file: {args.path}", file=sys.stderr)
        return 2
    try:
        db = SqliteSystemDatabase(args.path, journal_batch_size=256)
    except SchemaVersionError as exc:
        print(f"schema version     : REFUSED — {exc}", file=sys.stderr)
        return 2
    try:
        journal = db.journal
        print(f"database           : {args.path}")
        print(
            "schema version     : supported "
            f"(this build reads <= {SCHEMA_VERSION})"
        )
        print(f"tasks              : {len(db)}")
        archived = journal.archived_through
        archive_note = (
            f", archived through seq {archived}" if archived >= 0 else ""
        )
        print(
            f"journal            : {len(journal)} committed row(s) in "
            f"{journal.flushed_batches} batch(es){archive_note}"
        )

        report = journal.salvage(dry_run=True)
        if report.clean:
            print("journal integrity  : OK")
            print("salvage (dry run)  : nothing to drop")
        else:
            print(f"journal integrity  : CORRUPT — {report.problem}")
            print(
                "salvage (dry run)  : would drop "
                f"{report.dropped_rows} row(s) "
                f"({report.dropped_answers} answer(s)) across "
                f"{report.dropped_batches} batch record(s), keeping "
                f"seq <= {report.valid_through_seq}"
            )
            if args.salvage:
                applied = journal.salvage()
                print(
                    "salvage            : dropped "
                    f"{applied.dropped_rows} row(s); journal truncated "
                    f"to seq {applied.valid_through_seq}"
                )
                journal.validate()
                print("journal integrity  : OK after salvage")

        snapshot = db.load_snapshot()
        if snapshot is not None:
            print(
                "snapshot           : OK, covers journal through seq "
                f"{snapshot.journal_seq}"
            )
        else:
            print(
                "snapshot           : none usable (resume falls back "
                "to full journal replay)"
            )

        if not report.clean and not args.salvage:
            print(
                "\nthe journal tail is torn; re-run with --salvage to "
                "truncate it, or resume with "
                "DocsSystem.resume(path, repair=True)",
                file=sys.stderr,
            )
            return 1
        return 0
    except JournalCorruptionError as exc:
        print(f"journal integrity  : CORRUPT — {exc}", file=sys.stderr)
        return 1
    finally:
        db.close()


def _cmd_report(args) -> int:
    import pathlib

    from repro.experiments.report import build_report

    output = pathlib.Path(args.output) if args.output else None
    text = build_report(pathlib.Path(args.results_dir), output=output)
    if output is None:
        print(text)
    else:
        print(f"report written to {output}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import os
    import signal

    from repro.platform import faults
    from repro.service import DocsService, ServiceConfig, ServiceServer

    fault_spec = os.environ.get("REPRO_SERVE_FAULT")
    if fault_spec:
        # "<point>[:<skip>]" — arm a simulated kill at a named fault
        # point (the kill-and-resume test plants one mid-load); the
        # process dies there like a SIGKILL would.
        point, _, skip_text = fault_spec.partition(":")
        faults.active().arm(point, "crash", skip=int(skip_text or 0))

    if args.db_dir:
        os.makedirs(args.db_dir, exist_ok=True)
    config = ServiceConfig(
        queue_limit=args.queue_limit,
        coalesce_max=args.coalesce_max,
        db_dir=args.db_dir,
        worker_db=args.worker_db,
    )

    def _die(crash: BaseException) -> None:
        # Emulate SIGKILL at the armed point: no flush, no cleanup,
        # no atexit — the crash-safety matrix's assumptions exactly.
        print(f"fatal (simulated kill): {crash}", file=sys.stderr,
              flush=True)
        os._exit(137)

    app = DocsService(config, on_fatal=_die)
    # Start the scheduler before resuming: SQLite connections are
    # thread-affine, so campaigns must be reopened on the thread that
    # will serve them.
    app.start()
    if args.resume:
        resumed = app.resume_campaigns()
        print(f"resumed campaigns: {resumed}", flush=True)

    server = ServiceServer(app, host=args.host, port=args.port)

    async def _serve() -> None:
        await server.start()
        print(
            f"serving on http://{server.host}:{server.port}",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:
                pass
        await stop.wait()
        await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    app.stop()
    print(
        "server stopped; campaigns checkpointed and closed",
        flush=True,
    )
    return 0


def _cmd_analyze(args) -> int:
    import json
    import os

    from repro.analytics import explain_query, run_query
    from repro.errors import ReproError, SchemaVersionError
    from repro.platform.sqlite_storage import SqliteSystemDatabase

    if not os.path.exists(args.path):
        print(f"no such file: {args.path}", file=sys.stderr)
        return 2
    params = {}
    for item in args.param:
        key, sep, value = item.partition("=")
        if not sep or not key:
            print(
                f"bad --param {item!r}; expected KEY=VALUE",
                file=sys.stderr,
            )
            return 2
        params[key] = value
    try:
        # Opening through the platform layer validates the schema
        # version and runs the covering-index migration on old files.
        db = SqliteSystemDatabase(args.path, journal_batch_size=256)
    except SchemaVersionError as exc:
        print(f"REFUSED — {exc}", file=sys.stderr)
        return 2
    try:
        if args.explain:
            for line in explain_query(db._conn, args.query, params):
                print(line)
        else:
            result = run_query(db._conn, args.query, params)
            print(json.dumps(result, indent=2))
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    finally:
        db.close()
    return 0


_COMMANDS = {
    "demo": _cmd_demo,
    "run": _cmd_run,
    "datasets": _cmd_datasets,
    "engines": _cmd_engines,
    "detect": _cmd_detect,
    "compare-ti": _cmd_compare_ti,
    "compare-ota": _cmd_compare_ota,
    "check-db": _cmd_check_db,
    "analyze": _cmd_analyze,
    "serve": _cmd_serve,
    "report": _cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
