"""Simulated worker profiles with per-domain qualities.

Workers are *domain specialists*: each has a few expertise domains where
accuracy is high and is mediocre elsewhere. This mirrors the paper's
Figure 6(a) observation (e.g. many workers are strong on Auto, weak on
Food) and is precisely the structure that makes domain-aware methods pay
off — if all workers were uniformly skilled, DOCS would collapse to
ZenCrowd.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.utils.rng import SeedLike, make_rng


@dataclass(frozen=True)
class WorkerProfile:
    """A simulated worker.

    Attributes:
        worker_id: unique id (AMT-style opaque string).
        quality: length-m vector; ``quality[k]`` is the true probability
            of answering a domain-k task correctly.
    """

    worker_id: str
    quality: np.ndarray

    def __post_init__(self) -> None:
        q = np.asarray(self.quality, dtype=float)
        if q.ndim != 1 or q.size == 0:
            raise ValidationError("quality must be a non-empty vector")
        if np.any(q < 0) or np.any(q > 1):
            raise ValidationError("qualities must lie in [0, 1]")
        object.__setattr__(self, "quality", q)


@dataclass(frozen=True)
class WorkerPoolConfig:
    """Parameters of the simulated workforce.

    A worker's quality in domain k is ``base + boost[k]`` (clipped to
    [0, 1]) where ``base`` is a per-worker competence scalar and the
    boost applies on her expertise domains. This two-level structure
    matters for the competitor ordering: the *base* spread is what scalar
    models (ZC) and confusion matrices (DS) can learn — hence they beat
    MV — while the *boost* is visible only to domain-aware methods —
    hence IC/FC/DOCS beat ZC/DS, reproducing Figure 5(a)'s stack. A
    spammer fraction adds the generally-unreliable workers every real
    platform has.

    Attributes:
        num_workers: pool size.
        num_domains: m (vector length).
        expertise_domains: (min, max) count of expertise domains per
            worker, sampled uniformly.
        base_quality: (low, high) uniform range of per-worker base
            competence.
        expertise_boost: (low, high) uniform additive boost on expertise
            domains.
        spammer_fraction: fraction of workers whose base is drawn from
            ``spammer_quality`` and who get no expertise boost.
        spammer_quality: (low, high) base range for spammers.
        active_domains: if given, expertise domains are drawn only from
            these indices (e.g. the 4 domains a dataset actually uses);
            qualities are still defined for all m domains.
        seed: RNG seed.
    """

    num_workers: int = 50
    num_domains: int = 26
    expertise_domains: Tuple[int, int] = (1, 2)
    base_quality: Tuple[float, float] = (0.42, 0.58)
    expertise_boost: Tuple[float, float] = (0.28, 0.42)
    spammer_fraction: float = 0.15
    spammer_quality: Tuple[float, float] = (0.2, 0.4)
    active_domains: Optional[Tuple[int, ...]] = None
    seed: SeedLike = 0

    def validate(self) -> None:
        if self.num_workers <= 0:
            raise ValidationError("num_workers must be positive")
        if self.num_domains <= 0:
            raise ValidationError("num_domains must be positive")
        lo, hi = self.expertise_domains
        if not 0 < lo <= hi:
            raise ValidationError("expertise_domains must satisfy 0 < lo <= hi")
        for name, (low, high) in (
            ("base_quality", self.base_quality),
            ("spammer_quality", self.spammer_quality),
        ):
            if not 0 <= low <= high <= 1:
                raise ValidationError(f"{name} must satisfy 0 <= lo <= hi <= 1")
        b_lo, b_hi = self.expertise_boost
        if not 0 <= b_lo <= b_hi:
            raise ValidationError("expertise_boost must satisfy 0 <= lo <= hi")
        if not 0.0 <= self.spammer_fraction <= 1.0:
            raise ValidationError("spammer_fraction must be in [0, 1]")
        if self.active_domains is not None:
            if not self.active_domains:
                raise ValidationError("active_domains must be non-empty")
            if any(
                not 0 <= d < self.num_domains for d in self.active_domains
            ):
                raise ValidationError("active_domains indices out of range")


class WorkerPool:
    """A fixed set of simulated workers.

    Build with :meth:`generate` for a random specialist pool, or pass
    explicit profiles for hand-crafted tests.
    """

    def __init__(self, profiles: Sequence[WorkerProfile]):
        if not profiles:
            raise ValidationError("worker pool cannot be empty")
        sizes = {p.quality.size for p in profiles}
        if len(sizes) != 1:
            raise ValidationError("inconsistent quality vector sizes")
        ids = [p.worker_id for p in profiles]
        if len(set(ids)) != len(ids):
            raise ValidationError("duplicate worker ids in pool")
        self._profiles: Dict[str, WorkerProfile] = {
            p.worker_id: p for p in profiles
        }
        self._order: List[str] = ids

    @classmethod
    def generate(cls, config: WorkerPoolConfig) -> "WorkerPool":
        """Sample a specialist pool from the config."""
        config.validate()
        rng = make_rng(config.seed)
        domain_choices = (
            np.array(config.active_domains)
            if config.active_domains is not None
            else np.arange(config.num_domains)
        )
        lo, hi = config.expertise_domains
        profiles = []
        for idx in range(config.num_workers):
            is_spammer = rng.random() < config.spammer_fraction
            if is_spammer:
                base = rng.uniform(*config.spammer_quality)
            else:
                base = rng.uniform(*config.base_quality)
            # Small per-domain jitter so qualities are not literally flat.
            quality = np.clip(
                base + rng.uniform(-0.04, 0.04, size=config.num_domains),
                0.0,
                1.0,
            )
            if not is_spammer:
                count = int(rng.integers(lo, hi + 1))
                count = min(count, domain_choices.size)
                expert_at = rng.choice(
                    domain_choices, size=count, replace=False
                )
                quality[expert_at] = np.clip(
                    base + rng.uniform(*config.expertise_boost, size=count),
                    0.0,
                    1.0,
                )
            profiles.append(
                WorkerProfile(worker_id=f"W{idx:04d}", quality=quality)
            )
        return cls(profiles)

    @property
    def worker_ids(self) -> List[str]:
        """Worker ids in creation order."""
        return list(self._order)

    @property
    def num_domains(self) -> int:
        """Quality vector length m."""
        return self._profiles[self._order[0]].quality.size

    def profile(self, worker_id: str) -> WorkerProfile:
        """Profile of one worker.

        Raises:
            ValidationError: if unknown.
        """
        profile = self._profiles.get(worker_id)
        if profile is None:
            raise ValidationError(f"unknown worker: {worker_id}")
        return profile

    def true_quality(self, worker_id: str) -> np.ndarray:
        """The worker's ground-truth quality vector (read-only copy)."""
        return self.profile(worker_id).quality.copy()

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self):
        return (self._profiles[wid] for wid in self._order)
