"""Worker arrival process for online-assignment experiments.

On AMT, workers arrive in an uncontrolled order and request HITs. The
simulator reproduces that: an arrival process yields worker ids; each
arrival requests one HIT of k tasks. A per-worker HIT cap bounds how much
a single worker can dominate (on AMT, prolific workers answer many HITs
but not all of them).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

import numpy as np

from repro.crowd.worker_pool import WorkerPool
from repro.errors import ValidationError
from repro.utils.rng import SeedLike, make_rng


class WorkerArrivalProcess:
    """Uniform-random worker arrivals with an optional per-worker cap.

    Args:
        pool: the worker pool to draw from.
        max_hits_per_worker: arrivals stop yielding a worker once they
            have arrived this many times (None = unbounded).
        seed: RNG seed.
    """

    def __init__(
        self,
        pool: WorkerPool,
        max_hits_per_worker: Optional[int] = None,
        seed: SeedLike = 0,
    ):
        if max_hits_per_worker is not None and max_hits_per_worker < 1:
            raise ValidationError("max_hits_per_worker must be >= 1")
        self._pool = pool
        self._cap = max_hits_per_worker
        self._rng = make_rng(seed)
        self._counts: Dict[str, int] = {}

    def __iter__(self) -> Iterator[str]:
        return self

    def __next__(self) -> str:
        """The next arriving worker id.

        Raises:
            StopIteration: when every worker has exhausted their cap.
        """
        candidates = [
            wid
            for wid in self._pool.worker_ids
            if self._cap is None or self._counts.get(wid, 0) < self._cap
        ]
        if not candidates:
            raise StopIteration
        worker_id = candidates[int(self._rng.integers(0, len(candidates)))]
        self._counts[worker_id] = self._counts.get(worker_id, 0) + 1
        return worker_id

    def arrivals_so_far(self) -> Dict[str, int]:
        """How many times each worker has arrived."""
        return dict(self._counts)
