"""Simulated crowd: worker profiles, answer behaviour, arrivals.

Substitutes the live AMT workforce. The answer model implements exactly
the generative assumptions DOCS makes (Eq. 4): a worker answering a task
whose true domain is ``d_k`` is correct with probability ``q^w_k`` and
otherwise picks uniformly among the wrong choices. Worker pools are
*domain specialists* — high quality on a few expertise domains, mediocre
elsewhere — matching the paper's Figure 6 case study where real workers
show strongly domain-dependent accuracy.
"""

from repro.crowd.worker_pool import WorkerPool, WorkerPoolConfig, WorkerProfile
from repro.crowd.answer_model import sample_answer, collect_answers
from repro.crowd.arrival import WorkerArrivalProcess

__all__ = [
    "WorkerPool",
    "WorkerPoolConfig",
    "WorkerProfile",
    "sample_answer",
    "collect_answers",
    "WorkerArrivalProcess",
]
