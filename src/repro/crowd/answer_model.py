"""Worker answer behaviour (the generative model behind Eq. 4).

A worker answering task ``t`` behaves according to the task's *true*
domain (what the task is actually about — dataset ground truth), not the
system's estimate: with probability ``q^w_{o}`` she answers correctly,
otherwise she picks uniformly among the wrong choices. When a task has no
annotated true domain, one is sampled from its domain vector (matching
the paper's model where ``Pr(o_i = k) = r_ti_k``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.types import Answer, Task
from repro.crowd.worker_pool import WorkerPool, WorkerProfile
from repro.errors import ValidationError
from repro.utils.rng import SeedLike, make_rng

#: Probability that a wrong answer lands on the task's distractor choice
#: (when one is set) rather than a uniformly random wrong choice.
DISTRACTOR_PULL = 0.65


def sample_answer(
    task: Task,
    worker: WorkerProfile,
    rng: np.random.Generator,
) -> int:
    """Sample the worker's (1-based) answer to a task.

    Raises:
        ValidationError: if the task lacks both ground truth and a domain
            vector needed to determine behaviour.
    """
    if task.ground_truth is None:
        raise ValidationError(
            f"task {task.task_id} has no ground truth; cannot simulate"
        )
    if task.behavior_domains is not None:
        domain = int(
            rng.choice(task.behavior_domains.size, p=task.behavior_domains)
        )
    elif task.true_domain is not None:
        domain = task.true_domain
    elif task.domain_vector is not None:
        domain = int(
            rng.choice(task.domain_vector.size, p=task.domain_vector)
        )
    else:
        raise ValidationError(
            f"task {task.task_id} has neither behaviour mixture, "
            "true_domain, nor domain_vector"
        )
    accuracy = float(worker.quality[domain])
    if rng.random() < accuracy:
        return task.ground_truth
    wrong = [
        choice
        for choice in range(1, task.num_choices + 1)
        if choice != task.ground_truth
    ]
    distractor = task.distractor
    if (
        distractor is not None
        and distractor != task.ground_truth
        and rng.random() < DISTRACTOR_PULL
    ):
        return distractor
    return int(rng.choice(wrong))


def collect_answers(
    tasks: Sequence[Task],
    pool: WorkerPool,
    answers_per_task: int = 10,
    seed: SeedLike = 0,
) -> List[Answer]:
    """Batch-collect the paper's "assign each task to N workers" setting.

    Each task is answered by ``answers_per_task`` distinct workers chosen
    uniformly from the pool (Section 6.1 collects 10 answers per task).

    Returns:
        All answers, task-major order.
    """
    if answers_per_task < 1:
        raise ValidationError("answers_per_task must be >= 1")
    if answers_per_task > len(pool):
        raise ValidationError(
            f"need {answers_per_task} distinct workers but pool has "
            f"{len(pool)}"
        )
    rng = make_rng(seed)
    worker_ids = pool.worker_ids
    answers: List[Answer] = []
    for task in tasks:
        chosen = rng.choice(
            len(worker_ids), size=answers_per_task, replace=False
        )
        for widx in chosen:
            worker = pool.profile(worker_ids[int(widx)])
            choice = sample_answer(task, worker, rng)
            answers.append(
                Answer(
                    worker_id=worker.worker_id,
                    task_id=task.task_id,
                    choice=choice,
                )
            )
    return answers
