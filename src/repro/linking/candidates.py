"""Candidate generation: alias -> ranked concept candidates.

For each detected mention, the candidate set is every KB concept indexed
under that alias; the prior weight of a candidate is its *commonness*
(mirroring link-frequency features in Wikifier [36]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.kb.concept import Concept
from repro.kb.knowledge_base import KnowledgeBase


@dataclass(frozen=True)
class CandidateSet:
    """Candidates for one mention with their prior weights.

    Attributes:
        concepts: candidate concepts (arbitrary but deterministic order).
        priors: positive prior weights aligned with ``concepts``
            (not normalised — the disambiguator combines them with
            context scores before normalising).
    """

    concepts: Tuple[Concept, ...]
    priors: np.ndarray

    def __len__(self) -> int:
        return len(self.concepts)


def generate_candidates(surface: str, kb: KnowledgeBase) -> CandidateSet:
    """Build the candidate set for a mention surface form.

    Returns:
        A :class:`CandidateSet`; empty if the alias is unknown (callers
        should have detected mentions through the same KB, so this only
        happens in direct API use).
    """
    concepts = kb.candidates(surface)
    priors = np.array([c.commonness for c in concepts], dtype=float)
    return CandidateSet(concepts=tuple(concepts), priors=priors)
