"""Coherence-aware entity linking (correlated concepts).

Section 3 assumes "the entity is linked into different concepts
independently" and defers correlation among concepts to future work.
This module implements that extension: in a task mentioning "Michael
Jordan" and "NBA", the two correct senses share the Sports domain, so a
joint objective should prefer *coherent* candidate pairs over whatever
each mention's local evidence says alone.

:class:`CoherentEntityLinker` wraps the base linker and runs a fixed
number of rounds of mutual re-scoring: each candidate's probability is
re-weighted by how much its domain indicator overlaps the expected
indicator of all *other* entities under their current distributions —
a mean-field approximation of the joint linking posterior that keeps
the per-round cost at O(entities x candidates x m).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ValidationError
from repro.linking.wikifier import EntityLinker, LinkedEntity
from repro.utils.math import normalize


class CoherentEntityLinker:
    """Entity linker with cross-entity coherence re-scoring.

    Args:
        base: the underlying independent linker.
        coherence_weight: strength beta of the coherence term; 0 leaves
            the base distributions untouched.
        rounds: mean-field refinement rounds (1-2 suffice in practice).
    """

    def __init__(
        self,
        base: EntityLinker,
        coherence_weight: float = 1.0,
        rounds: int = 2,
    ):
        if coherence_weight < 0:
            raise ValidationError("coherence_weight must be >= 0")
        if rounds < 1:
            raise ValidationError("rounds must be >= 1")
        self._base = base
        self._beta = coherence_weight
        self._rounds = rounds

    @property
    def kb(self):
        """The underlying knowledge base."""
        return self._base.kb

    @property
    def top_c(self) -> int:
        """Candidates kept per entity (delegated to the base linker)."""
        return self._base.top_c

    def link(
        self, text: str, top_c: Optional[int] = None
    ) -> List[LinkedEntity]:
        """Link with coherence re-scoring.

        Single-entity tasks have no coherence signal and are returned
        unchanged.
        """
        entities = self._base.link(text, top_c=top_c)
        if len(entities) < 2 or self._beta == 0:
            return entities

        probabilities = [e.probabilities.copy() for e in entities]
        indicators = [e.indicators for e in entities]
        for _ in range(self._rounds):
            # Expected indicator per entity under current distributions.
            expected = [
                p @ h for p, h in zip(probabilities, indicators)
            ]
            total = np.sum(expected, axis=0)
            updated = []
            for i, (p, h) in enumerate(zip(probabilities, indicators)):
                others = total - expected[i]
                # Overlap of each candidate's indicator with the other
                # entities' expected domains, normalised to [0, 1].
                scale = others.max()
                if scale <= 0:
                    updated.append(p)
                    continue
                overlap = (h @ others) / (
                    np.maximum(h.sum(axis=1), 1.0) * scale
                )
                updated.append(normalize(p * (1.0 + self._beta * overlap)))
            probabilities = updated

        return [
            LinkedEntity(
                surface=e.surface,
                concept_ids=e.concept_ids,
                probabilities=p,
                indicators=e.indicators,
            )
            for e, p in zip(entities, probabilities)
        ]
