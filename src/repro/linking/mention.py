"""Mention detection: find KB-linkable spans in task text.

Greedy longest-match over the KB alias index: scan tokens left to right,
at each position try the longest alias window first, and never overlap
mentions. This mirrors dictionary-based spotters used by practical linkers
and guarantees that a task mentioning "Michael Jordan" yields one two-token
mention rather than two one-token ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.kb.knowledge_base import KnowledgeBase
from repro.utils.text import STOPWORDS, tokenize


@dataclass(frozen=True)
class Mention:
    """A detected entity mention.

    Attributes:
        surface: the matched phrase (canonical lowercase form).
        token_start: index of the first token in the task's token stream.
        token_length: number of tokens covered.
    """

    surface: str
    token_start: int
    token_length: int


def detect_mentions(text: str, kb: KnowledgeBase) -> List[Mention]:
    """Detect non-overlapping KB mentions in ``text``.

    Single-token matches consisting solely of a stopword are rejected so
    that e.g. an alias unfortunately colliding with "the" cannot flood the
    linker.

    Returns:
        Mentions ordered by position.
    """
    tokens = tokenize(text)
    max_window = max(kb.max_alias_tokens, 1)
    mentions: List[Mention] = []
    pos = 0
    total = len(tokens)
    while pos < total:
        matched = False
        upper = min(max_window, total - pos)
        for length in range(upper, 0, -1):
            phrase = " ".join(tokens[pos:pos + length])
            if length == 1 and phrase in STOPWORDS:
                continue
            if kb.has_alias(phrase):
                mentions.append(
                    Mention(
                        surface=phrase,
                        token_start=pos,
                        token_length=length,
                    )
                )
                pos += length
                matched = True
                break
        if not matched:
            pos += 1
    return mentions


def context_tokens(text: str, mentions: List[Mention]) -> List[str]:
    """Content tokens of ``text`` outside the mention spans.

    These are the disambiguation context: the words around the entities,
    which carry the domain signal ("championships" vs "machine learning").
    """
    tokens = tokenize(text)
    covered = set()
    for mention in mentions:
        covered.update(
            range(
                mention.token_start,
                mention.token_start + mention.token_length,
            )
        )
    return [
        tok
        for idx, tok in enumerate(tokens)
        if idx not in covered and tok not in STOPWORDS
    ]
