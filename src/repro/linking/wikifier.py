"""The :class:`EntityLinker` facade — text in, ``(E_t, p_i, h_ij)`` out.

This is the reproduction of the Wikifier-based Step 1 of Section 3:
detect entities, link each to its top-c candidate concepts with a
probability distribution, and attach each candidate's domain indicator
vector. The output type :class:`LinkedEntity` is the direct input to
:func:`repro.core.dve.domain_vector` (Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.kb.knowledge_base import KnowledgeBase
from repro.linking.candidates import generate_candidates
from repro.linking.disambiguate import (
    DEFAULT_SMOOTHING,
    score_candidates,
    truncate_top_c,
)
from repro.linking.mention import context_tokens, detect_mentions
from repro.utils.math import normalize

#: The paper extracts the top 20 candidate concepts per entity by default.
DEFAULT_TOP_C = 20


@dataclass(frozen=True)
class LinkedEntity:
    """One detected entity with its candidate linking distribution.

    Attributes:
        surface: the mention's surface form.
        concept_ids: ids of the kept candidate concepts.
        probabilities: the linking distribution ``p_i`` (sums to 1),
            aligned with ``concept_ids``.
        indicators: matrix of shape ``(len(concept_ids), m)``; row j is the
            indicator vector ``h_{i,j}`` of the j-th candidate.
    """

    surface: str
    concept_ids: Tuple[int, ...]
    probabilities: np.ndarray
    indicators: np.ndarray

    def __post_init__(self) -> None:
        if len(self.concept_ids) != self.probabilities.shape[0]:
            raise ValidationError(
                "probabilities misaligned with concept ids"
            )
        if self.indicators.shape[0] != len(self.concept_ids):
            raise ValidationError("indicators misaligned with concept ids")

    @property
    def num_candidates(self) -> int:
        """Number of kept candidate concepts ``|p_i|``."""
        return len(self.concept_ids)


class EntityLinker:
    """Links task text to KB concepts, producing DVE inputs.

    Args:
        kb: the knowledge base to link against.
        top_c: candidates kept per entity (paper default 20; the Table 3
            heuristics use 10 and 3).
        smoothing: context-score smoothing, see
            :mod:`repro.linking.disambiguate`.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        top_c: int = DEFAULT_TOP_C,
        smoothing: float = DEFAULT_SMOOTHING,
    ):
        if top_c <= 0:
            raise ValidationError(f"top_c must be positive: {top_c}")
        self._kb = kb
        self._top_c = top_c
        self._smoothing = smoothing

    @property
    def kb(self) -> KnowledgeBase:
        """The underlying knowledge base."""
        return self._kb

    @property
    def top_c(self) -> int:
        """Candidates kept per entity."""
        return self._top_c

    def link(self, text: str, top_c: Optional[int] = None) -> List[LinkedEntity]:
        """Run the full linking pipeline on one task's text.

        Args:
            text: the task description.
            top_c: optional per-call override of the candidate cutoff.

        Returns:
            One :class:`LinkedEntity` per detected mention with a non-empty
            candidate set. Tasks with no linkable entities return ``[]``
            (the DVE layer then falls back to a uniform domain vector).
        """
        cutoff = top_c if top_c is not None else self._top_c
        if cutoff <= 0:
            raise ValidationError(f"top_c must be positive: {cutoff}")
        mentions = detect_mentions(text, self._kb)
        context = context_tokens(text, mentions)
        entities: List[LinkedEntity] = []
        for mention in mentions:
            candidates = generate_candidates(mention.surface, self._kb)
            if len(candidates) == 0:
                continue
            scores = score_candidates(
                candidates, context, smoothing=self._smoothing
            )
            kept = truncate_top_c(scores, cutoff)
            probs = normalize(scores[kept])
            concept_ids = tuple(
                candidates.concepts[j].concept_id for j in kept
            )
            indicators = np.stack(
                [self._kb.indicator(cid) for cid in concept_ids]
            )
            entities.append(
                LinkedEntity(
                    surface=mention.surface,
                    concept_ids=concept_ids,
                    probabilities=probs,
                    indicators=indicators,
                )
            )
        return entities
