"""The :class:`EntityLinker` facade — text in, ``(E_t, p_i, h_ij)`` out.

This is the reproduction of the Wikifier-based Step 1 of Section 3:
detect entities, link each to its top-c candidate concepts with a
probability distribution, and attach each candidate's domain indicator
vector. The output type :class:`LinkedEntity` is the direct input to
:func:`repro.core.dve.domain_vector` (Algorithm 1).

Linking is the first stage of the batch ingest plane
(:class:`repro.system.ingest.IngestPipeline`): :meth:`EntityLinker.link_batch`
resolves mentions for many task texts in one pass over a *shared
candidate cache*. A task batch mentions the same surface forms over and
over ("Michael Jordan" appears in hundreds of NBA questions), so the
candidate set, each candidate's description term bag, and the kept
candidates' stacked indicator matrix (cached KB-side by
:meth:`repro.kb.knowledge_base.KnowledgeBase.indicator_matrix`) are
computed once per surface instead of once per mention occurrence. Only
the context-dependent work — the cosine between the task's words and
each candidate description — runs per task, and it runs on precomputed
bags. ``link`` and ``link_batch`` share the cache and the code path, so
their outputs are bit-identical.
"""

from __future__ import annotations

import multiprocessing
import sys
import zlib
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.kb.knowledge_base import KnowledgeBase, canonical_alias
from repro.linking.candidates import CandidateSet, generate_candidates
from repro.linking.disambiguate import (
    DEFAULT_SMOOTHING,
    score_candidates_from_counts,
    truncate_top_c,
)
from repro.linking.mention import context_tokens, detect_mentions
from repro.utils.math import normalize
from repro.utils.text import bag_norm

#: The paper extracts the top 20 candidate concepts per entity by default.
DEFAULT_TOP_C = 20

#: Candidate-cache shards. Sharding by surface hash keeps each shard's
#: dict small and — more importantly — gives parallel batch linking a
#: stable partition to merge worker-discovered entries back into.
DEFAULT_CACHE_SHARDS = 16


def _cache_shard(key: str, num_shards: int) -> int:
    """Stable surface-hash shard (crc32 — ``hash(str)`` is per-process
    randomised and would re-shard every run)."""
    return zlib.crc32(key.encode("utf-8")) % num_shards


@dataclass(frozen=True)
class LinkedEntity:
    """One detected entity with its candidate linking distribution.

    Attributes:
        surface: the mention's surface form.
        concept_ids: ids of the kept candidate concepts.
        probabilities: the linking distribution ``p_i`` (sums to 1),
            aligned with ``concept_ids``.
        indicators: matrix of shape ``(len(concept_ids), m)``; row j is the
            indicator vector ``h_{i,j}`` of the j-th candidate. May be a
            KB-cached matrix shared between entities — treat as
            read-only.
    """

    surface: str
    concept_ids: Tuple[int, ...]
    probabilities: np.ndarray
    indicators: np.ndarray

    def __post_init__(self) -> None:
        if len(self.concept_ids) != self.probabilities.shape[0]:
            raise ValidationError(
                "probabilities misaligned with concept ids"
            )
        if self.indicators.shape[0] != len(self.concept_ids):
            raise ValidationError("indicators misaligned with concept ids")

    @property
    def num_candidates(self) -> int:
        """Number of kept candidate concepts ``|p_i|``."""
        return len(self.concept_ids)


class _SurfaceEntry:
    """Everything context-independent about one mention surface."""

    __slots__ = ("candidates", "description_counts", "description_norms")

    def __init__(self, candidates: CandidateSet):
        self.candidates = candidates
        self.description_counts = [
            Counter(c.description) for c in candidates.concepts
        ]
        self.description_norms = [
            bag_norm(counts) for counts in self.description_counts
        ]


class EntityLinker:
    """Links task text to KB concepts, producing DVE inputs.

    Args:
        kb: the knowledge base to link against.
        top_c: candidates kept per entity (paper default 20; the Table 3
            heuristics use 10 and 3).
        smoothing: context-score smoothing, see
            :mod:`repro.linking.disambiguate`.
        candidate_cache: share context-independent per-surface state
            (candidate sets, description bags) across calls. On by
            default; disable only to measure the uncached baseline.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        top_c: int = DEFAULT_TOP_C,
        smoothing: float = DEFAULT_SMOOTHING,
        candidate_cache: bool = True,
    ):
        if top_c <= 0:
            raise ValidationError(f"top_c must be positive: {top_c}")
        self._kb = kb
        self._top_c = top_c
        self._smoothing = smoothing
        self._num_shards = DEFAULT_CACHE_SHARDS
        self._cache: Optional[List[Dict[str, _SurfaceEntry]]] = (
            [{} for _ in range(self._num_shards)]
            if candidate_cache
            else None
        )
        #: When set (parallel link workers), entries computed on a
        #: cache miss are also recorded here so the parent can merge
        #: them into its shards after the fork-isolated child exits.
        self._capture: Optional[Dict[str, _SurfaceEntry]] = None

    @property
    def kb(self) -> KnowledgeBase:
        """The underlying knowledge base."""
        return self._kb

    @property
    def top_c(self) -> int:
        """Candidates kept per entity."""
        return self._top_c

    @property
    def cached_surfaces(self) -> int:
        """Number of surface forms in the shared candidate cache."""
        if self._cache is None:
            return 0
        return sum(len(shard) for shard in self._cache)

    def _surface_entry(self, surface: str) -> _SurfaceEntry:
        if self._cache is None:
            return _SurfaceEntry(generate_candidates(surface, self._kb))
        key = canonical_alias(surface)
        shard = self._cache[_cache_shard(key, self._num_shards)]
        entry = shard.get(key)
        if entry is None:
            entry = _SurfaceEntry(generate_candidates(surface, self._kb))
            shard[key] = entry
            if self._capture is not None:
                self._capture[key] = entry
        return entry

    def _merge_entries(
        self, entries: Dict[str, _SurfaceEntry]
    ) -> None:
        """Fold worker-captured surface entries into the shard dicts.

        First writer wins: entries are pure functions of the surface,
        so two workers resolving the same surface produced equal state
        and either copy serves future batches.
        """
        if self._cache is None:
            return
        for key, entry in entries.items():
            shard = self._cache[_cache_shard(key, self._num_shards)]
            shard.setdefault(key, entry)

    def _link_one(self, text: str, cutoff: int) -> List[LinkedEntity]:
        mentions = detect_mentions(text, self._kb)
        context = context_tokens(text, mentions)
        context_counts = Counter(context)
        context_norm = bag_norm(context_counts)
        entities: List[LinkedEntity] = []
        for mention in mentions:
            entry = self._surface_entry(mention.surface)
            candidates = entry.candidates
            if len(candidates) == 0:
                continue
            scores = score_candidates_from_counts(
                candidates,
                entry.description_counts,
                entry.description_norms,
                context_counts,
                context_norm,
                smoothing=self._smoothing,
            )
            kept = truncate_top_c(scores, cutoff)
            probs = normalize(scores[kept])
            concept_ids = tuple(
                candidates.concepts[j].concept_id for j in kept
            )
            if self._cache is None:
                # Fully uncached mode re-stacks per mention (the
                # pre-pipeline behaviour the prepare benchmark times).
                indicators = np.stack(
                    [self._kb.indicator(cid) for cid in concept_ids]
                )
            else:
                indicators = self._kb.indicator_matrix(concept_ids)
            entities.append(
                LinkedEntity(
                    surface=mention.surface,
                    concept_ids=concept_ids,
                    probabilities=probs,
                    indicators=indicators,
                )
            )
        return entities

    def _resolve_cutoff(self, top_c: Optional[int]) -> int:
        cutoff = top_c if top_c is not None else self._top_c
        if cutoff <= 0:
            raise ValidationError(f"top_c must be positive: {cutoff}")
        return cutoff

    def link(self, text: str, top_c: Optional[int] = None) -> List[LinkedEntity]:
        """Run the full linking pipeline on one task's text.

        Args:
            text: the task description.
            top_c: optional per-call override of the candidate cutoff.

        Returns:
            One :class:`LinkedEntity` per detected mention with a non-empty
            candidate set. Tasks with no linkable entities return ``[]``
            (the DVE layer then falls back to a uniform domain vector).
        """
        return self._link_one(text, self._resolve_cutoff(top_c))

    def link_batch(
        self,
        texts: Sequence[str],
        top_c: Optional[int] = None,
        workers: int = 0,
    ) -> List[List[LinkedEntity]]:
        """Link many task texts in one pass over the shared cache.

        Every surface form's candidate set, description bags, and kept
        indicator stack are resolved at most once across the whole
        batch. Per text the output is identical to :meth:`link` — the
        ingest pipeline's stage 1.

        With ``workers`` > 1 the batch is split into contiguous chunks
        linked by forked child processes. Children inherit the parent's
        cache shards copy-on-write, record the entries they had to
        compute, and ship them back with their chunk's entities; the
        parent merges the captures into its shards so the *next* batch
        starts warm. Entity results are a pure function of the text, so
        parallel output is identical to sequential output per text, and
        a dead child (injected crash at ``parallel.link.worker``,
        OOM-kill) degrades the whole batch to the sequential path with
        no behaviour change.

        Args:
            texts: the task descriptions.
            top_c: optional candidate-cutoff override for the batch.
            workers: fork this many link workers (0/1 = in-process).

        Returns:
            One entity list per input text, order preserved.
        """
        cutoff = self._resolve_cutoff(top_c)
        use_workers = (
            workers > 1
            and len(texts) >= 2 * workers
            and "fork" in multiprocessing.get_all_start_methods()
        )
        if use_workers:
            parallel = self._link_batch_parallel(texts, cutoff, workers)
            if parallel is not None:
                return parallel
        return [self._link_one(text, cutoff) for text in texts]

    def _link_batch_parallel(
        self, texts: Sequence[str], cutoff: int, workers: int
    ) -> Optional[List[List[LinkedEntity]]]:
        """Fork link workers over contiguous chunks; ``None`` on any
        child failure (the caller reruns sequentially)."""
        context = multiprocessing.get_context("fork")
        bounds = np.linspace(0, len(texts), workers + 1).astype(int)
        children = []
        for index in range(workers):
            lo, hi = int(bounds[index]), int(bounds[index + 1])
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_link_worker,
                args=(child_conn, self, list(texts[lo:hi]), cutoff),
                daemon=True,
            )
            process.start()
            child_conn.close()
            children.append((process, parent_conn))
        results: List[List[LinkedEntity]] = []
        failed = False
        for process, conn in children:
            try:
                chunk_entities, captured = conn.recv()
            except (EOFError, OSError):
                failed = True
                break
            results.extend(chunk_entities)
            self._merge_entries(captured)
        for process, conn in children:
            try:
                conn.close()
            except OSError:
                pass
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - hang guard
                process.terminate()
                process.join(timeout=5.0)
        return None if failed else results


def _link_worker(conn, linker: EntityLinker, texts, cutoff: int) -> None:
    """One forked link worker: link a chunk, ship entities + captures."""
    from repro.platform import faults

    try:
        faults.fire("parallel.link.worker")
        linker._capture = {}
        entities = [linker._link_one(text, cutoff) for text in texts]
        conn.send((entities, linker._capture))
        conn.close()
    except Exception:
        try:
            conn.close()
        finally:
            sys.exit(1)
