"""Entity-linking substrate (Wikifier surrogate).

The paper uses the open-source Wikifier [36, 10] to (1) detect entities in
a task's text, (2) produce, per entity, the top-c candidate concepts with a
probability distribution ``p_i``, and (3) map each concept to a 0/1 domain
indicator ``h_{i,j}`` via Freebase. This package reimplements that pipeline
against :mod:`repro.kb`:

- :mod:`repro.linking.mention` — greedy longest-match mention detection
  over the KB alias index,
- :mod:`repro.linking.candidates` — candidate generation with commonness
  priors,
- :mod:`repro.linking.disambiguate` — context scoring (bag-of-words cosine
  between task text and concept descriptions),
- :mod:`repro.linking.wikifier` — the :class:`EntityLinker` facade
  producing the exact ``(E_t, p_i, h_{i,j})`` triples Algorithm 1 consumes.
"""

from repro.linking.wikifier import EntityLinker, LinkedEntity

__all__ = ["EntityLinker", "LinkedEntity"]
