"""Context disambiguation: score candidates against the task's words.

Combines two signals, as practical linkers do:

- *commonness prior*: popular concepts are more likely referents a priori;
- *context score*: cosine similarity between the task's non-mention
  content tokens and each candidate's description.

The final per-candidate probability is proportional to
``prior * (smoothing + context_cosine)``. The smoothing constant keeps the
paper's behaviour where even a contextually unsupported candidate (e.g.
"Michael I. Jordan" in an NBA question) retains a small probability — that
residual mass is exactly what makes domain vectors non-degenerate and
Algorithm 1 worthwhile.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.linking.candidates import CandidateSet
from repro.utils.text import cosine_from_counts, cosine_similarity

#: Additive smoothing applied to context scores before mixing with priors.
DEFAULT_SMOOTHING = 0.15


def score_candidates(
    candidates: CandidateSet,
    context: Sequence[str],
    smoothing: float = DEFAULT_SMOOTHING,
) -> np.ndarray:
    """Posterior-like scores for each candidate given the task context.

    Args:
        candidates: the mention's candidate set.
        context: content tokens surrounding the mention.
        smoothing: additive smoothing on the context score; must be > 0 so
            the result can always be normalised.

    Returns:
        Unnormalised non-negative scores aligned with
        ``candidates.concepts``.
    """
    if smoothing <= 0:
        raise ValidationError(f"smoothing must be positive: {smoothing}")
    scores = np.empty(len(candidates), dtype=float)
    for j, concept in enumerate(candidates.concepts):
        context_score = cosine_similarity(list(context), concept.description)
        scores[j] = candidates.priors[j] * (smoothing + context_score)
    return scores


def score_candidates_from_counts(
    candidates: CandidateSet,
    description_counts: Sequence[Dict[str, int]],
    description_norms: Sequence[float],
    context_counts: Dict[str, int],
    context_norm: float,
    smoothing: float = DEFAULT_SMOOTHING,
) -> np.ndarray:
    """:func:`score_candidates` on precomputed term-frequency bags.

    The batch linking path caches each candidate's description bag and
    norm per surface form and builds the context bag once per task, so
    repeated mentions across a task batch do not re-tokenise anything.
    Produces the same scores as :func:`score_candidates` for the same
    inputs.
    """
    if smoothing <= 0:
        raise ValidationError(f"smoothing must be positive: {smoothing}")
    scores = np.empty(len(candidates), dtype=float)
    for j in range(len(candidates)):
        context_score = cosine_from_counts(
            context_counts,
            context_norm,
            description_counts[j],
            description_norms[j],
        )
        scores[j] = candidates.priors[j] * (smoothing + context_score)
    return scores


def truncate_top_c(
    scores: np.ndarray, top_c: int
) -> List[int]:
    """Indices of the ``top_c`` highest-scoring candidates (desc order).

    The paper's heuristics keep the top-20/10/3 candidates per entity and
    renormalise; this returns the kept indices so callers can subset both
    concepts and scores.
    """
    if top_c <= 0:
        raise ValidationError(f"top_c must be positive: {top_c}")
    order = np.argsort(-scores, kind="stable")
    return list(order[:top_c])
