"""Tests for the multi-domain detection metrics."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.experiments.multidomain import (
    MASS_THRESHOLD,
    evaluate_multidomain,
    format_multidomain,
    jensen_shannon,
    significant_domains,
)


class TestJensenShannon:
    def test_identical_zero(self):
        p = np.array([0.3, 0.7])
        assert jensen_shannon(p, p) == pytest.approx(0.0)

    def test_symmetric(self):
        p = np.array([0.9, 0.1])
        q = np.array([0.2, 0.8])
        assert jensen_shannon(p, q) == pytest.approx(
            jensen_shannon(q, p)
        )

    def test_bounded_by_ln2(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert jensen_shannon(p, q) == pytest.approx(np.log(2))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            jensen_shannon(np.array([1.0]), np.array([0.5, 0.5]))


class TestSignificantDomains:
    def test_orders_by_mass(self):
        mixture = np.array([0.2, 0.7, 0.1])
        assert significant_domains(mixture) == [1, 0, 2]

    def test_threshold_filters(self):
        mixture = np.array([0.95, 0.05])
        assert significant_domains(mixture) == [0]


class TestEvaluateMultidomain:
    def test_on_generated_dataset(self):
        from repro.core.dve import DomainVectorEstimator
        from repro.datasets import make_dataset
        from repro.linking import EntityLinker

        dataset = make_dataset("sfv", seed=3, num_tasks=60)
        estimator = DomainVectorEstimator(
            EntityLinker(dataset.kb), dataset.taxonomy.size
        )
        for task in dataset.tasks:
            task.domain_vector = estimator.estimate(task.text)
        result = evaluate_multidomain(dataset)
        assert 0.0 <= result.mean_js <= np.log(2)
        assert 0.0 <= result.top2_recall <= 1.0
        assert 0.0 <= result.multi_task_fraction <= 1.0
        assert "dataset" in format_multidomain([result])

    def test_perfect_vectors_score_perfectly(self):
        from repro.datasets import make_dataset

        dataset = make_dataset("4d", seed=4, tasks_per_domain=5)
        vectors = [t.behavior_domains for t in dataset.tasks]
        result = evaluate_multidomain(dataset, domain_vectors=vectors)
        assert result.mean_js == pytest.approx(0.0, abs=1e-9)
        assert result.top2_recall == pytest.approx(1.0)
        assert result.peak_agreement == pytest.approx(1.0)

    def test_misaligned_vectors_rejected(self):
        from repro.datasets import make_dataset

        dataset = make_dataset("4d", seed=4, tasks_per_domain=5)
        with pytest.raises(ValidationError):
            evaluate_multidomain(dataset, domain_vectors=[])
