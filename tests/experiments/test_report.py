"""Tests for the report assembler."""

import pathlib

import pytest

from repro.errors import ValidationError
from repro.experiments.report import (
    SECTION_ORDER,
    build_report,
    load_sections,
)


@pytest.fixture
def results_dir(tmp_path):
    directory = tmp_path / "results"
    directory.mkdir()
    (directory / "fig5_ti_comparison.txt").write_text(
        "Figure 5(a): accuracy\nMV 60\n"
    )
    (directory / "table3_dve_efficiency.txt").write_text(
        "Table 3: times\n"
    )
    (directory / "custom_extra.txt").write_text("extra table\n")
    return directory


class TestLoadSections:
    def test_known_sections_ordered(self, results_dir):
        sections = load_sections(results_dir)
        keys = [s.key for s in sections]
        # Table 3 precedes Figure 5 per SECTION_ORDER, extras last.
        assert keys.index("table3_dve_efficiency") < keys.index(
            "fig5_ti_comparison"
        )
        assert keys[-1] == "custom_extra"

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            load_sections(tmp_path / "nope")

    def test_section_order_covers_every_benchmark_output(self):
        # Every bench-produced table has a curated title.
        curated = {key for key, _ in SECTION_ORDER}
        expected = {
            "table3_dve_efficiency",
            "fig3_domain_detection",
            "fig5_ti_comparison",
            "fig8_ota_comparison",
            "extension_budget_saving",
            "ablation_incremental",
        }
        assert expected <= curated


class TestBuildReport:
    def test_contains_bodies_and_titles(self, results_dir):
        text = build_report(results_dir)
        assert "Table 3 — DVE efficiency" in text
        assert "Figure 5(a): accuracy" in text
        assert "custom_extra" in text

    def test_writes_output_file(self, results_dir, tmp_path):
        out = tmp_path / "report.md"
        text = build_report(results_dir, output=out)
        assert out.read_text() == text
