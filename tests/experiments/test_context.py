"""Tests for the experiment context builder."""

import pytest

from repro.experiments import build_context


@pytest.fixture(scope="module")
def context():
    return build_context(
        "item",
        seed=41,
        answers_per_task=3,
        golden_count=6,
        pool_size=10,
        dataset_overrides={"tasks_per_domain": 6},
    )


class TestBuildContext:
    def test_domain_vectors_set(self, context):
        assert all(
            t.domain_vector is not None for t in context.dataset.tasks
        )

    def test_answers_collected(self, context):
        assert len(context.answers) == context.dataset.num_tasks * 3

    def test_golden_selected(self, context):
        assert len(context.golden) == 6
        for tid in context.golden.task_ids:
            assert tid in context.golden.truths

    def test_pool_size(self, context):
        assert len(context.pool) == 10

    def test_deterministic(self):
        kwargs = dict(
            seed=42,
            answers_per_task=2,
            golden_count=4,
            pool_size=6,
            dataset_overrides={"tasks_per_domain": 4},
        )
        a = build_context("item", **kwargs)
        b = build_context("item", **kwargs)
        assert a.answers == b.answers
        assert a.golden.task_ids == b.golden.task_ids
