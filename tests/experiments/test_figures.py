"""Tests for the per-figure experiment modules (scaled-down runs)."""

import numpy as np
import pytest

from repro.experiments import build_context
from repro.experiments.fig3 import format_domain_detection, run_domain_detection
from repro.experiments.fig4 import (
    run_answer_sweep,
    run_convergence,
    run_golden_sweep,
    run_quality_estimation,
    run_scalability,
)
from repro.experiments.fig5 import (
    format_ti_comparison,
    run_ti_comparison,
)
from repro.experiments.fig6 import (
    calibration_error,
    format_case_study,
    run_case_study,
)
from repro.experiments.fig7 import (
    format_golden_comparison,
    format_golden_scalability,
    run_golden_comparison,
    run_golden_scalability,
)
from repro.experiments.fig8 import (
    format_ota_comparison,
    format_ota_scalability,
    run_ota_comparison,
    run_ota_scalability,
)
from repro.experiments.table3 import (
    format_dve_efficiency,
    run_dve_efficiency,
)


@pytest.fixture(scope="module")
def context():
    # Dense enough that the crowd carries signal (a 15-worker pool at 5
    # answers/task can land at chance-level majority, where no method
    # can do anything and EM drifts).
    return build_context(
        "item",
        seed=51,
        answers_per_task=8,
        golden_count=10,
        pool_size=30,
        dataset_overrides={"tasks_per_domain": 15},
    )


class TestFig3:
    def test_detection_result_shape(self, context):
        result = run_domain_detection(context, topic_iterations=15)
        assert set(result.overall) == {
            "IC(LDA)", "FC(TwitterLDA)", "DOCS",
        }
        for method, score in result.overall.items():
            assert 0.0 <= score <= 100.0
        assert "DOCS" in format_domain_detection(result)

    def test_docs_detection_strong_on_item(self, context):
        result = run_domain_detection(context, topic_iterations=15)
        assert result.overall["DOCS"] > 90.0


class TestTable3:
    def test_rows_per_cutoff(self, context):
        rows = run_dve_efficiency(context, cutoffs=(3, 2))
        assert [r.top_c for r in rows] == [3, 2]
        for row in rows:
            assert row.algorithm1_seconds > 0
            assert row.enumeration_linkings > 0
        assert "Table 3" in format_dve_efficiency(rows)

    def test_budget_marker(self, context):
        rows = run_dve_efficiency(context, cutoffs=(3,), work_budget=1)
        assert rows[0].enumeration_seconds is None
        assert "> budget" in format_dve_efficiency(rows)


class TestFig4:
    def test_convergence_series(self, context):
        deltas = run_convergence(context, iterations=15)
        assert len(deltas) == 15
        assert deltas[0] > deltas[-1]

    def test_golden_sweep(self, context):
        accs = run_golden_sweep(context, golden_counts=(0, 4, 8))
        assert set(accs) == {0, 4, 8}
        assert all(0 <= v <= 100 for v in accs.values())

    def test_answer_sweep_improves(self, context):
        accs = run_answer_sweep(context, answer_counts=(1, 8))
        assert accs[8] >= accs[1]

    def test_quality_estimation_shrinks(self, context):
        deviations = run_quality_estimation(
            context, answered_counts=(2, 60)
        )
        assert deviations[60] <= deviations[2] + 0.05

    def test_scalability_points(self):
        points = run_scalability(
            task_counts=(100, 200),
            worker_counts=(10,),
            seed=1,
        )
        assert len(points) == 2
        assert all(p.seconds > 0 for p in points)


class TestFig5:
    def test_comparison_rows(self, context):
        result = run_ti_comparison(context)
        assert set(result.accuracy) == {
            "MV", "ZC", "DS", "IC", "FC", "DOCS",
        }
        rendered = format_ti_comparison([result])
        assert "Figure 5(a)" in rendered
        assert "Figure 5(b)" in rendered


class TestFig6:
    def test_case_study_panels(self, context):
        study = run_case_study(context, min_answers=5)
        assert set(study.histogram) == {
            d.label for d in context.dataset.domains
        }
        for bins in study.histogram.values():
            assert len(bins) == 10
        assert len(study.top_worker_points) <= 3
        assert calibration_error([]) == 0.0
        assert "Figure 6" in format_case_study(study)

    def test_estimates_track_truth(self, context):
        study = run_case_study(context, min_answers=5)
        points = [
            p
            for pts in study.top_worker_points.values()
            for p in pts
        ]
        if points:
            assert calibration_error(points) < 0.35


class TestFig7:
    def test_comparison_near_optimal(self):
        points = run_golden_comparison(
            n_primes=(2, 4, 6), num_domains=4, seed=2
        )
        mean_gamma = np.mean([p.gamma for p in points])
        assert mean_gamma < 0.05
        assert "gamma" in format_golden_comparison(points)

    def test_scalability_flat_in_budget(self):
        points = run_golden_scalability(
            n_primes=(1000, 10000), domain_counts=(10,), seed=3
        )
        assert len(points) == 2
        assert "Figure 7(b)" in format_golden_scalability(points)


class TestFig8:
    def test_comparison_runs_all_engines(self):
        result = run_ota_comparison(
            "item",
            seed=4,
            answers_per_task=3,
            hit_size=2,
            pool_size=10,
            dataset_overrides={"tasks_per_domain": 6},
        )
        assert set(result.accuracy) == {
            "Baseline", "AskIt!", "IC", "QASCA", "D-Max", "DOCS",
        }
        assert "Figure 8(a)" in format_ota_comparison([result])

    def test_scalability_linear_shape(self):
        points = run_ota_scalability(
            task_counts=(500, 1000), hit_sizes=(5,), seed=5
        )
        assert len(points) == 2
        small, large = points[0].seconds, points[1].seconds
        # Double the tasks should not blow past ~4x the time.
        assert large < max(small, 1e-4) * 8
        assert "Figure 8(c)" in format_ota_scalability(points)
