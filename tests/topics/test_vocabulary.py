"""Tests for the topic-model vocabulary."""

import pytest

from repro.errors import ValidationError
from repro.topics.vocabulary import Vocabulary


class TestVocabulary:
    def test_build_and_encode(self):
        vocab = Vocabulary.from_texts(
            ["the engine roars", "the engine stalls"]
        )
        assert "engine" in vocab
        assert "the" not in vocab  # stopword
        encoded = vocab.encode("engine stalls")
        assert len(encoded) == 2

    def test_min_count_filters_rare(self):
        vocab = Vocabulary.from_texts(
            ["engine engine", "turbo"], min_count=2
        )
        assert "engine" in vocab
        assert "turbo" not in vocab

    def test_encode_skips_oov(self):
        vocab = Vocabulary.from_texts(["engine"])
        assert vocab.encode("engine unknown") == [vocab.encode("engine")[0]]

    def test_token_roundtrip(self):
        vocab = Vocabulary.from_texts(["alpha beta gamma"])
        for token_id in range(vocab.size):
            token = vocab.token(token_id)
            assert vocab.encode(token) == [token_id]

    def test_token_out_of_range(self):
        vocab = Vocabulary.from_texts(["alpha"])
        with pytest.raises(ValidationError):
            vocab.token(5)

    def test_invalid_min_count(self):
        with pytest.raises(ValidationError):
            Vocabulary(min_count=0)

    def test_len(self):
        vocab = Vocabulary.from_texts(["alpha beta"])
        assert len(vocab) == 2
