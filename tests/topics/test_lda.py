"""Tests for the collapsed-Gibbs LDA."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.topics.lda import LatentDirichletAllocation


def two_topic_corpus(docs_per_topic=30, seed=0):
    """A trivially separable corpus: sports words vs cooking words."""
    rng = np.random.default_rng(seed)
    sports = ["championship", "playoff", "coach", "stadium", "league"]
    cooking = ["recipe", "flavor", "spice", "baking", "sauce"]
    texts = []
    labels = []
    for _ in range(docs_per_topic):
        texts.append(" ".join(rng.choice(sports, size=6)))
        labels.append(0)
        texts.append(" ".join(rng.choice(cooking, size=6)))
        labels.append(1)
    return texts, labels


class TestLDA:
    def test_separable_corpus_clusters(self):
        texts, labels = two_topic_corpus()
        lda = LatentDirichletAllocation(
            num_topics=2, iterations=60, seed=1
        )
        result = lda.fit(texts)
        topics = result.document_topics.argmax(axis=1)
        # Topics are label-permuted; check purity instead of identity.
        agreement = np.mean(topics == np.array(labels))
        purity = max(agreement, 1 - agreement)
        assert purity > 0.9

    def test_theta_rows_are_distributions(self):
        texts, _ = two_topic_corpus(docs_per_topic=10)
        result = LatentDirichletAllocation(
            num_topics=3, iterations=20, seed=2
        ).fit(texts)
        np.testing.assert_allclose(
            result.document_topics.sum(axis=1),
            np.ones(len(texts)),
            atol=1e-9,
        )

    def test_phi_rows_are_distributions(self):
        texts, _ = two_topic_corpus(docs_per_topic=10)
        result = LatentDirichletAllocation(
            num_topics=2, iterations=20, seed=3
        ).fit(texts)
        np.testing.assert_allclose(
            result.topic_words.sum(axis=1), [1.0, 1.0], atol=1e-9
        )

    def test_log_likelihood_improves(self):
        texts, _ = two_topic_corpus()
        result = LatentDirichletAllocation(
            num_topics=2, iterations=40, seed=4
        ).fit(texts)
        trace = result.log_likelihood_trace
        assert trace[-1] > trace[0]

    def test_deterministic_given_seed(self):
        texts, _ = two_topic_corpus(docs_per_topic=5)
        a = LatentDirichletAllocation(
            num_topics=2, iterations=10, seed=5
        ).fit(texts)
        b = LatentDirichletAllocation(
            num_topics=2, iterations=10, seed=5
        ).fit(texts)
        np.testing.assert_allclose(
            a.document_topics, b.document_topics
        )

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            LatentDirichletAllocation(num_topics=0)
        with pytest.raises(ValidationError):
            LatentDirichletAllocation(num_topics=2, alpha=0.0)
        with pytest.raises(ValidationError):
            LatentDirichletAllocation(num_topics=2, iterations=0)

    def test_dominant_topic_helper(self):
        texts, _ = two_topic_corpus(docs_per_topic=5)
        result = LatentDirichletAllocation(
            num_topics=2, iterations=10, seed=6
        ).fit(texts)
        assert result.dominant_topic(0) in (0, 1)
