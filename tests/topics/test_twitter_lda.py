"""Tests for TwitterLDA."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.topics.twitter_lda import TwitterLDA
from tests.topics.test_lda import two_topic_corpus


class TestTwitterLDA:
    def test_separable_corpus_clusters(self):
        texts, labels = two_topic_corpus()
        model = TwitterLDA(
            num_topics=2, iterations=40, burn_in=10, seed=1
        )
        result = model.fit(texts)
        topics = result.document_topics.argmax(axis=1)
        agreement = np.mean(topics == np.array(labels))
        purity = max(agreement, 1 - agreement)
        assert purity > 0.9

    def test_document_topics_are_distributions(self):
        texts, _ = two_topic_corpus(docs_per_topic=8)
        result = TwitterLDA(
            num_topics=3, iterations=15, burn_in=5, seed=2
        ).fit(texts)
        np.testing.assert_allclose(
            result.document_topics.sum(axis=1),
            np.ones(len(texts)),
            atol=1e-9,
        )

    def test_background_distribution_valid(self):
        texts, _ = two_topic_corpus(docs_per_topic=8)
        result = TwitterLDA(
            num_topics=2, iterations=15, burn_in=5, seed=3
        ).fit(texts)
        assert result.background_words.sum() == pytest.approx(1.0)

    def test_deterministic_given_seed(self):
        texts, _ = two_topic_corpus(docs_per_topic=5)
        a = TwitterLDA(num_topics=2, iterations=10, burn_in=2, seed=4).fit(
            texts
        )
        b = TwitterLDA(num_topics=2, iterations=10, burn_in=2, seed=4).fit(
            texts
        )
        np.testing.assert_allclose(a.document_topics, b.document_topics)

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            TwitterLDA(num_topics=0)
        with pytest.raises(ValidationError):
            TwitterLDA(num_topics=2, gamma=0.0)
        with pytest.raises(ValidationError):
            TwitterLDA(num_topics=2, iterations=5, burn_in=5)
