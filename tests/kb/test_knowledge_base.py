"""Tests for the knowledge-base store."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.kb.concept import Concept
from repro.kb.knowledge_base import KnowledgeBase, canonical_alias
from repro.kb.taxonomy import DomainTaxonomy


@pytest.fixture
def kb():
    tax = DomainTaxonomy(("politics", "sports", "films"))
    return KnowledgeBase(tax)


def _concept(cid, name, domains, commonness=1.0):
    return Concept(
        concept_id=cid,
        name=name,
        domain_indices=frozenset(domains),
        commonness=commonness,
    )


class TestCanonicalAlias:
    def test_lowercase_and_whitespace(self):
        assert canonical_alias("  Michael   Jordan ") == "michael jordan"


class TestKnowledgeBase:
    def test_add_and_fetch(self, kb):
        kb.add_concept(_concept(0, "Kobe Bryant", {1}))
        assert kb.concept(0).name == "Kobe Bryant"
        assert kb.num_concepts == 1

    def test_duplicate_id_rejected(self, kb):
        kb.add_concept(_concept(0, "A", {0}))
        with pytest.raises(ValidationError):
            kb.add_concept(_concept(0, "B", {1}))

    def test_indicator_cached(self, kb):
        kb.add_concept(_concept(0, "A", {1}))
        np.testing.assert_array_equal(kb.indicator(0), [0, 1, 0])

    def test_unknown_concept_rejected(self, kb):
        with pytest.raises(ValidationError):
            kb.concept(99)
        with pytest.raises(ValidationError):
            kb.indicator(99)

    def test_candidates_share_alias(self, kb):
        kb.add_concept(_concept(0, "Michael Jordan", {1}))
        kb.add_concept(_concept(1, "Michael Jordan", {2}))
        assert len(kb.candidates("michael jordan")) == 2

    def test_candidates_case_insensitive(self, kb):
        kb.add_concept(_concept(0, "NBA", {1}))
        assert kb.has_alias("nba")
        assert len(kb.candidates("NbA")) == 1

    def test_extra_aliases(self, kb):
        kb.add_concept(
            _concept(0, "National Basketball Association", {1}),
            aliases=["NBA", "the league"],
        )
        assert kb.has_alias("NBA")
        assert kb.has_alias("the league")

    def test_empty_alias_rejected(self, kb):
        with pytest.raises(ValidationError):
            kb.add_concept(_concept(0, "A", {0}), aliases=["  "])

    def test_max_alias_tokens(self, kb):
        kb.add_concept(_concept(0, "National Basketball Association", {1}))
        assert kb.max_alias_tokens == 3

    def test_concepts_in_domain(self, kb):
        kb.add_concept(_concept(0, "A", {1}))
        kb.add_concept(_concept(1, "B", {2}))
        kb.add_concept(_concept(2, "C", {1, 2}))
        sports = kb.concepts_in_domain(1)
        assert {c.concept_id for c in sports} == {0, 2}

    def test_concepts_in_domain_range_check(self, kb):
        with pytest.raises(ValidationError):
            kb.concepts_in_domain(3)

    def test_ambiguous_aliases(self, kb):
        kb.add_concept(_concept(0, "Jordan", {1}))
        kb.add_concept(_concept(1, "Jordan", {0}))
        kb.add_concept(_concept(2, "Kobe", {1}))
        ambiguous = dict(kb.ambiguous_aliases())
        assert set(ambiguous) == {"jordan"}
        assert sorted(ambiguous["jordan"]) == [0, 1]

    def test_out_of_range_domain_rejected_at_add(self, kb):
        with pytest.raises(ValidationError):
            kb.add_concept(_concept(0, "A", {7}))

    def test_len(self, kb):
        assert len(kb) == 0
        kb.add_concept(_concept(0, "A", {0}))
        assert len(kb) == 1
