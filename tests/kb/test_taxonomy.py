"""Tests for the domain taxonomy."""

import pytest

from repro.errors import ValidationError
from repro.kb.taxonomy import (
    DomainTaxonomy,
    YAHOO_DOMAINS,
    default_taxonomy,
)


class TestYahooDomains:
    def test_exactly_26_domains(self):
        # The paper uses the 26 Yahoo! Answers top-level categories.
        assert len(YAHOO_DOMAINS) == 26

    def test_sports_present(self):
        assert "Sports" in YAHOO_DOMAINS

    def test_unique(self):
        assert len(set(YAHOO_DOMAINS)) == 26


class TestDomainTaxonomy:
    def test_default_size(self):
        assert default_taxonomy().size == 26

    def test_index_roundtrip(self):
        tax = default_taxonomy()
        for name in tax.domains:
            assert tax.name_of(tax.index_of(name)) == name

    def test_unknown_domain_rejected(self):
        with pytest.raises(ValidationError):
            default_taxonomy().index_of("Cryptozoology")

    def test_index_out_of_range(self):
        with pytest.raises(ValidationError):
            default_taxonomy().name_of(26)

    def test_custom_taxonomy(self):
        tax = DomainTaxonomy(("a", "b"))
        assert tax.size == 2
        assert tax.index_of("b") == 1

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            DomainTaxonomy(())

    def test_duplicates_rejected(self):
        with pytest.raises(ValidationError):
            DomainTaxonomy(("a", "a"))

    def test_contains(self):
        tax = DomainTaxonomy(("a", "b"))
        assert "a" in tax
        assert "z" not in tax

    def test_iteration_order(self):
        tax = DomainTaxonomy(("x", "y", "z"))
        assert list(tax) == ["x", "y", "z"]

    def test_subset_indices(self):
        tax = DomainTaxonomy(("x", "y", "z"))
        assert tax.subset_indices(["z", "x"]) == [2, 0]
