"""Tests for concept records."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.kb.concept import Concept


class TestConcept:
    def test_indicator_vector(self):
        concept = Concept(
            concept_id=0,
            name="Michael Jordan",
            domain_indices=frozenset({1, 2}),
        )
        np.testing.assert_array_equal(
            concept.indicator_vector(3), [0.0, 1.0, 1.0]
        )

    def test_empty_indicator(self):
        # The paper's "Michael I. Jordan" relates to no example domain.
        concept = Concept(
            concept_id=0, name="x", domain_indices=frozenset()
        )
        np.testing.assert_array_equal(
            concept.indicator_vector(3), [0.0, 0.0, 0.0]
        )

    def test_out_of_range_indicator_rejected(self):
        concept = Concept(
            concept_id=0, name="x", domain_indices=frozenset({5})
        )
        with pytest.raises(ValidationError):
            concept.indicator_vector(3)

    def test_related_to(self):
        concept = Concept(
            concept_id=0, name="x", domain_indices=frozenset({1})
        )
        assert concept.related_to(1)
        assert not concept.related_to(0)

    def test_non_positive_commonness_rejected(self):
        with pytest.raises(ValidationError):
            Concept(
                concept_id=0,
                name="x",
                domain_indices=frozenset(),
                commonness=0.0,
            )

    def test_negative_domain_rejected(self):
        with pytest.raises(ValidationError):
            Concept(
                concept_id=0,
                name="x",
                domain_indices=frozenset({-1}),
            )
