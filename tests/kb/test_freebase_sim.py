"""Tests for the synthetic knowledge-base generator."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.kb.freebase_sim import SyntheticKBConfig, build_synthetic_kb
from repro.kb.taxonomy import DomainTaxonomy, default_taxonomy


class TestSyntheticKBConfig:
    def test_defaults_valid(self):
        SyntheticKBConfig().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("concepts_per_domain", 0),
            ("ambiguity_rate", 1.5),
            ("collision_depth", 0),
            ("secondary_domain_rate", -0.1),
            ("description_length", 0),
            ("famous_fraction", 2.0),
        ],
    )
    def test_invalid_fields_rejected(self, field, value):
        config = SyntheticKBConfig(**{field: value})
        with pytest.raises(ValidationError):
            config.validate()


class TestBuildSyntheticKB:
    def test_deterministic(self):
        cfg = SyntheticKBConfig(concepts_per_domain=5, seed=3)
        tax = DomainTaxonomy(("a", "b", "c"))
        kb1 = build_synthetic_kb(cfg, taxonomy=tax, domain_subset=["a", "b"])
        kb2 = build_synthetic_kb(cfg, taxonomy=tax, domain_subset=["a", "b"])
        assert kb1.num_concepts == kb2.num_concepts
        names1 = sorted(c.name for c in kb1.concepts())
        names2 = sorted(c.name for c in kb2.concepts())
        assert names1 == names2

    def test_concepts_cover_domains(self):
        tax = DomainTaxonomy(("a", "b"))
        kb = build_synthetic_kb(
            SyntheticKBConfig(concepts_per_domain=10, seed=1),
            taxonomy=tax,
        )
        assert len(kb.concepts_in_domain(0)) >= 10
        assert len(kb.concepts_in_domain(1)) >= 10

    def test_ambiguity_creates_multi_candidate_aliases(self):
        tax = DomainTaxonomy(("a", "b", "c"))
        kb = build_synthetic_kb(
            SyntheticKBConfig(
                concepts_per_domain=30, ambiguity_rate=0.8, seed=2
            ),
            taxonomy=tax,
        )
        assert len(kb.ambiguous_aliases()) > 0

    def test_zero_ambiguity_means_no_collisions_without_fame(self):
        # Famous concepts are always ambiguous (minor namesakes), so a
        # collision-free KB also needs famous_fraction = 0.
        tax = DomainTaxonomy(("a", "b"))
        kb = build_synthetic_kb(
            SyntheticKBConfig(
                concepts_per_domain=20,
                ambiguity_rate=0.0,
                famous_fraction=0.0,
                seed=2,
            ),
            taxonomy=tax,
        )
        assert kb.ambiguous_aliases() == []

    def test_famous_names_accrete_namesakes(self):
        tax = DomainTaxonomy(("a", "b", "c"))
        kb = build_synthetic_kb(
            SyntheticKBConfig(
                concepts_per_domain=20,
                ambiguity_rate=0.0,
                famous_fraction=0.5,
                collision_depth=4,
                seed=2,
            ),
            taxonomy=tax,
        )
        depths = [len(ids) for _, ids in kb.ambiguous_aliases()]
        assert depths and max(depths) >= 5  # famous name + >= 4 twins

    def test_collision_depth_deepens_candidate_sets(self):
        tax = DomainTaxonomy(tuple("abcdefgh"))
        shallow = build_synthetic_kb(
            SyntheticKBConfig(
                concepts_per_domain=20,
                ambiguity_rate=0.9,
                collision_depth=1,
                seed=4,
            ),
            taxonomy=tax,
        )
        deep = build_synthetic_kb(
            SyntheticKBConfig(
                concepts_per_domain=20,
                ambiguity_rate=0.9,
                collision_depth=6,
                seed=4,
            ),
            taxonomy=tax,
        )
        max_shallow = max(
            len(ids) for _, ids in shallow.ambiguous_aliases()
        )
        max_deep = max(len(ids) for _, ids in deep.ambiguous_aliases())
        assert max_deep > max_shallow

    def test_secondary_domains_appear(self):
        tax = DomainTaxonomy(("a", "b", "c"))
        kb = build_synthetic_kb(
            SyntheticKBConfig(
                concepts_per_domain=40,
                secondary_domain_rate=0.5,
                seed=5,
            ),
            taxonomy=tax,
        )
        multi = [
            c for c in kb.concepts() if len(c.domain_indices) > 1
        ]
        assert multi

    def test_secondary_domain_pool_respected(self):
        tax = DomainTaxonomy(("a", "b", "c", "d"))
        kb = build_synthetic_kb(
            SyntheticKBConfig(
                concepts_per_domain=40,
                secondary_domain_rate=0.9,
                secondary_domain_pool=("a", "b"),
                seed=6,
            ),
            taxonomy=tax,
        )
        for concept in kb.concepts():
            assert concept.domain_indices <= {0, 1, 2, 3}
            secondaries = set(concept.domain_indices)
            if len(secondaries) > 1:
                # At least one index is from the pool {a, b}.
                assert secondaries & {0, 1}

    def test_famous_fraction_boosts_commonness(self):
        tax = DomainTaxonomy(("a", "b"))
        kb = build_synthetic_kb(
            SyntheticKBConfig(
                concepts_per_domain=60,
                famous_fraction=0.5,
                ambiguity_rate=0.0,
                seed=7,
            ),
            taxonomy=tax,
        )
        commonness = np.array([c.commonness for c in kb.concepts()])
        assert commonness.max() > 6.0  # famous concepts exist

    def test_default_taxonomy_full_build(self):
        kb = build_synthetic_kb(
            SyntheticKBConfig(concepts_per_domain=3, seed=8)
        )
        assert kb.num_domains == 26
        assert kb.num_concepts >= 26 * 3
