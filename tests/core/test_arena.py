"""Tests for the structure-of-arrays state arena."""

import numpy as np
import pytest

from repro.core.arena import INITIAL_CAPACITY, AnswerLog, StateArena
from repro.core.assignment import (
    TaskAssigner,
    arena_benefits,
    batch_benefits,
    task_benefit,
)
from repro.core.types import Answer, Task, TaskState
from repro.errors import UnknownTaskError, ValidationError
from repro.utils.rng import make_rng


def _task(task_id, ell=2, m=3, rng=None):
    if rng is None:
        r = np.full(m, 1.0 / m)
    else:
        r = rng.dirichlet(np.ones(m))
    return Task(
        task_id=task_id,
        text=f"t{task_id}",
        num_choices=ell,
        domain_vector=r,
    )


class TestRegistration:
    def test_fresh_state_matches_taskstate_fresh(self):
        arena = StateArena(3)
        task = _task(0, ell=3)
        view = arena.add(task)
        reference = TaskState.fresh(task, task.domain_vector)
        np.testing.assert_array_equal(view.M, reference.M)
        np.testing.assert_array_equal(view.s, reference.s)
        np.testing.assert_array_equal(
            view.log_numerators, reference.log_numerators
        )
        assert view.num_choices == 3
        assert view.task is task

    def test_duplicate_rejected(self):
        arena = StateArena(3)
        arena.add(_task(0))
        with pytest.raises(ValidationError):
            arena.add(_task(0))

    def test_missing_domain_vector_rejected(self):
        arena = StateArena(3)
        with pytest.raises(ValidationError):
            arena.add(Task(task_id=0, text="x", num_choices=2))

    def test_wrong_shape_rejected(self):
        arena = StateArena(3)
        with pytest.raises(ValidationError):
            arena.add(_task(0, m=4))

    def test_unknown_task_raises(self):
        arena = StateArena(3)
        with pytest.raises(UnknownTaskError):
            arena.view(42)

    def test_explicit_initial_matrix(self):
        arena = StateArena(2)
        M = np.array([[0.9, 0.1], [0.3, 0.7]])
        task = _task(0, m=2)
        view = arena.add(task, M=M)
        np.testing.assert_array_equal(view.M, M)
        np.testing.assert_allclose(view.s, task.domain_vector @ M)


class TestGrowthAndViews:
    def test_views_survive_buffer_growth(self):
        """Row views resolve into the *current* buffers, so references
        taken before a capacity doubling stay live afterwards."""
        arena = StateArena(2)
        rng = make_rng(3)
        first = arena.add(_task(0, rng=rng, m=2))
        s_before = first.s.copy()
        for i in range(1, 3 * INITIAL_CAPACITY):
            arena.add(_task(i, rng=rng, m=2))
        np.testing.assert_array_equal(first.s, s_before)
        # Writing through the view hits the arena's live buffer.
        first.M[:] = np.array([[0.8, 0.2], [0.8, 0.2]])
        group, row = arena.location(0)
        np.testing.assert_array_equal(
            group.M[row], [[0.8, 0.2], [0.8, 0.2]]
        )

    def test_global_buffers_track_registration_order(self):
        arena = StateArena(3)
        rng = make_rng(4)
        ells = [2, 4, 3, 2, 4]
        for i, ell in enumerate(ells):
            arena.add(_task(i, ell=ell, rng=rng))
        assert arena.task_ids() == [0, 1, 2, 3, 4]
        np.testing.assert_array_equal(arena.choice_counts(), ells)
        for i in range(5):
            assert arena.global_row(i) == i
            assert arena.task_id_at(i) == i
        R = arena.domain_matrix()
        for i in range(5):
            np.testing.assert_array_equal(
                R[i], arena.view(i).r
            )

    def test_states_mapping_view(self):
        arena = StateArena(3)
        for i in range(4):
            arena.add(_task(i))
        states = arena.states()
        assert len(states) == 4
        assert list(states) == [0, 1, 2, 3]
        assert states[2] is arena.view(2)


class TestBulkGrow:
    def test_grow_matches_sequential_add(self):
        rng = make_rng(3)
        tasks = [
            _task(i, ell=2 + (i % 3), m=4, rng=rng) for i in range(150)
        ]
        sequential, bulk = StateArena(4), StateArena(4)
        for task in tasks:
            sequential.add(task)
        bulk.grow(tasks[:70])
        bulk.grow(tasks[70:])
        assert sequential.task_ids() == bulk.task_ids()
        np.testing.assert_array_equal(
            sequential.domain_matrix(), bulk.domain_matrix()
        )
        np.testing.assert_array_equal(
            sequential.choice_counts(), bulk.choice_counts()
        )
        for task in tasks:
            a, b = sequential.view(task.task_id), bulk.view(task.task_id)
            np.testing.assert_array_equal(a.M, b.M)
            np.testing.assert_allclose(a.s, b.s, atol=1e-15)
            assert sequential.global_row(task.task_id) == bulk.global_row(
                task.task_id
            )

    def test_grow_past_initial_capacity(self):
        rng = make_rng(5)
        tasks = [
            _task(i, m=3, rng=rng) for i in range(3 * INITIAL_CAPACITY)
        ]
        arena = StateArena(3)
        views = arena.grow(tasks)
        assert len(arena) == len(tasks)
        assert len(views) == len(tasks)
        # Views resolve into the final buffers.
        np.testing.assert_array_equal(
            views[-1].r, tasks[-1].domain_vector
        )

    def test_grow_into_existing_pool(self):
        arena = StateArena(3)
        for i in range(5):
            arena.add(_task(i))
        views = arena.grow([_task(i) for i in range(5, 12)])
        assert arena.task_ids() == list(range(12))
        assert views[0].task.task_id == 5
        assert arena.global_row(11) == 11

    def test_grow_rejects_duplicates(self):
        arena = StateArena(3)
        arena.add(_task(0))
        with pytest.raises(ValidationError, match="already registered"):
            arena.grow([_task(0)])
        with pytest.raises(ValidationError, match="duplicate task id 7"):
            arena.grow([_task(7), _task(7)])
        # Rejected batches leave the arena untouched.
        assert len(arena) == 1

    def test_grow_rejects_missing_vector(self):
        arena = StateArena(3)
        bad = Task(task_id=1, text="x", num_choices=2)
        with pytest.raises(ValidationError, match="no domain vector"):
            arena.grow([bad])

    def test_grow_explicit_matrix(self):
        arena = StateArena(3)
        tasks = [
            Task(task_id=i, text="x", num_choices=2) for i in range(4)
        ]
        R = np.full((4, 3), 1.0 / 3)
        arena.grow(tasks, R=R)
        np.testing.assert_array_equal(arena.domain_matrix(), R)
        with pytest.raises(ValidationError, match="shape"):
            arena.grow(
                [Task(task_id=9, text="x", num_choices=2)],
                R=np.ones((2, 3)),
            )

    def test_grow_empty_batch(self):
        arena = StateArena(3)
        assert arena.grow([]) == []


class TestDirtyProtocol:
    def test_refresh_recomputes_only_after_marking(self):
        arena = StateArena(2)
        view = arena.add(_task(0, m=2))
        arena.refresh_entropies()
        group, row = arena.location(0)
        assert group.H[row] == pytest.approx(np.log(2))
        # An in-place write without a refresh leaves the cache stale.
        view.s[:] = [0.99, 0.01]
        assert group.H[row] == pytest.approx(np.log(2))
        arena.mark_dirty(0)
        arena.refresh_entropies()
        expected = -np.sum(view.s * np.log(view.s))
        assert group.H[row] == pytest.approx(expected)

    def test_mark_all_dirty(self):
        arena = StateArena(2)
        for i in range(3):
            arena.add(_task(i, m=2))
        arena.refresh_entropies()
        for i in range(3):
            arena.view(i).s[:] = [0.9, 0.1]
        arena.mark_all_dirty()
        arena.refresh_entropies()
        for i in range(3):
            group, row = arena.location(i)
            assert group.H[row] == pytest.approx(
                -np.sum([0.9 * np.log(0.9), 0.1 * np.log(0.1)])
            )


class TestArenaBenefits:
    def test_matches_per_task_reference(self):
        rng = make_rng(9)
        arena = StateArena(4)
        references = {}
        for i in range(12):
            ell = int(rng.integers(2, 5))
            task = _task(i, ell=ell, m=4, rng=rng)
            M = rng.dirichlet(np.ones(ell), size=4)
            arena.add(task, M=M)
            references[i] = TaskState(
                task=task, r=task.domain_vector, M=M,
                s=task.domain_vector @ M,
            )
        quality = rng.uniform(0.2, 0.95, size=4)
        benefits = arena_benefits(arena, quality)
        for i, state in references.items():
            assert benefits[arena.global_row(i)] == pytest.approx(
                task_benefit(state, quality), abs=1e-10
            )
        stacked = batch_benefits(
            [references[i] for i in range(12)], quality
        )
        np.testing.assert_allclose(benefits, stacked, atol=1e-12)

    def test_assigner_arena_matches_mapping_path(self):
        rng = make_rng(10)
        arena = StateArena(3)
        states = {}
        for i in range(20):
            ell = int(rng.integers(2, 4))
            task = _task(i, ell=ell, rng=rng)
            M = rng.dirichlet(np.ones(ell), size=3)
            arena.add(task, M=M)
            states[i] = TaskState(
                task=task, r=task.domain_vector, M=M,
                s=task.domain_vector @ M,
            )
        assigner = TaskAssigner(hit_size=5)
        quality = rng.uniform(0.3, 0.9, size=3)
        answered = {1, 4, 7}
        eligible = set(range(15))
        assert assigner.assign(
            arena, quality, answered_by_worker=answered,
            eligible=eligible,
        ) == assigner.assign(
            states, quality, answered_by_worker=answered,
            eligible=eligible,
        )

    def test_tie_break_matches_with_mixed_choice_counts(self):
        """Identical-benefit tasks in interleaved choice-count groups
        must resolve by registration order on both paths."""
        arena = StateArena(1)
        states = {}
        for i, ell in enumerate([2, 3, 2, 3, 2, 3]):
            task = Task(
                task_id=i, text=f"t{i}", num_choices=ell,
                domain_vector=np.array([1.0]),
            )
            arena.add(task)
            states[i] = TaskState.fresh(task, task.domain_vector)
        assigner = TaskAssigner(hit_size=3)
        quality = np.array([0.8])
        assert assigner.assign(arena, quality) == assigner.assign(
            states, quality
        )

    def test_all_answered_returns_empty(self):
        arena = StateArena(2)
        for i in range(3):
            arena.add(_task(i, m=2))
        assigner = TaskAssigner(hit_size=2)
        assert assigner.assign(
            arena, np.array([0.8, 0.8]),
            answered_by_worker={0, 1, 2},
        ) == []

    def test_empty_arena(self):
        assigner = TaskAssigner(hit_size=2)
        assert assigner.assign(
            StateArena(2), np.array([0.8, 0.8])
        ) == []


class TestSharedArenaConstruction:
    def test_incremental_over_prepopulated_arena(self):
        """An updater attached to an arena that already holds tasks
        must submit against them without re-registration."""
        from repro.core.incremental import IncrementalTruthInference
        from repro.core.quality_store import WorkerQualityStore

        arena = StateArena(3)
        task = _task(0)
        arena.add(task)
        inc = IncrementalTruthInference(
            WorkerQualityStore(3), arena=arena
        )
        state = inc.submit(Answer("w", 0, 1))
        assert state.s[0] > 0.5
        assert inc.answered_workers(0) == [("w", 1)]
        # A task added to the shared arena by another owner after
        # construction: register_task must backfill its history.
        arena2 = StateArena(3)
        inc2 = IncrementalTruthInference(
            WorkerQualityStore(3), arena=arena2
        )
        task2 = _task(1)
        arena2.add(task2)
        inc2.register_task(task2)
        inc2.submit(Answer("w", 1, 2))
        assert inc2.answered_workers(1) == [("w", 2)]


class TestAnswerLog:
    def test_arrival_and_first_answer_orders(self):
        arena = StateArena(2)
        for i in range(3):
            arena.add(_task(i, m=2))
        log = AnswerLog(arena)
        log.append(Answer("w2", 1, 1))
        log.append(Answer("w1", 0, 2))
        log.append(Answer("w2", 0, 1))
        log.append(Answer("w3", 1, 2))
        assert len(log) == 4
        np.testing.assert_array_equal(log.task_rows, [1, 0, 0, 1])
        np.testing.assert_array_equal(log.worker_rows, [0, 1, 0, 2])
        np.testing.assert_array_equal(log.choices, [0, 1, 0, 1])
        assert log.worker_ids == ["w2", "w1", "w3"]
        np.testing.assert_array_equal(log.answered_rows(), [1, 0])

    def test_log_growth(self):
        arena = StateArena(2)
        arena.add(_task(0, m=2))
        log = AnswerLog(arena)
        for i in range(2500):
            log.append(Answer(f"w{i}", 0, 1 + i % 2))
        assert len(log) == 2500
        assert log.worker_ids[-1] == "w2499"
        np.testing.assert_array_equal(
            log.choices[:4], [0, 1, 0, 1]
        )

    def test_unregistered_task_rejected(self):
        arena = StateArena(2)
        log = AnswerLog(arena)
        with pytest.raises(UnknownTaskError):
            log.append(Answer("w", 99, 1))


class TestScratchAfterGrow:
    """`benefit_scratch()` buffers are shaped to the live row count; a
    block grow() that changes a group's count must invalidate them so
    arena_benefits never writes into stale-shaped scratch."""

    def test_scratch_resized_after_grow(self):
        rng = make_rng(3)
        arena = StateArena(4)
        for i in range(5):
            arena.add(_task(i, ell=3, m=4, rng=rng))
        group = arena.location(0)[0]
        before = group.benefit_scratch()
        assert before[0].shape == (5, 4, 3)

        grown = [_task(100 + i, ell=3, m=4, rng=rng) for i in range(7)]
        arena.grow(grown)
        after = group.benefit_scratch()
        assert after[0].shape == (12, 4, 3)
        assert after[0] is not before[0]

    def test_benefits_correct_after_capacity_changing_grow(self):
        """Grow past the group's capacity (forces a buffer reallocation)
        and check arena_benefits against the per-task reference on every
        row, old and new."""
        rng = make_rng(4)
        arena = StateArena(3)
        tasks = [_task(i, ell=2, m=3, rng=rng) for i in range(4)]
        for task in tasks:
            arena.add(task)
        quality = rng.uniform(0.3, 0.9, size=3)
        arena_benefits(arena, quality)  # materialise scratch at count=4

        grown = [
            _task(200 + i, ell=2, m=3, rng=rng)
            for i in range(INITIAL_CAPACITY + 10)
        ]
        arena.grow(grown)
        benefits = arena_benefits(arena, quality)
        assert benefits.shape == (4 + len(grown),)
        for task in tasks + grown:
            state = TaskState(
                task=task,
                r=task.domain_vector,
                M=np.full((3, 2), 0.5),
                s=task.domain_vector @ np.full((3, 2), 0.5),
            )
            assert benefits[arena.global_row(task.task_id)] == (
                pytest.approx(task_benefit(state, quality), abs=1e-10)
            )
