"""Randomized equivalence: vectorised DVE vs the reference per-task DP.

The production path (:func:`repro.core.dve.domain_vectors_batch` and the
single-task wrapper :func:`repro.core.dve.domain_vector`) evaluates
Eq. 1 through the leave-one-out harmonic decomposition; the retained
:func:`repro.core.reference.reference_domain_vector` is Algorithm 1's
(numerator, denominator)-pair DP exactly as the paper states it. Both
compute the same expectation — checked here over randomized entity
sets, including the degenerate shapes (all-zero indicators, single
entities, ragged candidate counts) that exercise the padding and
grouping logic.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dve import (
    EntityLinking,
    domain_vector,
    domain_vectors_batch,
)
from repro.core.reference import reference_domain_vector
from repro.errors import ValidationError


def _random_entities(rng, num_domains, max_entities=4, max_candidates=6):
    count = int(rng.integers(1, max_entities + 1))
    entities = []
    for _ in range(count):
        num_candidates = int(rng.integers(1, max_candidates + 1))
        probs = rng.dirichlet(np.ones(num_candidates))
        indicators = (
            rng.random((num_candidates, num_domains)) < rng.uniform(0.1, 0.6)
        ).astype(int)
        entities.append(EntityLinking(probs, indicators))
    return entities


class TestSingleTaskEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_vectorised_matches_dp(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, 8))
        entities = _random_entities(rng, m)
        np.testing.assert_allclose(
            domain_vector(entities),
            reference_domain_vector(entities),
            atol=1e-12,
        )

    def test_all_zero_indicators(self):
        entity = EntityLinking(
            probabilities=np.array([0.4, 0.6]),
            indicators=np.zeros((2, 3), dtype=int),
        )
        np.testing.assert_allclose(
            domain_vector([entity]),
            reference_domain_vector([entity]),
        )
        assert domain_vector([entity]).sum() == pytest.approx(0.0)

    def test_partial_zero_mass_dropped(self):
        entity = EntityLinking(
            probabilities=np.array([0.5, 0.5]),
            indicators=np.array([[0, 0], [1, 0]]),
        )
        r = domain_vector([entity])
        np.testing.assert_allclose(r, reference_domain_vector([entity]))
        assert r.sum() == pytest.approx(0.5)

    def test_full_indicator_rows(self):
        """Denominator hits its maximum support (x = m everywhere)."""
        entities = [
            EntityLinking(np.array([1.0]), np.ones((1, 4), dtype=int)),
            EntityLinking(
                np.array([0.3, 0.7]), np.ones((2, 4), dtype=int)
            ),
        ]
        np.testing.assert_allclose(
            domain_vector(entities),
            reference_domain_vector(entities),
            atol=1e-12,
        )


class TestBatchEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_batches_match_dp(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(2, 9))
        lists = [
            _random_entities(rng, m) for _ in range(int(rng.integers(5, 40)))
        ]
        batch = domain_vectors_batch(lists, num_domains=m)
        assert batch.shape == (len(lists), m)
        for row, entities in zip(batch, lists):
            np.testing.assert_allclose(
                row, reference_domain_vector(entities), atol=1e-12
            )

    def test_batch_matches_single_calls(self):
        rng = np.random.default_rng(7)
        lists = [_random_entities(rng, 5) for _ in range(25)]
        batch = domain_vectors_batch(lists)
        singles = np.stack([domain_vector(es) for es in lists])
        np.testing.assert_allclose(batch, singles, atol=1e-14)

    def test_empty_lists_yield_zero_rows(self):
        rng = np.random.default_rng(9)
        lists = [[], _random_entities(rng, 3), []]
        batch = domain_vectors_batch(lists, num_domains=3)
        assert np.all(batch[0] == 0.0)
        assert np.all(batch[2] == 0.0)
        assert batch[1].sum() > 0.0

    def test_all_empty_requires_num_domains(self):
        with pytest.raises(ValidationError):
            domain_vectors_batch([[], []])
        batch = domain_vectors_batch([[], []], num_domains=4)
        assert batch.shape == (2, 4)
        assert np.all(batch == 0.0)

    def test_inconsistent_width_names_task(self):
        good = [EntityLinking(np.array([1.0]), np.zeros((1, 3), dtype=int))]
        bad = [EntityLinking(np.array([1.0]), np.zeros((1, 4), dtype=int))]
        with pytest.raises(ValidationError, match="task index 1"):
            domain_vectors_batch([good, bad])

    def test_malformed_entity_names_task(self):
        bad = [
            EntityLinking(
                np.array([0.5, 0.2]), np.zeros((2, 3), dtype=int)
            )
        ]
        with pytest.raises(ValidationError, match="task index 0"):
            domain_vectors_batch([bad], num_domains=3)

    def test_ragged_candidate_counts_within_group(self):
        """Tasks sharing an entity count but not candidate counts hit
        the zero-probability padding path."""
        a = [
            EntityLinking(np.array([1.0]), np.array([[1, 0]])),
            EntityLinking(
                np.array([0.2, 0.3, 0.5]),
                np.array([[1, 1], [0, 1], [0, 0]]),
            ),
        ]
        b = [
            EntityLinking(
                np.array([0.9, 0.1]), np.array([[0, 1], [1, 1]])
            ),
            EntityLinking(np.array([1.0]), np.array([[1, 0]])),
        ]
        batch = domain_vectors_batch([a, b])
        np.testing.assert_allclose(
            batch[0], reference_domain_vector(a), atol=1e-12
        )
        np.testing.assert_allclose(
            batch[1], reference_domain_vector(b), atol=1e-12
        )
