"""SharedStateArena equivalence and leak-safety suite.

The shared arena's contract is *bit-identity*: a
:class:`repro.core.shared_arena.SharedStateArena` fed the same
operations as a heap :class:`repro.core.arena.StateArena` must hold
byte-for-byte equal buffers at every step — across geometric growth
(segment re-maps), incremental submits, full-TI resyncs, and snapshot
overlays — because the serving pool's exactness guarantee reduces to
it. The leak tests pin the ``/dev/shm`` hygiene story: clean close
unlinks everything, and no segment outlives its owner uncollected.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core.arena import AnswerLog, StateArena
from repro.core.incremental import IncrementalTruthInference
from repro.core.quality_store import WorkerQualityStore
from repro.core.shared_arena import MAX_GROUPS, SharedStateArena
from repro.core.truth_inference import TruthInference
from repro.core.types import Answer, Task
from repro.errors import ValidationError
from repro.utils.rng import make_rng

M_DOMAINS = 4
NUM_WORKERS = 5


def shm_segments(prefix="docs"):
    """Live /dev/shm entries created by this test session."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return [f for f in os.listdir("/dev/shm") if f.startswith(prefix)]


def _make_tasks(rng, count, base_id=0):
    return [
        Task(
            task_id=base_id + i,
            text=f"task {base_id + i}",
            num_choices=int(rng.integers(2, 5)),
            domain_vector=rng.dirichlet(np.ones(M_DOMAINS)),
            ground_truth=1,
        )
        for i in range(count)
    ]


def _make_store(rng):
    store = WorkerQualityStore(M_DOMAINS)
    for j in range(NUM_WORKERS):
        store.set(
            f"w{j}",
            rng.uniform(0.4, 0.95, size=M_DOMAINS),
            np.full(M_DOMAINS, 2.0),
        )
    return store


def _paired_engines(seed, count):
    """(heap engine, shared engine) fed identical construction."""
    rng_a = make_rng(seed)
    rng_b = make_rng(seed)
    heap = IncrementalTruthInference(_make_store(rng_a))
    shared = IncrementalTruthInference(
        _make_store(rng_b), arena=SharedStateArena(M_DOMAINS)
    )
    heap.register_tasks(_make_tasks(make_rng(seed + 1), count))
    shared.register_tasks(_make_tasks(make_rng(seed + 1), count))
    return heap, shared


def assert_buffers_identical(heap: StateArena, shared: StateArena):
    """Every numeric buffer equals its heap twin, byte for byte."""
    assert len(heap) == len(shared)
    assert heap.task_ids() == shared.task_ids()
    np.testing.assert_array_equal(
        heap.domain_matrix(), shared.domain_matrix()
    )
    np.testing.assert_array_equal(
        heap.choice_counts(), shared.choice_counts()
    )
    heap_groups = {g.ell: g for g in heap.iter_groups()}
    shared_groups = {g.ell: g for g in shared.iter_groups()}
    assert set(heap_groups) == set(shared_groups)
    for ell, hg in heap_groups.items():
        sg = shared_groups[ell]
        n = hg.count
        assert sg.count == n
        for buf in ("R", "M", "S", "logN", "global_rows", "dirty"):
            np.testing.assert_array_equal(
                getattr(hg, buf)[:n],
                getattr(sg, buf)[:n],
                err_msg=f"group ell={ell} buffer {buf}",
            )


def assert_arenas_identical(heap: StateArena, shared: StateArena):
    """Buffers plus the write-epoch machinery — full state identity."""
    assert_buffers_identical(heap, shared)
    np.testing.assert_array_equal(
        heap.row_epochs(), shared.row_epochs()
    )
    assert heap.write_clock == shared.write_clock


def assert_numeric_state_identical(reference, attached):
    """Attachment identity: attached arenas serve only the numeric read
    paths (group buffers, epochs, clock) — the id-keyed registration
    maps are owner-side Python state and stay empty."""
    assert len(reference) == len(attached)
    np.testing.assert_array_equal(
        reference.row_epochs(), attached.row_epochs()
    )
    assert reference.write_clock == attached.write_clock
    ref_groups = {g.ell: g for g in reference.iter_groups()}
    att_groups = {g.ell: g for g in attached.iter_groups()}
    assert set(ref_groups) == set(att_groups)
    for ell, rg in ref_groups.items():
        ag = att_groups[ell]
        n = rg.count
        assert ag.count == n
        for buf in ("R", "M", "S", "logN", "H", "global_rows", "dirty"):
            np.testing.assert_array_equal(
                getattr(rg, buf)[:n],
                getattr(ag, buf)[:n],
                err_msg=f"group ell={ell} buffer {buf}",
            )


class TestConstructionAndGrowth:
    def test_rejects_bad_num_domains(self):
        with pytest.raises(ValidationError):
            SharedStateArena(0)

    @pytest.mark.parametrize("seed", [3, 11])
    def test_equal_after_bulk_registration(self, seed):
        heap, shared = _paired_engines(seed, count=40)
        try:
            assert_arenas_identical(heap.arena, shared.arena)
        finally:
            shared.arena.close()

    def test_growth_remaps_and_stays_identical(self):
        """Push both arenas through several geometric doublings; the
        shared one re-maps segments (generation bumps) and must stay
        byte-identical."""
        heap, shared = _paired_engines(7, count=10)
        try:
            gen_before = shared.arena.generation
            for batch in range(4):
                tasks = _make_tasks(
                    make_rng(100 + batch), 150, base_id=1000 + 1000 * batch
                )
                heap.register_tasks(tasks)
                shared.register_tasks(
                    _make_tasks(
                        make_rng(100 + batch),
                        150,
                        base_id=1000 + 1000 * batch,
                    )
                )
            assert shared.arena.generation > gen_before
            assert_arenas_identical(heap.arena, shared.arena)
        finally:
            shared.arena.close()

    def test_stale_views_survive_growth(self):
        """A row view handed out before growth keeps reading the old
        (retired) segment without crashing — heap-arena semantics."""
        shared = SharedStateArena(M_DOMAINS)
        try:
            engine = IncrementalTruthInference(
                WorkerQualityStore(M_DOMAINS), arena=shared
            )
            engine.register_tasks(_make_tasks(make_rng(1), 4))
            view = shared.view(0)
            before = view.s.copy()
            engine.register_tasks(
                _make_tasks(make_rng(2), 500, base_id=100)
            )
            np.testing.assert_array_equal(view.s, before)
        finally:
            shared.close()

    def test_group_slot_limit_is_enforced(self):
        shared = SharedStateArena(2)
        try:
            with pytest.raises(ValidationError, match="choice counts"):
                for ell in range(2, 2 + MAX_GROUPS + 1):
                    shared.grow(
                        [
                            Task(
                                task_id=ell,
                                text="t",
                                num_choices=ell,
                                domain_vector=np.array([0.5, 0.5]),
                            )
                        ]
                    )
        finally:
            shared.close()


def _drive_stream(engine, seed, steps=60, log=None):
    """A deterministic submit stream over the engine's arena.

    Skips (worker, task) pairs already drawn — a worker answers a task
    at most once — so identical seeds produce identical streams.
    """
    rng = make_rng(seed)
    task_ids = engine.arena.task_ids()
    seen = set()
    for step in range(steps):
        task_id = int(task_ids[int(rng.integers(len(task_ids)))])
        worker = f"w{int(rng.integers(NUM_WORKERS))}"
        if (worker, task_id) in seen:
            continue
        seen.add((worker, task_id))
        ell = engine.arena.view(task_id).num_choices
        choice = int(rng.integers(1, ell + 1))
        answer = Answer(worker, task_id, choice)
        engine.submit(answer)
        if log is not None:
            log.append(answer)


class TestOperationEquivalence:
    @pytest.mark.parametrize("seed", [5, 23])
    def test_incremental_submits(self, seed):
        heap, shared = _paired_engines(seed, count=30)
        try:
            _drive_stream(heap, seed + 50)
            _drive_stream(shared, seed + 50)
            assert_arenas_identical(heap.arena, shared.arena)
        finally:
            shared.arena.close()

    @pytest.mark.parametrize("seed", [9])
    def test_full_ti_resync(self, seed):
        heap, shared = _paired_engines(seed, count=25)
        try:
            ti = TruthInference(max_iterations=10)
            for engine in (heap, shared):
                log = AnswerLog(engine.arena)
                _drive_stream(engine, seed + 80, steps=60, log=log)
                result = ti.infer_from_log(log)
                engine.resync_from_arena_result(result)
            assert_arenas_identical(heap.arena, shared.arena)
        finally:
            shared.arena.close()

    def test_snapshot_overlay(self):
        """export_hot_state from one kind of arena loads into the other
        bit-identically — resume does not care where buffers live."""
        heap, shared = _paired_engines(13, count=20)
        try:
            _drive_stream(heap, 99)
            exported = heap.arena.export_hot_state()
            assert shared.arena.check_hot_state(exported) is None
            shared.arena.load_hot_state(exported)
            # The overlay stamps fresh epochs (it does not replay the
            # source's write history), so identity covers buffers only.
            assert_buffers_identical(heap.arena, shared.arena)
        finally:
            shared.arena.close()


class TestAttachment:
    def test_attach_sees_owner_state(self):
        heap, shared = _paired_engines(17, count=15)
        attached = None
        try:
            _drive_stream(shared, 17)
            shared.arena.refresh_entropies()
            attached = SharedStateArena.attach(shared.arena.base_name)
            assert not attached.is_owner
            assert_numeric_state_identical(shared.arena, attached)
        finally:
            if attached is not None:
                attached.close()
            shared.arena.close()

    def test_attach_follows_growth(self):
        heap, shared = _paired_engines(19, count=10)
        attached = None
        try:
            attached = SharedStateArena.attach(shared.arena.base_name)
            engine_tasks = _make_tasks(make_rng(3), 400, base_id=500)
            shared.register_tasks(engine_tasks)
            heap.register_tasks(_make_tasks(make_rng(3), 400, base_id=500))
            attached.refresh_attachment()
            assert attached.generation == shared.arena.generation
            assert_numeric_state_identical(shared.arena, attached)
            assert_buffers_identical(heap.arena, shared.arena)
        finally:
            if attached is not None:
                attached.close()
            shared.arena.close()

    def test_attach_rejects_foreign_segment(self):
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(
            name="docstest-foreign-ctrl", create=True, size=4096
        )
        try:
            with pytest.raises(ValidationError, match="control block"):
                SharedStateArena.attach("docstest-foreign")
        finally:
            shm.unlink()
            shm.close()


class TestLeakSafety:
    def test_clean_close_unlinks_everything(self):
        shared = SharedStateArena(M_DOMAINS)
        base = shared.base_name
        engine = IncrementalTruthInference(
            WorkerQualityStore(M_DOMAINS), arena=shared
        )
        engine.register_tasks(_make_tasks(make_rng(2), 300))
        assert shm_segments(base)
        shared.close()
        assert shm_segments(base) == []
        shared.close()  # idempotent

    def test_growth_does_not_accumulate_segments(self):
        """Superseded segments are unlinked at growth time, not close
        time — a long campaign holds one live segment per buffer."""
        shared = SharedStateArena(M_DOMAINS)
        try:
            engine = IncrementalTruthInference(
                WorkerQualityStore(M_DOMAINS), arena=shared
            )
            for batch in range(4):
                engine.register_tasks(
                    _make_tasks(make_rng(batch), 200, base_id=1000 * batch)
                )
            live = shm_segments(shared.base_name)
            # ctrl + one global + one segment per choice group.
            groups = len(list(shared.iter_groups()))
            assert len(live) == 2 + groups
            assert sorted(live) == shared.segment_names()
        finally:
            shared.close()

    def test_killed_owner_leaves_no_segments_behind(self, tmp_path):
        """SIGKILL the owning process; the stdlib resource tracker must
        reap every segment it registered."""
        script = tmp_path / "owner.py"
        script.write_text(
            """
import os, signal, sys
sys.path.insert(0, {src!r})
import numpy as np
from repro.core.shared_arena import SharedStateArena
from repro.core.types import Task

arena = SharedStateArena(3, base_name="docskill-" + str(os.getpid()))
arena.grow([
    Task(task_id=i, text="t", num_choices=2,
         domain_vector=np.array([0.5, 0.3, 0.2]))
    for i in range(200)
])
print(arena.base_name, flush=True)
os.kill(os.getpid(), signal.SIGKILL)
""".format(
                src=os.path.join(os.getcwd(), "src")
            )
        )
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == -9
        base = proc.stdout.strip().split()[-1]
        # The tracker reaps asynchronously after the process dies; give
        # it a moment before declaring a leak.
        import time

        for _ in range(50):
            if not shm_segments(base):
                break
            time.sleep(0.1)
        assert shm_segments(base) == []
