"""Tests for golden-task selection (Section 5.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.golden import (
    aggregate_domain_distribution,
    enumerate_golden_counts,
    kl_objective,
    select_golden_counts,
    select_golden_tasks,
)
from repro.errors import ValidationError


class TestKlObjective:
    def test_proportional_counts_minimal(self):
        tau = np.array([0.5, 0.25, 0.25])
        perfect = np.array([4, 2, 2])
        skewed = np.array([8, 0, 0])
        assert kl_objective(perfect, tau, 8) < kl_objective(
            skewed, tau, 8
        )

    def test_zero_counts_contribute_nothing(self):
        tau = np.array([0.5, 0.5])
        assert kl_objective(np.array([0, 0]), tau, 0) == 0.0

    def test_infinite_on_zero_mass_domain(self):
        tau = np.array([1.0, 0.0])
        assert kl_objective(np.array([0, 2]), tau, 2) == float("inf")


class TestSelectGoldenCounts:
    def test_counts_sum_to_budget(self):
        tau = np.array([0.4, 0.35, 0.25])
        counts = select_golden_counts(tau, 20)
        assert counts.sum() == 20

    def test_proportionality(self):
        tau = np.array([0.5, 0.3, 0.2])
        counts = select_golden_counts(tau, 10)
        np.testing.assert_array_equal(counts, [5, 3, 2])

    def test_zero_budget(self):
        counts = select_golden_counts(np.array([0.5, 0.5]), 0)
        assert counts.sum() == 0

    def test_zero_mass_domain_gets_nothing(self):
        tau = np.array([0.7, 0.3, 0.0])
        counts = select_golden_counts(tau, 9)
        assert counts[2] == 0

    def test_invalid_tau_rejected(self):
        with pytest.raises(ValidationError):
            select_golden_counts(np.array([0.5, 0.4]), 5)
        with pytest.raises(ValidationError):
            select_golden_counts(np.array([]), 5)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValidationError):
            select_golden_counts(np.array([1.0]), -1)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_near_optimal(self, n_prime, m, seed):
        """The paper reports gamma within 0.1% on average; individual
        instances must stay within a loose factor of the optimum."""
        rng = np.random.default_rng(seed)
        tau = rng.dirichlet(np.ones(m))
        greedy = select_golden_counts(tau, n_prime)
        optimal, optimal_value = enumerate_golden_counts(tau, n_prime)
        greedy_value = kl_objective(greedy, tau, n_prime)
        assert greedy.sum() == optimal.sum() == n_prime
        assert greedy_value <= optimal_value + 0.05


class TestEnumerateGoldenCounts:
    def test_finds_optimum_small(self):
        tau = np.array([0.5, 0.5])
        counts, value = enumerate_golden_counts(tau, 4)
        np.testing.assert_array_equal(counts, [2, 2])
        assert value == pytest.approx(0.0)


class TestAggregateDistribution:
    def test_mean_of_vectors(self):
        vectors = [np.array([1.0, 0.0]), np.array([0.0, 1.0])]
        np.testing.assert_allclose(
            aggregate_domain_distribution(vectors), [0.5, 0.5]
        )

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            aggregate_domain_distribution([])


class TestSelectGoldenTasks:
    def test_selects_representative_tasks(self):
        # 6 tasks: 4 in domain 0, 2 in domain 1.
        vectors = (
            [np.array([0.9, 0.1])] * 4 + [np.array([0.1, 0.9])] * 2
        )
        selected = select_golden_tasks(vectors, 3)
        assert len(selected) == 3
        domains = [int(np.argmax(vectors[i])) for i in selected]
        assert domains.count(0) == 2
        assert domains.count(1) == 1

    def test_guideline1_highest_r_selected(self):
        vectors = [
            np.array([0.6, 0.4]),
            np.array([0.95, 0.05]),  # the strongest domain-0 task
            np.array([0.1, 0.9]),
        ]
        selected = select_golden_tasks(vectors, 1)
        assert selected == [1]

    def test_no_duplicates(self):
        vectors = [np.array([0.5, 0.5])] * 4
        selected = select_golden_tasks(vectors, 4)
        assert len(set(selected)) == 4

    def test_budget_larger_than_tasks_rejected(self):
        with pytest.raises(ValidationError):
            select_golden_tasks([np.array([1.0])], 2)

    def test_zero_budget(self):
        assert select_golden_tasks([np.array([1.0])], 0) == []
