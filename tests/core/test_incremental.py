"""Tests for the incremental TI updater (Section 4.2)."""

import numpy as np
import pytest

from repro.core.incremental import IncrementalTruthInference
from repro.core.quality_store import WorkerQualityStore
from repro.core.truth_inference import TruthInference
from repro.core.types import Answer, Task
from repro.errors import UnknownTaskError, ValidationError


def _make(num_domains=3, default_quality=0.7):
    store = WorkerQualityStore(num_domains, default_quality=default_quality)
    return IncrementalTruthInference(store), store


def _task(task_id=0, r=(0.1, 0.8, 0.1), ell=2):
    return Task(
        task_id=task_id,
        text=f"t{task_id}",
        num_choices=ell,
        domain_vector=np.array(r),
    )


class TestRegistration:
    def test_register_and_state(self):
        inc, _ = _make()
        task = _task()
        state = inc.register_task(task)
        np.testing.assert_allclose(state.s, [0.5, 0.5])
        assert inc.state(0) is state

    def test_register_idempotent(self):
        inc, _ = _make()
        task = _task()
        first = inc.register_task(task)
        second = inc.register_task(task)
        assert first is second

    def test_unregistered_task_raises(self):
        inc, _ = _make()
        with pytest.raises(UnknownTaskError):
            inc.state(42)

    def test_missing_domain_vector_rejected(self):
        inc, _ = _make()
        with pytest.raises(ValidationError):
            inc.register_task(Task(task_id=0, text="x", num_choices=2))


class TestSubmit:
    def test_single_answer_moves_truth(self):
        inc, store = _make()
        store.set(
            "w", np.array([0.9, 0.9, 0.9]), np.array([5.0, 5.0, 5.0])
        )
        inc.register_task(_task())
        state = inc.submit(Answer("w", 0, 1))
        assert state.s[0] > 0.5

    def test_repeat_answer_rejected(self):
        inc, _ = _make()
        inc.register_task(_task())
        inc.submit(Answer("w", 0, 1))
        with pytest.raises(ValidationError):
            inc.submit(Answer("w", 0, 2))

    def test_out_of_range_choice_rejected(self):
        inc, _ = _make()
        inc.register_task(_task())
        with pytest.raises(ValidationError):
            inc.submit(Answer("w", 0, 3))

    def test_worker_quality_updated_via_theorem1(self):
        inc, store = _make()
        inc.register_task(_task(r=(0.0, 1.0, 0.0)))
        inc.submit(Answer("w", 0, 1))
        stats = store.get("w")
        # Weight gains exactly r.
        np.testing.assert_allclose(stats.weight, [0.0, 1.0, 0.0])

    def test_prior_answerers_refreshed(self):
        inc, store = _make()
        inc.register_task(_task(r=(0.0, 1.0, 0.0)))
        inc.submit(Answer("w1", 0, 1))
        q_before = store.get("w1").quality[1]
        # A confirming second answer raises s[0], so w1's contribution
        # (choice 1) should be revised upward.
        inc.submit(Answer("w2", 0, 1))
        q_after = store.get("w1").quality[1]
        assert q_after > q_before

    def test_disagreement_lowers_prior_answerer(self):
        inc, store = _make()
        inc.register_task(_task(r=(0.0, 1.0, 0.0)))
        inc.submit(Answer("w1", 0, 1))
        q_before = store.get("w1").quality[1]
        inc.submit(Answer("w2", 0, 2))
        inc.submit(Answer("w3", 0, 2))
        q_after = store.get("w1").quality[1]
        assert q_after < q_before

    def test_history_tracked(self):
        inc, _ = _make()
        inc.register_task(_task())
        inc.submit(Answer("a", 0, 1))
        inc.submit(Answer("b", 0, 2))
        assert inc.answered_workers(0) == [("a", 1), ("b", 2)]


class TestAgreementWithFullInference:
    def test_single_task_truth_matches_full_ti(self):
        """For one task the incremental M-hat accumulates exactly the
        Eq. 3 numerator, so s must match the full computation (with the
        same fixed worker qualities)."""
        inc, store = _make()
        qualities = {
            "w1": np.array([0.3, 0.9, 0.6]),
            "w2": np.array([0.9, 0.6, 0.3]),
            "w3": np.array([0.6, 0.3, 0.9]),
        }
        task = _task(r=(0.0, 0.78, 0.22))
        answers = [
            Answer("w1", 0, 1),
            Answer("w2", 0, 2),
            Answer("w3", 0, 2),
        ]
        # Freeze the store's qualities before each submission so the
        # likelihood uses the same q as the full TI's first iteration.
        inc.register_task(task)
        for answer in answers:
            store.set(
                answer.worker_id,
                qualities[answer.worker_id],
                np.full(3, 100.0),  # heavy weight: merge barely moves q
            )
            inc.submit(answer)
        full = TruthInference(max_iterations=1).infer(
            [task], answers, initial_qualities=qualities
        )
        np.testing.assert_allclose(
            inc.state(0).s, full.probabilistic_truths[0], atol=0.02
        )

    def test_resync_overwrites_state(self):
        inc, store = _make()
        task = _task()
        inc.register_task(task)
        inc.submit(Answer("w", 0, 1))
        new_s = np.array([0.2, 0.8])
        new_M = np.array([[0.2, 0.8]] * 3)
        inc.resync_from_full_inference(
            probabilistic_truths={0: new_s},
            truth_matrices={0: new_M},
            worker_qualities={"w": np.array([0.5, 0.5, 0.5])},
            worker_weights={"w": np.array([1.0, 1.0, 1.0])},
        )
        np.testing.assert_allclose(inc.state(0).s, new_s)
        np.testing.assert_allclose(
            store.get("w").quality, [0.5, 0.5, 0.5]
        )
