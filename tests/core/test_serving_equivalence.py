"""Serving-plane equivalence: AssignmentIndex vs the brute-force oracle.

The exactness contract of ``core/serving.py``: for identical arena
state, worker quality, exclusion sets, and k, the index's picks must be
**bit-identical** (same ids, same order) to the brute-force
``arena_benefits`` + mask + ``top_k_indices`` path — across random
answer streams, ``add_tasks`` live growth, worker-quality drift,
full-TI resyncs, and snapshot resume. This suite is seeded
property-style: each seed drives a fresh randomized campaign through
both paths and compares every single arrival.
"""

import numpy as np
import pytest

from repro.core.arena import AnswerLog
from repro.core.assignment import (
    TaskAssigner,
    arena_benefits,
    arena_benefits_rows,
    kernel_rows_evaluated,
)
from repro.core.incremental import IncrementalTruthInference
from repro.core.quality_store import WorkerQualityStore
from repro.core.serving import AssignmentIndex
from repro.core.truth_inference import TruthInference
from repro.core.types import Answer, Task
from repro.utils.rng import make_rng

M_DOMAINS = 5
NUM_WORKERS = 6
HIT_SIZE = 4


def _make_tasks(rng, count, base_id=0):
    return [
        Task(
            task_id=base_id + i,
            text=f"task {base_id + i}",
            num_choices=int(rng.integers(2, 5)),
            domain_vector=rng.dirichlet(np.ones(M_DOMAINS)),
            ground_truth=1,
        )
        for i in range(count)
    ]


def _make_engine(rng, count):
    store = WorkerQualityStore(M_DOMAINS)
    for j in range(NUM_WORKERS):
        store.set(
            f"w{j}",
            rng.uniform(0.4, 0.95, size=M_DOMAINS),
            np.full(M_DOMAINS, 2.0),
        )
    engine = IncrementalTruthInference(store)
    tasks = _make_tasks(rng, count)
    engine.register_tasks(tasks)
    return engine, store, {t.task_id: t for t in tasks}


def _paired_assigners(arena, **index_kwargs):
    """(brute oracle, index-served) assigner pair over one arena.

    The oracle gets ``masked_fraction=0`` so it always evaluates the
    full pool; the index assigner keeps it at 0 too, so every arrival
    — including small eligible sets — flows through the index under
    test rather than the row-subset fast path.
    """
    brute = TaskAssigner(hit_size=HIT_SIZE, masked_fraction=0.0)
    served = TaskAssigner(hit_size=HIT_SIZE, masked_fraction=0.0)
    index = AssignmentIndex(arena, **index_kwargs)
    served.attach_index(index)
    return brute, served, index


class TestRandomizedStreamEquivalence:
    @pytest.mark.parametrize("seed", [3, 17, 29, 61])
    def test_picks_identical_across_answer_stream(self, seed):
        """Every arrival of a randomized campaign — drifting worker
        qualities, random k, random eligible/answered sets — picks the
        same tasks in the same order on both paths."""
        rng = make_rng(seed)
        engine, store, tasks = _make_engine(rng, count=80)
        brute, served, index = _paired_assigners(
            engine.arena, frontier_size=12
        )
        answered = {f"w{j}": set() for j in range(NUM_WORKERS)}

        for step in range(150):
            worker = f"w{int(rng.integers(NUM_WORKERS))}"
            quality = store.blended_quality(worker)
            k = int(rng.integers(1, 8))
            eligible = None
            if rng.random() < 0.3:
                eligible = {
                    int(t)
                    for t in rng.choice(
                        sorted(tasks),
                        size=int(rng.integers(2, len(tasks))),
                        replace=False,
                    )
                }
            expect = brute.assign(
                engine.arena,
                quality,
                answered_by_worker=answered[worker],
                k=k,
                eligible=eligible,
            )
            got = served.assign(
                engine.arena,
                quality,
                answered_by_worker=answered[worker],
                k=k,
                eligible=eligible,
            )
            assert got == expect, f"seed {seed} arrival {step}"

            remaining = [
                t for t in tasks if t not in answered[worker]
            ]
            if remaining:
                tid = int(rng.choice(remaining))
                ell = tasks[tid].num_choices
                engine.submit(
                    Answer(worker, tid, int(rng.integers(1, ell + 1)))
                )
                answered[worker].add(tid)
        assert index.stats()["warm_hits"] + index.stats()[
            "cold_builds"
        ] > 0

    @pytest.mark.parametrize("seed", [5, 41])
    def test_live_growth_mid_stream(self, seed):
        """``register_tasks`` growth blocks mid-campaign invalidate the
        cached columns row-wise; picks stay identical and grown tasks
        become assignable on both paths."""
        rng = make_rng(seed)
        engine, store, tasks = _make_engine(rng, count=40)
        brute, served, index = _paired_assigners(engine.arena)
        quality = rng.uniform(0.4, 0.95, size=M_DOMAINS)
        next_id = len(tasks)

        seen_growth_pick = False
        for step in range(60):
            if step % 15 == 7:
                batch = _make_tasks(rng, 10, base_id=next_id)
                engine.register_tasks(batch)
                tasks.update({t.task_id: t for t in batch})
                next_id += 10
            expect = brute.assign(engine.arena, quality, k=6)
            got = served.assign(engine.arena, quality, k=6)
            assert got == expect, f"seed {seed} arrival {step}"
            seen_growth_pick = seen_growth_pick or any(
                tid >= 40 for tid in got
            )
            tid = int(rng.choice(sorted(tasks)))
            worker = f"w{step % NUM_WORKERS}"
            if worker not in {
                w for w, _ in engine.answered_workers(tid)
            }:
                engine.submit(
                    Answer(
                        worker,
                        tid,
                        int(
                            rng.integers(
                                1, tasks[tid].num_choices + 1
                            )
                        ),
                    )
                )
        assert len(engine.arena) == next_id

    @pytest.mark.parametrize("seed", [13])
    def test_full_ti_resync_invalidates_block_wise(self, seed):
        """A full-TI rerun rewrites every answered row; the next
        arrival repairs the cached column and still matches brute."""
        rng = make_rng(seed)
        engine, store, tasks = _make_engine(rng, count=50)
        brute, served, index = _paired_assigners(engine.arena)
        log = AnswerLog(engine.arena)
        quality = rng.uniform(0.4, 0.95, size=M_DOMAINS)
        golden = {
            w: store.get(w).quality.copy()
            for w in store.known_workers()
        }

        counters = [0] * NUM_WORKERS
        for round_no in range(4):
            for _ in range(30):
                j = int(rng.integers(NUM_WORKERS))
                tid = (counters[j] * NUM_WORKERS + j) % len(tasks)
                counters[j] += 1
                if any(
                    w == f"w{j}"
                    for w, _ in engine.answered_workers(tid)
                ):
                    continue
                answer = Answer(
                    f"w{j}",
                    tid,
                    int(
                        rng.integers(1, tasks[tid].num_choices + 1)
                    ),
                )
                engine.submit(answer)
                log.append(answer)
            result = TruthInference().infer_from_log(
                log, initial_qualities=golden
            )
            engine.resync_from_arena_result(result)
            expect = brute.assign(engine.arena, quality, k=5)
            got = served.assign(engine.arena, quality, k=5)
            assert got == expect, f"seed {seed} round {round_no}"

    def test_quality_drift_never_reuses_stale_column(self):
        """Two workers in the same quantisation bucket with different
        exact qualities must not share benefit values: the second
        lookup rebuilds the slot and both match brute."""
        rng = make_rng(7)
        engine, store, tasks = _make_engine(rng, count=30)
        brute, served, index = _paired_assigners(
            engine.arena, bucket_granularity=1.0
        )
        q_a = np.full(M_DOMAINS, 0.61)
        q_b = np.full(M_DOMAINS, 0.64)  # same bucket at granularity 1.0
        for quality in (q_a, q_b, q_a, q_b):
            assert served.assign(engine.arena, quality) == brute.assign(
                engine.arena, quality
            )
        # Same bucket key throughout, yet each quality switch rebuilt.
        assert index.stats()["buckets"] == 1
        assert index.stats()["cold_builds"] == 4


class TestWarmPathDoesSubLinearWork:
    def test_warm_arrival_repairs_only_dirty_rows(self):
        """A stable-quality reader pays kernel work proportional to the
        rows dirtied since their last arrival, not to the pool."""
        rng = make_rng(19)
        engine, store, tasks = _make_engine(rng, count=400)
        brute, served, index = _paired_assigners(engine.arena)
        reader_q = rng.uniform(0.4, 0.95, size=M_DOMAINS)

        served.assign(engine.arena, reader_q)  # cold build: 400 rows
        counters = [0] * NUM_WORKERS
        for step in range(20):
            for i in range(5):  # five answers dirty <= 5 rows
                j = (step * 5 + i) % NUM_WORKERS
                tid = counters[j] * NUM_WORKERS + j
                counters[j] += 1
                engine.submit(
                    Answer(
                        f"w{j}",
                        tid,
                        int(
                            rng.integers(
                                1, tasks[tid].num_choices + 1
                            )
                        ),
                    )
                )
            before = kernel_rows_evaluated()
            got = served.assign(engine.arena, reader_q)
            spent = kernel_rows_evaluated() - before
            assert spent <= 5, f"arrival {step} evaluated {spent} rows"
            assert got == brute.assign(engine.arena, reader_q)
        stats = index.stats()
        assert stats["warm_hits"] == 20
        assert stats["rows_repaired"] <= 100

    def test_tiny_frontier_stays_exact_via_fallback(self):
        """A frontier far smaller than k can never prove a pick; the
        index must fall back to full-column selection and still match
        the oracle exactly."""
        rng = make_rng(23)
        engine, store, tasks = _make_engine(rng, count=60)
        brute, served, index = _paired_assigners(
            engine.arena, frontier_size=2
        )
        quality = rng.uniform(0.4, 0.95, size=M_DOMAINS)
        for step in range(10):
            assert served.assign(
                engine.arena, quality, k=8
            ) == brute.assign(engine.arena, quality, k=8)
            tid = step
            engine.submit(
                Answer(
                    "w0",
                    tid,
                    int(rng.integers(1, tasks[tid].num_choices + 1)),
                )
            )
        assert index.stats()["full_selections"] >= 1


class TestRowSubsetKernelIsBitIdentical:
    @pytest.mark.parametrize("seed", [2, 9, 31])
    def test_subset_matches_full_pool_bitwise(self, seed):
        """``arena_benefits_rows`` must reproduce ``arena_benefits``
        exactly (not approximately) on arbitrary row subsets — the
        foundation of every serving strategy's exactness."""
        rng = make_rng(seed)
        engine, store, tasks = _make_engine(rng, count=70)
        for step in range(40):  # answered state, multiple groups
            tid = step % len(tasks)
            engine.submit(
                Answer(
                    f"w{step % NUM_WORKERS}",
                    tid,
                    int(rng.integers(1, tasks[tid].num_choices + 1)),
                )
            )
        quality = rng.uniform(0.4, 0.95, size=M_DOMAINS)
        full = arena_benefits(engine.arena, quality)
        for _ in range(5):
            rows = rng.choice(
                len(tasks),
                size=int(rng.integers(1, len(tasks))),
                replace=False,
            ).astype(np.int64)
            subset = arena_benefits_rows(engine.arena, quality, rows)
            assert np.array_equal(subset, full[rows])


class TestSnapshotResumeEquivalence:
    def test_resumed_system_serves_identically(self, tmp_path):
        """A resumed campaign's index-served assigns must equal both a
        brute-force evaluation of the resumed arena and the original
        system's picks."""
        from repro.datasets import make_dataset
        from repro.system import DocsConfig, DocsSystem

        dataset = make_dataset("4d", seed=11, tasks_per_domain=6)
        config = DocsConfig(
            golden_count=4,
            rerun_interval=25,
            hit_size=3,
            journal_batch_size=8,
            snapshot_every_batches=2,
        )
        path = str(tmp_path / "serve.db")
        system = DocsSystem(config, storage="sqlite", path=path)
        system.prepare(dataset)
        workers = [f"w{i}" for i in range(5)]
        for arrival in range(30):
            worker = workers[arrival % len(workers)]
            if system.needs_bootstrap(worker):
                system.bootstrap(
                    worker,
                    [
                        Answer(
                            worker,
                            tid,
                            dataset.task_by_id(tid).ground_truth,
                        )
                        for tid in system.golden_task_ids()
                    ],
                )
            for task_id in system.assign(worker, 2):
                ell = dataset.task_by_id(task_id).num_choices
                system.submit(
                    Answer(
                        worker, task_id, 1 + (task_id + arrival) % ell
                    )
                )
        system.database.journal.flush()

        resumed = DocsSystem.resume(path, config=config)
        assert resumed.serving_index is not None
        oracle = TaskAssigner(hit_size=3, masked_fraction=0.0)
        for worker in workers:
            quality = resumed.quality_store.blended_quality(worker)
            answered = resumed.database.answers.tasks_answered_by(
                worker
            )
            expect = oracle.assign(
                resumed._incremental.arena,
                quality,
                answered_by_worker=answered,
                k=3,
            )
            assert resumed.assign(worker, 3) == expect
            assert system.assign(worker, 3) == expect
        system.close()
        resumed.close()
