"""Tests for worker-quality maintenance (Theorem 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.quality_store import WorkerQualityStore
from repro.errors import UnknownWorkerError, ValidationError


class TestBasics:
    def test_unknown_worker_raises(self):
        store = WorkerQualityStore(3)
        with pytest.raises(UnknownWorkerError):
            store.get("ghost")

    def test_quality_or_default_for_unknown(self):
        store = WorkerQualityStore(3, default_quality=0.6)
        np.testing.assert_allclose(
            store.quality_or_default("ghost"), [0.6] * 3
        )

    def test_set_and_get(self):
        store = WorkerQualityStore(2)
        store.set("w", np.array([0.8, 0.5]), np.array([3.0, 1.0]))
        stats = store.get("w")
        np.testing.assert_allclose(stats.quality, [0.8, 0.5])
        np.testing.assert_allclose(stats.weight, [3.0, 1.0])

    def test_zero_weight_domains_default(self):
        store = WorkerQualityStore(2, default_quality=0.7)
        store.set("w", np.array([0.9, 0.2]), np.array([5.0, 0.0]))
        quality = store.quality_or_default("w")
        assert quality[0] == pytest.approx(0.9)
        assert quality[1] == pytest.approx(0.7)

    def test_shape_validation(self):
        store = WorkerQualityStore(3)
        with pytest.raises(ValidationError):
            store.set("w", np.array([0.5]), np.array([1.0]))
        with pytest.raises(ValidationError):
            store.merge("w", np.array([0.5]), np.array([1.0]))

    def test_negative_weight_rejected(self):
        store = WorkerQualityStore(2)
        with pytest.raises(ValidationError):
            store.set("w", np.array([0.5, 0.5]), np.array([-1.0, 0.0]))

    def test_contains_and_snapshot(self):
        store = WorkerQualityStore(2)
        assert "w" not in store
        store.set("w", np.array([0.5, 0.5]), np.array([1.0, 1.0]))
        assert "w" in store
        snapshot = store.snapshot()
        snapshot["w"].quality[0] = 0.0
        # Snapshot is a deep copy.
        assert store.get("w").quality[0] == pytest.approx(0.5)


class TestTheorem1Merge:
    def test_merge_formula(self):
        """The exact update of Theorem 1."""
        store = WorkerQualityStore(1)
        store.set("w", np.array([0.8]), np.array([4.0]))
        merged = store.merge("w", np.array([0.6]), np.array([2.0]))
        # (0.8*4 + 0.6*2) / 6 = 4.4/6
        assert merged.quality[0] == pytest.approx(4.4 / 6)
        assert merged.weight[0] == pytest.approx(6.0)

    def test_merge_into_empty(self):
        store = WorkerQualityStore(2)
        merged = store.merge(
            "w", np.array([0.7, 0.5]), np.array([1.0, 2.0])
        )
        np.testing.assert_allclose(merged.quality, [0.7, 0.5])

    def test_zero_weight_batch_is_noop_on_quality(self):
        store = WorkerQualityStore(1)
        store.set("w", np.array([0.8]), np.array([4.0]))
        merged = store.merge("w", np.array([0.1]), np.array([0.0]))
        assert merged.quality[0] == pytest.approx(0.8)
        assert merged.weight[0] == pytest.approx(4.0)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1.0),  # batch quality
                # Subnormal weights make the test's own oracle collapse
                # (q * w underflows to 0 while w survives), so exclude
                # them — they assert float artefacts, not Theorem 1.
                st.floats(
                    min_value=0.0,
                    max_value=10.0,
                    allow_subnormal=False,
                ),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_incremental_merge_equals_batch(self, batches):
        """Theorem 1's correctness property: merging batch-by-batch
        equals one weighted mean over everything."""
        store = WorkerQualityStore(1)
        for quality, weight in batches:
            store.merge("w", np.array([quality]), np.array([weight]))
        total_weight = sum(w for _, w in batches)
        stats = store.get("w")
        assert stats.weight[0] == pytest.approx(total_weight)
        if total_weight > 0:
            expected = (
                sum(q * w for q, w in batches) / total_weight
            )
            assert stats.quality[0] == pytest.approx(expected)


class TestGoldenInitialisation:
    def test_perfect_worker_with_shrinkage(self):
        store = WorkerQualityStore(2, default_quality=0.7)
        domain_vectors = {
            0: np.array([1.0, 0.0]),
            1: np.array([1.0, 0.0]),
        }
        stats = store.initialize_from_golden(
            "w",
            golden_answers={0: 1, 1: 1},
            golden_truths={0: 1, 1: 1},
            domain_vectors=domain_vectors,
        )
        # (2 correct + 0.7) / (2 + 1) with unit shrinkage.
        assert stats.quality[0] == pytest.approx(2.7 / 3)
        # Unseen domain stays at the default.
        assert stats.quality[1] == pytest.approx(0.7)

    def test_all_wrong_worker(self):
        store = WorkerQualityStore(1, default_quality=0.7)
        stats = store.initialize_from_golden(
            "w",
            golden_answers={0: 2},
            golden_truths={0: 1},
            domain_vectors={0: np.array([1.0])},
        )
        assert stats.quality[0] == pytest.approx(0.7 / 2)

    def test_zero_shrinkage_exact_fraction(self):
        store = WorkerQualityStore(1)
        stats = store.initialize_from_golden(
            "w",
            golden_answers={0: 1, 1: 2},
            golden_truths={0: 1, 1: 1},
            domain_vectors={
                0: np.array([1.0]),
                1: np.array([1.0]),
            },
            shrinkage=0.0,
        )
        assert stats.quality[0] == pytest.approx(0.5)

    def test_missing_truth_rejected(self):
        store = WorkerQualityStore(1)
        with pytest.raises(ValidationError):
            store.initialize_from_golden(
                "w",
                golden_answers={0: 1},
                golden_truths={},
                domain_vectors={0: np.array([1.0])},
            )

    def test_negative_shrinkage_rejected(self):
        store = WorkerQualityStore(1)
        with pytest.raises(ValidationError):
            store.initialize_from_golden(
                "w", {}, {}, {}, shrinkage=-1.0
            )

    def test_weights_are_r_sums(self):
        store = WorkerQualityStore(2)
        store.initialize_from_golden(
            "w",
            golden_answers={0: 1, 1: 1},
            golden_truths={0: 1, 1: 1},
            domain_vectors={
                0: np.array([0.3, 0.7]),
                1: np.array([0.6, 0.4]),
            },
        )
        np.testing.assert_allclose(
            store.get("w").weight, [0.9, 1.1]
        )
