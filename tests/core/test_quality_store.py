"""Tests for worker-quality maintenance (Theorem 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.quality_store import WorkerQualityStore
from repro.errors import UnknownWorkerError, ValidationError
from repro.platform.sqlite_storage import SqliteWorkerQualityStore


def _both_stores(num_domains, default_quality=0.7):
    return [
        WorkerQualityStore(num_domains, default_quality=default_quality),
        SqliteWorkerQualityStore(
            num_domains, default_quality=default_quality
        ),
    ]


class TestBlendedQualityFinite:
    """Regression: pseudo_weight=0 on zero-weight domains divided 0/0
    into NaN (plus a RuntimeWarning), poisoning OTA benefits."""

    @pytest.mark.parametrize("pseudo_weight", [0.0, 0.5, 1.0, 3.0])
    def test_finite_for_every_store_and_weight_profile(
        self, pseudo_weight, recwarn
    ):
        quality = np.array([0.9, 0.8, 0.3, 0.55])
        weights = [
            np.zeros(4),
            np.array([2.0, 0.0, 0.0, 5.0]),
            np.full(4, 1e-12),
            np.full(4, 3.0),
        ]
        for store in _both_stores(4, default_quality=0.6):
            for i, weight in enumerate(weights):
                store.set(f"w{i}", quality, weight)
            for i in range(len(weights)):
                blended = store.blended_quality(
                    f"w{i}", pseudo_weight=pseudo_weight
                )
                assert np.all(np.isfinite(blended)), (
                    type(store).__name__, i, pseudo_weight, blended
                )
        assert not [
            w for w in recwarn.list if w.category is RuntimeWarning
        ]

    def test_zero_total_domains_fall_back_to_default(self):
        for store in _both_stores(3, default_quality=0.6):
            store.set(
                "w", np.array([0.9, 0.8, 0.7]), np.array([2.0, 0.0, 0.0])
            )
            blended = store.blended_quality("w", pseudo_weight=0.0)
            np.testing.assert_allclose(blended, [0.9, 0.6, 0.6])

    def test_unknown_worker_still_defaults(self):
        for store in _both_stores(3, default_quality=0.6):
            np.testing.assert_allclose(
                store.blended_quality("ghost", pseudo_weight=0.0),
                [0.6] * 3,
            )

    def test_positive_weights_unchanged_by_fix(self):
        quality = np.array([0.9, 0.2])
        weight = np.array([4.0, 1.0])
        for store in _both_stores(2, default_quality=0.7):
            store.set("w", quality, weight)
            expected = (quality * weight + 0.7 * 1.0) / (weight + 1.0)
            np.testing.assert_allclose(
                store.blended_quality("w"), expected
            )


class TestBasics:
    def test_unknown_worker_raises(self):
        store = WorkerQualityStore(3)
        with pytest.raises(UnknownWorkerError):
            store.get("ghost")

    def test_quality_or_default_for_unknown(self):
        store = WorkerQualityStore(3, default_quality=0.6)
        np.testing.assert_allclose(
            store.quality_or_default("ghost"), [0.6] * 3
        )

    def test_set_and_get(self):
        store = WorkerQualityStore(2)
        store.set("w", np.array([0.8, 0.5]), np.array([3.0, 1.0]))
        stats = store.get("w")
        np.testing.assert_allclose(stats.quality, [0.8, 0.5])
        np.testing.assert_allclose(stats.weight, [3.0, 1.0])

    def test_zero_weight_domains_default(self):
        store = WorkerQualityStore(2, default_quality=0.7)
        store.set("w", np.array([0.9, 0.2]), np.array([5.0, 0.0]))
        quality = store.quality_or_default("w")
        assert quality[0] == pytest.approx(0.9)
        assert quality[1] == pytest.approx(0.7)

    def test_shape_validation(self):
        store = WorkerQualityStore(3)
        with pytest.raises(ValidationError):
            store.set("w", np.array([0.5]), np.array([1.0]))
        with pytest.raises(ValidationError):
            store.merge("w", np.array([0.5]), np.array([1.0]))

    def test_negative_weight_rejected(self):
        store = WorkerQualityStore(2)
        with pytest.raises(ValidationError):
            store.set("w", np.array([0.5, 0.5]), np.array([-1.0, 0.0]))

    def test_contains_and_snapshot(self):
        store = WorkerQualityStore(2)
        assert "w" not in store
        store.set("w", np.array([0.5, 0.5]), np.array([1.0, 1.0]))
        assert "w" in store
        snapshot = store.snapshot()
        snapshot["w"].quality[0] = 0.0
        # Snapshot is a deep copy.
        assert store.get("w").quality[0] == pytest.approx(0.5)


class TestTheorem1Merge:
    def test_merge_formula(self):
        """The exact update of Theorem 1."""
        store = WorkerQualityStore(1)
        store.set("w", np.array([0.8]), np.array([4.0]))
        merged = store.merge("w", np.array([0.6]), np.array([2.0]))
        # (0.8*4 + 0.6*2) / 6 = 4.4/6
        assert merged.quality[0] == pytest.approx(4.4 / 6)
        assert merged.weight[0] == pytest.approx(6.0)

    def test_merge_into_empty(self):
        store = WorkerQualityStore(2)
        merged = store.merge(
            "w", np.array([0.7, 0.5]), np.array([1.0, 2.0])
        )
        np.testing.assert_allclose(merged.quality, [0.7, 0.5])

    def test_zero_weight_batch_is_noop_on_quality(self):
        store = WorkerQualityStore(1)
        store.set("w", np.array([0.8]), np.array([4.0]))
        merged = store.merge("w", np.array([0.1]), np.array([0.0]))
        assert merged.quality[0] == pytest.approx(0.8)
        assert merged.weight[0] == pytest.approx(4.0)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1.0),  # batch quality
                # Subnormal weights make the test's own oracle collapse
                # (q * w underflows to 0 while w survives), so exclude
                # them — they assert float artefacts, not Theorem 1.
                st.floats(
                    min_value=0.0,
                    max_value=10.0,
                    allow_subnormal=False,
                ),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_incremental_merge_equals_batch(self, batches):
        """Theorem 1's correctness property: merging batch-by-batch
        equals one weighted mean over everything."""
        store = WorkerQualityStore(1)
        for quality, weight in batches:
            store.merge("w", np.array([quality]), np.array([weight]))
        total_weight = sum(w for _, w in batches)
        stats = store.get("w")
        assert stats.weight[0] == pytest.approx(total_weight)
        if total_weight > 0:
            expected = (
                sum(q * w for q, w in batches) / total_weight
            )
            assert stats.quality[0] == pytest.approx(expected)


class TestGoldenInitialisation:
    def test_perfect_worker_with_shrinkage(self):
        store = WorkerQualityStore(2, default_quality=0.7)
        domain_vectors = {
            0: np.array([1.0, 0.0]),
            1: np.array([1.0, 0.0]),
        }
        stats = store.initialize_from_golden(
            "w",
            golden_answers={0: 1, 1: 1},
            golden_truths={0: 1, 1: 1},
            domain_vectors=domain_vectors,
        )
        # (2 correct + 0.7) / (2 + 1) with unit shrinkage.
        assert stats.quality[0] == pytest.approx(2.7 / 3)
        # Unseen domain stays at the default.
        assert stats.quality[1] == pytest.approx(0.7)

    def test_all_wrong_worker(self):
        store = WorkerQualityStore(1, default_quality=0.7)
        stats = store.initialize_from_golden(
            "w",
            golden_answers={0: 2},
            golden_truths={0: 1},
            domain_vectors={0: np.array([1.0])},
        )
        assert stats.quality[0] == pytest.approx(0.7 / 2)

    def test_zero_shrinkage_exact_fraction(self):
        store = WorkerQualityStore(1)
        stats = store.initialize_from_golden(
            "w",
            golden_answers={0: 1, 1: 2},
            golden_truths={0: 1, 1: 1},
            domain_vectors={
                0: np.array([1.0]),
                1: np.array([1.0]),
            },
            shrinkage=0.0,
        )
        assert stats.quality[0] == pytest.approx(0.5)

    def test_missing_truth_rejected(self):
        store = WorkerQualityStore(1)
        with pytest.raises(ValidationError):
            store.initialize_from_golden(
                "w",
                golden_answers={0: 1},
                golden_truths={},
                domain_vectors={0: np.array([1.0])},
            )

    def test_negative_shrinkage_rejected(self):
        store = WorkerQualityStore(1)
        with pytest.raises(ValidationError):
            store.initialize_from_golden(
                "w", {}, {}, {}, shrinkage=-1.0
            )

    def test_weights_are_r_sums(self):
        store = WorkerQualityStore(2)
        store.initialize_from_golden(
            "w",
            golden_answers={0: 1, 1: 1},
            golden_truths={0: 1, 1: 1},
            domain_vectors={
                0: np.array([0.3, 0.7]),
                1: np.array([0.6, 0.4]),
            },
        )
        np.testing.assert_allclose(
            store.get("w").weight, [0.9, 1.1]
        )


class TestApplyBatchDelta:
    """Mass-form Theorem 1: new batches match merge(); revision deltas
    (weight unchanged, mass changed) update quality exactly."""

    def test_new_batch_matches_merge(self):
        quality = np.array([0.9, 0.4, 0.7])
        weight = np.array([2.0, 1.0, 0.0])
        for store in _both_stores(3):
            store.apply_batch_delta("w", quality * weight, weight)
            reference = WorkerQualityStore(3)
            reference.merge("w", quality, weight)
            np.testing.assert_allclose(
                store.get("w").quality, reference.get("w").quality
            )
            np.testing.assert_allclose(
                store.get("w").weight, reference.get("w").weight
            )

    def test_revision_delta_moves_quality_not_weight(self):
        for store in _both_stores(2):
            store.set("w", np.array([0.8, 0.5]), np.array([4.0, 2.0]))
            # Revise domain 0's mass from 3.2 to 3.6 with no new weight.
            store.apply_batch_delta(
                "w", np.array([0.4, 0.0]), np.zeros(2)
            )
            stats = store.get("w")
            np.testing.assert_allclose(stats.quality, [0.9, 0.5])
            np.testing.assert_allclose(stats.weight, [4.0, 2.0])

    def test_deltas_telescope(self):
        rng = np.random.default_rng(5)
        cumulative = []
        q, u = np.zeros(3), np.zeros(3)
        for _ in range(4):
            u = u + rng.uniform(0.0, 2.0, size=3)
            q = rng.uniform(0.1, 0.9, size=3)
            cumulative.append((q.copy(), u.copy()))
        for store in _both_stores(3):
            prev_q, prev_u = np.zeros(3), np.zeros(3)
            for q_i, u_i in cumulative:
                store.apply_batch_delta(
                    "w", q_i * u_i - prev_q * prev_u, u_i - prev_u
                )
                prev_q, prev_u = q_i, u_i
            stats = store.get("w")
            np.testing.assert_allclose(stats.quality, cumulative[-1][0])
            np.testing.assert_allclose(stats.weight, cumulative[-1][1])

    def test_negative_delta_weight_rejected(self):
        for store in _both_stores(2):
            with pytest.raises(ValidationError):
                store.apply_batch_delta(
                    "w", np.zeros(2), np.array([-0.1, 0.0])
                )
