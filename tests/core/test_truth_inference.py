"""Tests for the iterative Truth Inference (Section 4.1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.truth_inference import (
    TruthInference,
    conditional_truth_matrix,
)
from repro.core.types import Answer, Task
from repro.errors import ValidationError


def paper_task():
    """The running-example task t1 with r = [0, 0.78, 0.22]."""
    return Task(
        task_id=1,
        text="Does Michael Jordan win more NBA championships than Kobe?",
        num_choices=2,
        domain_vector=np.array([0.0, 0.78, 0.22]),
    )


def paper_answers():
    return [
        Answer("w1", 1, 1),
        Answer("w2", 1, 2),
        Answer("w3", 1, 2),
    ]


def paper_qualities():
    return {
        "w1": np.array([0.3, 0.9, 0.6]),
        "w2": np.array([0.9, 0.6, 0.3]),
        "w3": np.array([0.6, 0.3, 0.9]),
    }


class TestPaperTable1Example:
    """Section 4.1's worked example, digit for digit."""

    def test_conditional_matrix_rows(self):
        task = paper_task()
        M = conditional_truth_matrix(
            task, task.domain_vector, paper_answers(), paper_qualities()
        )
        np.testing.assert_allclose(M[0], [0.03, 0.97], atol=0.005)
        np.testing.assert_allclose(M[1], [0.93, 0.07], atol=0.005)
        np.testing.assert_allclose(M[2], [0.28, 0.72], atol=0.005)

    def test_probabilistic_truth(self):
        task = paper_task()
        M = conditional_truth_matrix(
            task, task.domain_vector, paper_answers(), paper_qualities()
        )
        s = task.domain_vector @ M
        np.testing.assert_allclose(s, [0.79, 0.21], atol=0.005)

    def test_expert_outvotes_majority(self):
        """One sports expert saying 'yes' beats two novices saying 'no'
        on a sports task — the paper's central claim for step 1."""
        ti = TruthInference(max_iterations=1)
        result = ti.infer(
            [paper_task()],
            paper_answers(),
            initial_qualities=paper_qualities(),
        )
        assert result.truths()[1] == 1


class TestStep2WorkerQuality:
    def test_paper_step2_example(self):
        """Section 4.1 step 2's example: q_2 = 0.92 from two tasks."""
        # Worker answers both tasks with choice 1; s and r as given.
        m = 3
        tasks = [
            Task(
                task_id=1,
                text="t1",
                num_choices=2,
                domain_vector=np.array([0.05, 0.9, 0.05]),
            ),
            Task(
                task_id=2,
                text="t2",
                num_choices=2,
                domain_vector=np.array([0.9, 0.05, 0.05]),
            ),
        ]
        # Build the Eq. 5 value directly: the example fixes s values.
        s1, s2 = 0.95, 0.3
        r1, r2 = 0.9, 0.05
        expected = (r1 * s1 + r2 * s2) / (r1 + r2)
        assert expected == pytest.approx(0.92, abs=0.005)


class TestIterativeBehaviour:
    def _world(self, num_tasks=200, seed=3, noise_quality=0.5):
        """Synthetic world: two experts and three noise workers.

        Noise workers answer at chance. (A worse-than-chance *majority*
        would let cold-started EM converge to the mirrored labelling —
        a known EM property and the reason the paper initialises
        qualities from golden tasks; covered by
        ``test_anti_correlated_majority_needs_initialisation``.)
        """
        rng = np.random.default_rng(seed)
        tasks = []
        answers = []
        qualities = {
            "expert1": np.array([0.92, 0.92]),
            "expert2": np.array([0.9, 0.9]),
            "noise1": np.array([noise_quality] * 2),
            "noise2": np.array([noise_quality] * 2),
            "noise3": np.array([noise_quality] * 2),
        }
        for tid in range(num_tasks):
            domain = tid % 2
            r = np.array([0.9, 0.1]) if domain == 0 else np.array([0.1, 0.9])
            truth = int(rng.integers(1, 3))
            tasks.append(
                Task(
                    task_id=tid,
                    text=f"t{tid}",
                    num_choices=2,
                    domain_vector=r,
                    ground_truth=truth,
                )
            )
            for worker, quality in qualities.items():
                if rng.random() < quality[domain]:
                    choice = truth
                else:
                    choice = 3 - truth
                answers.append(Answer(worker, tid, choice))
        return tasks, answers

    @staticmethod
    def _majority_accuracy(tasks, answers):
        votes = {}
        for answer in answers:
            votes.setdefault(answer.task_id, []).append(answer.choice)
        correct = 0
        for task in tasks:
            counts = np.bincount(votes[task.task_id])
            correct += int(np.argmax(counts)) == task.ground_truth
        return correct / len(tasks)

    def test_beats_majority_vote(self):
        tasks, answers = self._world()
        result = TruthInference().infer(tasks, answers)
        assert result.accuracy(tasks) > self._majority_accuracy(
            tasks, answers
        )

    def test_expert_identified(self):
        tasks, answers = self._world()
        result = TruthInference().infer(tasks, answers)
        expert_q = result.worker_qualities["expert1"].mean()
        noise_q = result.worker_qualities["noise1"].mean()
        assert expert_q > noise_q + 0.2

    def test_delta_decreases(self):
        tasks, answers = self._world()
        ti = TruthInference(max_iterations=30, tolerance=0.0)
        result = ti.infer(tasks, answers)
        deltas = result.delta_history
        assert deltas[0] > deltas[-1]
        assert deltas[-1] < 0.01

    def test_convergence_stops_early(self):
        tasks, answers = self._world()
        ti = TruthInference(max_iterations=50, tolerance=5e-3)
        result = ti.infer(tasks, answers)
        assert result.iterations < 50

    def test_anti_correlated_majority_needs_initialisation(self):
        """With a worse-than-chance majority, cold-start EM can invert;
        golden-style initial qualities recover the truth — the paper's
        stated reason for the golden-task bootstrap."""
        tasks, answers = self._world(noise_quality=0.35)
        initial = {
            "expert1": np.array([0.85, 0.85]),
            "expert2": np.array([0.85, 0.85]),
            "noise1": np.array([0.4, 0.4]),
            "noise2": np.array([0.4, 0.4]),
            "noise3": np.array([0.4, 0.4]),
        }
        warm = TruthInference().infer(
            tasks, answers, initial_qualities=initial
        )
        assert warm.accuracy(tasks) > 0.8

    def test_initial_qualities_respected(self):
        tasks, answers = self._world()
        # Tell TI the spammers are excellent and the expert terrible:
        # a single iteration should then trust the spammers.
        lying = {
            "expert1": np.array([0.05, 0.05]),
            "expert2": np.array([0.05, 0.05]),
            "noise1": np.array([0.95, 0.95]),
            "noise2": np.array([0.95, 0.95]),
            "noise3": np.array([0.95, 0.95]),
        }
        one_step = TruthInference(max_iterations=1).infer(
            tasks, answers, initial_qualities=lying
        )
        honest = TruthInference(max_iterations=1).infer(tasks, answers)
        assert one_step.truths() != honest.truths()

    def test_worker_weights_are_r_sums(self, simple_tasks):
        answers = [Answer("w", 0, 1), Answer("w", 1, 2)]
        result = TruthInference(max_iterations=1).infer(
            simple_tasks, answers
        )
        np.testing.assert_allclose(
            result.worker_weights["w"],
            simple_tasks[0].domain_vector + simple_tasks[1].domain_vector,
        )


class TestValidation:
    def test_missing_domain_vector_rejected(self):
        task = Task(task_id=0, text="x", num_choices=2)
        with pytest.raises(ValidationError):
            TruthInference().infer([task], [Answer("w", 0, 1)])

    def test_unknown_task_in_answers_rejected(self, simple_tasks):
        with pytest.raises(ValidationError):
            TruthInference().infer(
                simple_tasks, [Answer("w", 99, 1)]
            )

    def test_no_tasks_rejected(self):
        with pytest.raises(ValidationError):
            TruthInference().infer([], [])

    def test_empty_answers_ok(self, simple_tasks):
        result = TruthInference().infer(simple_tasks, [])
        assert result.probabilistic_truths == {}

    def test_bad_initial_quality_shape(self, simple_tasks):
        with pytest.raises(ValidationError):
            TruthInference().infer(
                simple_tasks,
                [Answer("w", 0, 1)],
                initial_qualities={"w": np.array([0.5])},
            )

    def test_invalid_constructor_args(self):
        with pytest.raises(ValidationError):
            TruthInference(max_iterations=0)
        with pytest.raises(ValidationError):
            TruthInference(default_quality=1.0)


class TestMixedChoiceCounts:
    def test_tasks_with_different_ell(self):
        tasks = [
            Task(
                task_id=0,
                text="binary",
                num_choices=2,
                domain_vector=np.array([1.0, 0.0]),
            ),
            Task(
                task_id=1,
                text="four-way",
                num_choices=4,
                domain_vector=np.array([0.0, 1.0]),
            ),
        ]
        answers = [
            Answer("w1", 0, 1),
            Answer("w2", 0, 1),
            Answer("w1", 1, 3),
            Answer("w2", 1, 3),
        ]
        result = TruthInference().infer(tasks, answers)
        assert result.truths() == {0: 1, 1: 3}
        assert result.probabilistic_truths[0].shape == (2,)
        assert result.probabilistic_truths[1].shape == (4,)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=5))
    def test_probabilistic_truths_are_distributions(self, ell):
        tasks = [
            Task(
                task_id=0,
                text="t",
                num_choices=ell,
                domain_vector=np.array([0.5, 0.5]),
            )
        ]
        answers = [Answer("w", 0, 1), Answer("v", 0, ell)]
        result = TruthInference().infer(tasks, answers)
        s = result.probabilistic_truths[0]
        assert s.sum() == pytest.approx(1.0)
        assert np.all(s >= 0)
