"""Tests for the core data types."""

import numpy as np
import pytest

from repro.core.types import (
    Answer,
    Task,
    TaskState,
    group_answers_by_task,
    group_answers_by_worker,
)
from repro.errors import ValidationError


class TestTask:
    def test_minimal_task(self):
        task = Task(task_id=0, text="t", num_choices=2)
        assert task.domain_vector is None

    def test_single_choice_rejected(self):
        with pytest.raises(ValidationError):
            Task(task_id=0, text="t", num_choices=1)

    def test_ground_truth_range_checked(self):
        with pytest.raises(ValidationError):
            Task(task_id=0, text="t", num_choices=2, ground_truth=3)
        with pytest.raises(ValidationError):
            Task(task_id=0, text="t", num_choices=2, ground_truth=0)

    def test_domain_vector_validated(self):
        with pytest.raises(ValidationError):
            Task(
                task_id=0,
                text="t",
                num_choices=2,
                domain_vector=np.array([0.5, 0.2]),
            )

    def test_behavior_domains_validated(self):
        with pytest.raises(ValidationError):
            Task(
                task_id=0,
                text="t",
                num_choices=2,
                behavior_domains=np.array([2.0, -1.0]),
            )

    def test_distractor_range_checked(self):
        with pytest.raises(ValidationError):
            Task(task_id=0, text="t", num_choices=2, distractor=5)

    def test_vectors_coerced_to_arrays(self):
        task = Task(
            task_id=0,
            text="t",
            num_choices=2,
            domain_vector=[0.4, 0.6],
            behavior_domains=[0.5, 0.5],
        )
        assert isinstance(task.domain_vector, np.ndarray)
        assert isinstance(task.behavior_domains, np.ndarray)


class TestAnswer:
    def test_choice_must_be_positive(self):
        with pytest.raises(ValidationError):
            Answer("w", 0, 0)

    def test_frozen(self):
        answer = Answer("w", 0, 1)
        with pytest.raises(AttributeError):
            answer.choice = 2


class TestTaskState:
    def test_fresh_state_uniform(self):
        task = Task(task_id=3, text="t", num_choices=4)
        state = TaskState.fresh(task, np.array([0.5, 0.5]))
        np.testing.assert_allclose(state.s, [0.25] * 4)
        assert state.M.shape == (2, 4)
        assert state.log_numerators.shape == (2, 4)

    def test_inferred_truth_one_based(self):
        task = Task(task_id=0, text="t", num_choices=2)
        state = TaskState(
            task=task,
            r=np.array([1.0]),
            M=np.array([[0.3, 0.7]]),
            s=np.array([0.3, 0.7]),
        )
        assert state.inferred_truth() == 2


class TestGrouping:
    def test_by_task_preserves_order(self):
        answers = [
            Answer("a", 1, 1),
            Answer("b", 0, 2),
            Answer("c", 1, 2),
        ]
        grouped = group_answers_by_task(answers)
        assert [a.worker_id for a in grouped[1]] == ["a", "c"]

    def test_by_worker(self):
        answers = [
            Answer("a", 1, 1),
            Answer("a", 2, 1),
            Answer("b", 1, 2),
        ]
        grouped = group_answers_by_worker(answers)
        assert len(grouped["a"]) == 2
        assert len(grouped["b"]) == 1

    def test_empty(self):
        assert group_answers_by_task([]) == {}
        assert group_answers_by_worker([]) == {}
