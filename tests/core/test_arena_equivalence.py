"""Arena / per-object equivalence under a randomized serving workload.

The arena serving path (in-place row updates, cached entropies, log-fed
full TI) must be *indistinguishable* from the per-object reference paths
(:mod:`repro.core.reference`, :func:`repro.core.assignment.task_benefit`,
:func:`repro.core.truth_inference.conditional_truth_matrix`,
:meth:`repro.core.truth_inference.TruthInference.infer`). This suite
drives both through identical randomized submit / assign / rerun
workloads and asserts identical truths, qualities, and HIT selections.
"""

import numpy as np
import pytest

from repro.core.arena import AnswerLog
from repro.core.assignment import TaskAssigner, arena_benefits, task_benefit
from repro.core.incremental import IncrementalTruthInference
from repro.core.quality_store import WorkerQualityStore
from repro.core.reference import ReferenceIncrementalTruthInference
from repro.core.truth_inference import (
    QUALITY_CEIL,
    QUALITY_FLOOR,
    TruthInference,
    conditional_truth_matrix,
)
from repro.core.types import Answer, Task
from repro.utils.rng import make_rng

M_DOMAINS = 4
NUM_TASKS = 36
NUM_WORKERS = 7
HIT_SIZE = 4
RERUN_EVERY = 25


def _make_tasks(rng):
    tasks = []
    for i in range(NUM_TASKS):
        tasks.append(
            Task(
                task_id=i,
                text=f"task {i}",
                num_choices=int(rng.integers(2, 5)),
                domain_vector=rng.dirichlet(np.ones(M_DOMAINS)),
                ground_truth=1,
            )
        )
    return tasks


def _seeded_stores(rng):
    """Two independent but identical stores (one per implementation)."""
    qualities = {
        f"w{j}": rng.uniform(0.4, 0.95, size=M_DOMAINS)
        for j in range(NUM_WORKERS)
    }
    stores = []
    for _ in range(2):
        store = WorkerQualityStore(M_DOMAINS)
        for worker_id, quality in qualities.items():
            store.set(worker_id, quality, np.full(M_DOMAINS, 2.0))
        stores.append(store)
    return stores, {w: q.copy() for w, q in qualities.items()}


class TestSingleUpdateAgainstEq3:
    def test_first_submit_reproduces_conditional_truth_matrix(self):
        """One answer into a fresh arena row is exactly Eq. 3-4 with
        that worker's (clipped) quality."""
        rng = make_rng(2)
        task = Task(
            task_id=0, text="t", num_choices=3,
            domain_vector=rng.dirichlet(np.ones(M_DOMAINS)),
        )
        store = WorkerQualityStore(M_DOMAINS)
        quality = rng.uniform(0.3, 0.9, size=M_DOMAINS)
        store.set("w", quality, np.full(M_DOMAINS, 5.0))
        inc = IncrementalTruthInference(store)
        inc.register_task(task)
        answer = Answer("w", 0, 2)
        state = inc.submit(answer)
        expected = conditional_truth_matrix(
            task,
            task.domain_vector,
            [answer],
            {"w": np.clip(quality, QUALITY_FLOOR, QUALITY_CEIL)},
        )
        np.testing.assert_allclose(state.M, expected, atol=1e-12)
        np.testing.assert_allclose(
            state.s, task.domain_vector @ expected, atol=1e-12
        )


class TestRandomizedWorkloadEquivalence:
    @pytest.mark.parametrize("seed", [11, 23, 47])
    def test_submit_assign_rerun_workload(self, seed):
        rng = make_rng(seed)
        tasks = _make_tasks(rng)
        (store_arena, store_ref), golden_init = _seeded_stores(rng)

        arena_inc = IncrementalTruthInference(store_arena)
        ref_inc = ReferenceIncrementalTruthInference(store_ref)
        for task in tasks:
            arena_inc.register_task(task)
            ref_inc.register_task(task)

        log = AnswerLog(arena_inc.arena)
        answers = []
        answered_by = {f"w{j}": set() for j in range(NUM_WORKERS)}
        assigner = TaskAssigner(hit_size=HIT_SIZE)
        ti = TruthInference()
        reruns = 0

        for arrival in range(40):
            worker_id = f"w{int(rng.integers(NUM_WORKERS))}"
            q_arena = store_arena.blended_quality(worker_id)
            q_ref = store_ref.blended_quality(worker_id)
            np.testing.assert_allclose(q_arena, q_ref, atol=1e-12)

            # Benefits: arena buffers vs the per-task reference path.
            benefits = arena_benefits(arena_inc.arena, q_arena)
            probe = [
                int(rng.integers(NUM_TASKS)) for _ in range(5)
            ]
            for tid in probe:
                assert benefits[
                    arena_inc.arena.global_row(tid)
                ] == pytest.approx(
                    task_benefit(ref_inc.state(tid), q_ref), abs=1e-9
                )

            hit_arena = assigner.assign(
                arena_inc.arena,
                q_arena,
                answered_by_worker=answered_by[worker_id],
            )
            hit_ref = assigner.assign(
                ref_inc.states(),
                q_ref,
                answered_by_worker=answered_by[worker_id],
            )
            assert hit_arena == hit_ref

            for tid in hit_arena:
                choice = int(
                    rng.integers(1, tasks[tid].num_choices + 1)
                )
                answer = Answer(worker_id, tid, choice)
                state_arena = arena_inc.submit(answer)
                state_ref = ref_inc.submit(answer)
                log.append(answer)
                answers.append(answer)
                answered_by[worker_id].add(tid)
                np.testing.assert_allclose(
                    state_arena.s, state_ref.s, atol=1e-12
                )

                if len(answers) % RERUN_EVERY == 0:
                    reruns += 1
                    legacy = ti.infer(
                        tasks, answers, initial_qualities=golden_init
                    )
                    arena_result = ti.infer_from_log(
                        log, initial_qualities=golden_init
                    )
                    assert arena_result.truths() == legacy.truths()
                    assert (
                        arena_result.iterations == legacy.iterations
                    )
                    for worker, quality in (
                        legacy.worker_qualities.items()
                    ):
                        np.testing.assert_allclose(
                            arena_result.worker_qualities()[worker],
                            quality,
                            atol=1e-12,
                        )
                    ref_inc.resync_from_full_inference(
                        legacy.probabilistic_truths,
                        legacy.truth_matrices,
                        legacy.worker_qualities,
                        legacy.worker_weights,
                    )
                    arena_inc.resync_from_arena_result(arena_result)

        assert reruns >= 2, "workload too small to exercise reruns"

        # Terminal state: every task and worker identical across paths.
        for task in tasks:
            arena_state = arena_inc.state(task.task_id)
            ref_state = ref_inc.state(task.task_id)
            np.testing.assert_allclose(
                arena_state.M, ref_state.M, atol=1e-12
            )
            np.testing.assert_allclose(
                arena_state.s, ref_state.s, atol=1e-12
            )
            np.testing.assert_allclose(
                arena_state.log_numerators,
                ref_state.log_numerators,
                atol=1e-12,
            )
            assert (
                arena_state.inferred_truth()
                == ref_state.inferred_truth()
            )
        for worker_id in store_ref.known_workers():
            np.testing.assert_allclose(
                store_arena.get(worker_id).quality,
                store_ref.get(worker_id).quality,
                atol=1e-12,
            )
            np.testing.assert_allclose(
                store_arena.get(worker_id).weight,
                store_ref.get(worker_id).weight,
                atol=1e-12,
            )

        # Final full inference agrees bit-for-bit on MAP truths.
        final_legacy = ti.infer(
            tasks, answers, initial_qualities=golden_init
        )
        final_arena = ti.infer_from_log(
            log, initial_qualities=golden_init
        )
        assert final_arena.truths() == final_legacy.truths()
        for tid, s in final_legacy.probabilistic_truths.items():
            row = final_arena.task_ids.index(tid)
            ell = int(final_arena.ells[row])
            np.testing.assert_allclose(
                final_arena.S[row, :ell], s, atol=1e-12
            )
