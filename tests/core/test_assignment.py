"""Tests for Online Task Assignment (Theorems 2-4, benefit function)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.assignment import (
    TaskAssigner,
    batch_benefits,
    predict_answer_distribution,
    task_benefit,
    updated_truth_matrix,
)
from repro.core.types import Task, TaskState
from repro.errors import ValidationError


def make_state(r, M, task_id=0):
    r = np.asarray(r, dtype=float)
    M = np.asarray(M, dtype=float)
    task = Task(task_id=task_id, text="t", num_choices=M.shape[1])
    return TaskState(task=task, r=r, M=M, s=r @ M)


@st.composite
def random_state(draw, max_domains=4, max_choices=4):
    m = draw(st.integers(min_value=1, max_value=max_domains))
    ell = draw(st.integers(min_value=2, max_value=max_choices))
    r_raw = [
        draw(st.floats(min_value=0.01, max_value=1.0)) for _ in range(m)
    ]
    r = np.array(r_raw) / sum(r_raw)
    M = np.empty((m, ell))
    for k in range(m):
        row = [
            draw(st.floats(min_value=0.01, max_value=1.0))
            for _ in range(ell)
        ]
        M[k] = np.array(row) / sum(row)
    quality = np.array(
        [
            draw(st.floats(min_value=0.05, max_value=0.95))
            for _ in range(m)
        ]
    )
    return make_state(r, M), quality


class TestTheorem2:
    def test_prediction_is_distribution(self):
        state = make_state([0.5, 0.5], [[0.9, 0.1], [0.2, 0.8]])
        p = predict_answer_distribution(
            state.r, state.M, np.array([0.8, 0.6])
        )
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p >= 0)

    def test_expert_predicted_to_answer_truth(self):
        # Truth is almost surely choice 1; a high-quality worker should
        # be predicted to answer 1.
        state = make_state([1.0], [[0.99, 0.01]])
        p = predict_answer_distribution(
            state.r, state.M, np.array([0.95])
        )
        assert p[0] > 0.9

    def test_random_worker_predicted_uniform(self):
        state = make_state([1.0], [[0.5, 0.5]])
        p = predict_answer_distribution(
            state.r, state.M, np.array([0.5])
        )
        np.testing.assert_allclose(p, [0.5, 0.5])

    @settings(max_examples=60, deadline=None)
    @given(random_state())
    def test_always_distribution(self, state_quality):
        state, quality = state_quality
        p = predict_answer_distribution(state.r, state.M, quality)
        assert p.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(p >= -1e-12)


class TestTheorem3:
    def test_confirming_answer_sharpens(self):
        M = np.array([[0.7, 0.3]])
        updated = updated_truth_matrix(M, np.array([0.9]), answer=1)
        assert updated[0, 0] > 0.7

    def test_contradicting_answer_weakens(self):
        M = np.array([[0.7, 0.3]])
        updated = updated_truth_matrix(M, np.array([0.9]), answer=2)
        assert updated[0, 0] < 0.7

    def test_rows_remain_distributions(self):
        M = np.array([[0.5, 0.3, 0.2], [0.1, 0.1, 0.8]])
        updated = updated_truth_matrix(
            M, np.array([0.6, 0.8]), answer=2
        )
        np.testing.assert_allclose(updated.sum(axis=1), [1.0, 1.0])

    def test_uninformative_worker_changes_nothing(self):
        # q = 1/l means correct and wrong picks are equally likely.
        M = np.array([[0.7, 0.3]])
        updated = updated_truth_matrix(M, np.array([0.5]), answer=1)
        np.testing.assert_allclose(updated, M)

    def test_invalid_answer_rejected(self):
        with pytest.raises(ValidationError):
            updated_truth_matrix(
                np.array([[0.5, 0.5]]), np.array([0.7]), answer=3
            )


class TestBenefit:
    def test_confident_task_has_low_benefit(self):
        confident = make_state([1.0], [[0.99, 0.01]])
        uncertain = make_state([1.0], [[0.5, 0.5]])
        quality = np.array([0.85])
        assert task_benefit(uncertain, quality) > task_benefit(
            confident, quality
        )

    def test_expert_brings_more_benefit_than_novice(self):
        state = make_state(
            [0.0, 1.0], [[0.5, 0.5], [0.5, 0.5]]
        )
        expert = np.array([0.5, 0.95])
        novice = np.array([0.5, 0.55])
        assert task_benefit(state, expert) > task_benefit(state, novice)

    def test_domain_match_matters(self):
        # Same task; worker A expert in the task's domain, worker B
        # expert elsewhere.
        state = make_state(
            [0.9, 0.1], [[0.5, 0.5], [0.5, 0.5]]
        )
        matching = np.array([0.95, 0.5])
        mismatched = np.array([0.5, 0.95])
        assert task_benefit(state, matching) > task_benefit(
            state, mismatched
        )

    @settings(max_examples=60, deadline=None)
    @given(random_state())
    def test_benefit_bounded_by_prior_entropy(self, state_quality):
        """No assignment can remove more ambiguity than exists.

        Note: the paper's update holds r fixed (Theorem 3 conditions M
        but not the domain distribution), so B(t) is *not* guaranteed
        non-negative for arbitrary multi-domain states — only the upper
        bound is an invariant.
        """
        state, quality = state_quality
        from repro.utils.math import entropy_unchecked

        assert task_benefit(state, quality) <= (
            entropy_unchecked(state.s) + 1e-9
        )

    @settings(max_examples=60, deadline=None)
    @given(random_state(max_domains=1))
    def test_benefit_non_negative_single_domain(self, state_quality):
        """With m = 1 the update is exact Bayesian conditioning of s,
        so the expected entropy reduction is non-negative."""
        state, quality = state_quality
        assert task_benefit(state, quality) >= -1e-9

    @settings(max_examples=40, deadline=None)
    @given(random_state())
    def test_batch_matches_scalar(self, state_quality):
        state, quality = state_quality
        np.testing.assert_allclose(
            batch_benefits([state], quality)[0],
            task_benefit(state, quality),
            atol=1e-10,
        )

    def test_batch_mixed_choice_counts(self):
        s2 = make_state([1.0], [[0.6, 0.4]], task_id=0)
        s3 = make_state([1.0], [[0.4, 0.3, 0.3]], task_id=1)
        quality = np.array([0.8])
        benefits = batch_benefits([s2, s3], quality)
        assert benefits[0] == pytest.approx(
            task_benefit(s2, quality), abs=1e-10
        )
        assert benefits[1] == pytest.approx(
            task_benefit(s3, quality), abs=1e-10
        )


class TestTheorem4AndAssigner:
    def test_top_k_selection_is_additive_optimum(self):
        """Theorem 4: the best k-set is the top-k by individual benefit,
        so the assigner must return exactly those."""
        states = {}
        for task_id, confidence in enumerate(
            [0.5, 0.99, 0.6, 0.95, 0.55]
        ):
            states[task_id] = make_state(
                [1.0],
                [[confidence, 1.0 - confidence]],
                task_id=task_id,
            )
        assigner = TaskAssigner(hit_size=2)
        quality = np.array([0.85])
        chosen = assigner.assign(states, quality)
        benefits = {
            tid: task_benefit(state, quality)
            for tid, state in states.items()
        }
        expected = sorted(benefits, key=benefits.get, reverse=True)[:2]
        assert sorted(chosen) == sorted(expected)

    def test_excludes_answered(self):
        states = {
            0: make_state([1.0], [[0.5, 0.5]], task_id=0),
            1: make_state([1.0], [[0.5, 0.5]], task_id=1),
        }
        assigner = TaskAssigner(hit_size=2)
        chosen = assigner.assign(
            states, np.array([0.8]), answered_by_worker={0}
        )
        assert chosen == [1]

    def test_eligibility_filter(self):
        states = {
            0: make_state([1.0], [[0.5, 0.5]], task_id=0),
            1: make_state([1.0], [[0.5, 0.5]], task_id=1),
        }
        assigner = TaskAssigner(hit_size=2)
        chosen = assigner.assign(
            states, np.array([0.8]), eligible={1}
        )
        assert chosen == [1]

    def test_returns_fewer_when_pool_small(self):
        states = {0: make_state([1.0], [[0.5, 0.5]], task_id=0)}
        assigner = TaskAssigner(hit_size=5)
        assert len(assigner.assign(states, np.array([0.8]))) == 1

    def test_empty_pool(self):
        assigner = TaskAssigner(hit_size=3)
        assert assigner.assign({}, np.array([0.8])) == []

    def test_invalid_k(self):
        assigner = TaskAssigner(hit_size=3)
        with pytest.raises(ValidationError):
            assigner.assign({}, np.array([0.8]), k=0)
        with pytest.raises(ValidationError):
            TaskAssigner(hit_size=0)


class TestUnknownIdHandling:
    """`eligible` / `answered_by_worker` ids missing from the arena are
    a caller bug (stale candidate sets after live growth) — surfaced via
    a warning by default, or a raise with strict_ids."""

    def _arena(self, n=6, m=3):
        from repro.core.arena import StateArena

        arena = StateArena(m)
        for i in range(n):
            arena.add(
                Task(
                    task_id=i,
                    text=f"t{i}",
                    num_choices=2,
                    domain_vector=np.full(m, 1.0 / m),
                )
            )
        return arena

    def test_unknown_answered_id_logs_warning(self, caplog):
        arena = self._arena()
        assigner = TaskAssigner(hit_size=2)
        with caplog.at_level("WARNING", logger="repro.core.assignment"):
            hit = assigner.assign(
                arena, np.full(3, 0.8), answered_by_worker={0, 999}
            )
        assert hit  # the known ids still assign
        assert 0 not in hit
        assert any("999" in r.message for r in caplog.records)
        assert any("answered_by_worker" in r.message for r in caplog.records)

    def test_unknown_eligible_id_strict_raises(self):
        arena = self._arena()
        assigner = TaskAssigner(hit_size=2, strict_ids=True)
        with pytest.raises(ValidationError, match="eligible"):
            assigner.assign(
                arena, np.full(3, 0.8), eligible={1, 2, 777}
            )

    def test_known_ids_never_warn(self, caplog):
        arena = self._arena()
        assigner = TaskAssigner(hit_size=2, strict_ids=True)
        with caplog.at_level("WARNING", logger="repro.core.assignment"):
            hit = assigner.assign(
                arena,
                np.full(3, 0.8),
                answered_by_worker={0},
                eligible={1, 2, 3},
            )
        assert set(hit) <= {1, 2, 3}
        assert not caplog.records

    def test_stale_set_after_live_growth(self, caplog):
        """The documented trap: a candidate set naming a task that only
        joins the arena via a later grow() must warn before the grow and
        pass silently after it."""
        from repro.core.arena import StateArena

        arena = self._arena(n=4)
        assigner = TaskAssigner(hit_size=2)
        late = Task(
            task_id=100,
            text="late",
            num_choices=2,
            domain_vector=np.full(3, 1.0 / 3),
        )
        with caplog.at_level("WARNING", logger="repro.core.assignment"):
            assigner.assign(arena, np.full(3, 0.8), eligible={100})
        assert any("stale" in r.message for r in caplog.records)
        caplog.clear()

        arena.grow([late])
        with caplog.at_level("WARNING", logger="repro.core.assignment"):
            hit = assigner.assign(
                arena, np.full(3, 0.8), eligible={100}
            )
        assert hit == [100]
        assert not caplog.records


class TestMaskedEligibleFastPath:
    """Budget-capped tails (small `eligible` sets) must be served by the
    row-subset kernel — same picks as the full-pool path, kernel work
    proportional to the candidate count, not the pool."""

    def _arena(self, n=200, m=3, seed=5):
        from repro.core.arena import StateArena
        from repro.utils.rng import make_rng

        rng = make_rng(seed)
        arena = StateArena(m)
        for i in range(n):
            arena.add(
                Task(
                    task_id=i,
                    text=f"t{i}",
                    num_choices=int(rng.integers(2, 4)),
                    domain_vector=rng.dirichlet(np.ones(m)),
                )
            )
        return arena

    def test_small_eligible_set_evaluates_only_candidates(self):
        from repro.core.assignment import kernel_rows_evaluated

        arena = self._arena()
        assigner = TaskAssigner(hit_size=5)
        eligible = {3, 17, 42, 99, 150, 151, 152, 180}
        before = kernel_rows_evaluated()
        hit = assigner.assign(arena, np.full(3, 0.8), eligible=eligible)
        spent = kernel_rows_evaluated() - before
        assert spent == len(eligible), (
            f"evaluated {spent} kernel rows for {len(eligible)} "
            "candidates — the masked fast path did O(n) work"
        )
        assert len(hit) == 5 and set(hit) <= eligible

    def test_masked_picks_match_full_pool_path(self):
        arena = self._arena()
        fast = TaskAssigner(hit_size=6)
        brute = TaskAssigner(hit_size=6, masked_fraction=0.0)
        quality = np.array([0.55, 0.8, 0.7])
        for eligible, answered in (
            ({1, 2, 3, 4, 5, 6, 7, 8}, None),
            ({10, 20, 30, 40}, {20, 30}),
            (set(range(0, 40)), {5}),
        ):
            assert fast.assign(
                arena, quality,
                answered_by_worker=answered, eligible=eligible,
            ) == brute.assign(
                arena, quality,
                answered_by_worker=answered, eligible=eligible,
            )

    def test_masked_ties_break_like_full_pool(self):
        """Identical fresh tasks tie on benefit; both paths must break
        ties by ascending arena row."""
        from repro.core.arena import StateArena

        arena = StateArena(3)
        for i in range(30):
            arena.add(
                Task(
                    task_id=i,
                    text=f"t{i}",
                    num_choices=2,
                    domain_vector=np.full(3, 1.0 / 3),
                )
            )
        fast = TaskAssigner(hit_size=4)
        brute = TaskAssigner(hit_size=4, masked_fraction=0.0)
        eligible = {25, 3, 17, 9, 28, 11}
        quality = np.full(3, 0.75)
        expect = brute.assign(arena, quality, eligible=eligible)
        assert fast.assign(arena, quality, eligible=eligible) == expect
        assert expect == [3, 9, 11, 17]  # ascending-row tie-break
