"""Tests for confidence-based task retirement (the stable-point rule)."""

import numpy as np
import pytest

from repro.core.stopping import (
    BudgetSavingAssigner,
    ConfidenceStoppingRule,
    EntropyStoppingRule,
    savings_report,
)
from repro.core.truth_inference import TruthInference
from repro.core.types import Answer, Task, TaskState
from repro.errors import ValidationError


def make_state(s, task_id=0):
    s = np.asarray(s, dtype=float)
    task = Task(task_id=task_id, text="t", num_choices=s.size)
    r = np.array([1.0])
    return TaskState(task=task, r=r, M=s[None, :], s=s)


class TestConfidenceRule:
    def test_confident_task_retires(self):
        rule = ConfidenceStoppingRule(threshold=0.9, min_answers=2)
        assert rule.should_stop(make_state([0.95, 0.05]), 3)

    def test_uncertain_task_stays(self):
        rule = ConfidenceStoppingRule(threshold=0.9, min_answers=2)
        assert not rule.should_stop(make_state([0.6, 0.4]), 9)

    def test_min_answers_guards(self):
        rule = ConfidenceStoppingRule(threshold=0.9, min_answers=3)
        assert not rule.should_stop(make_state([0.99, 0.01]), 2)

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            ConfidenceStoppingRule(threshold=0.5)
        with pytest.raises(ValidationError):
            ConfidenceStoppingRule(min_answers=0)


class TestEntropyRule:
    def test_low_entropy_retires(self):
        rule = EntropyStoppingRule(max_entropy=0.2, min_answers=1)
        assert rule.should_stop(make_state([0.99, 0.01]), 2)

    def test_high_entropy_stays(self):
        rule = EntropyStoppingRule(max_entropy=0.2, min_answers=1)
        assert not rule.should_stop(make_state([0.5, 0.5]), 10)

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            EntropyStoppingRule(max_entropy=0.0)


class TestBudgetSavingAssigner:
    def test_retired_tasks_not_assigned(self):
        states = {
            0: make_state([0.99, 0.01], task_id=0),  # confident
            1: make_state([0.5, 0.5], task_id=1),    # ambiguous
        }
        assigner = BudgetSavingAssigner(
            ConfidenceStoppingRule(threshold=0.9, min_answers=1)
        )
        chosen = assigner.assign(
            states,
            np.array([0.8]),
            answer_counts={0: 5, 1: 5},
            k=2,
        )
        assert chosen == [1]
        assert assigner.retired == {0}

    def test_retirement_is_monotone(self):
        state = make_state([0.99, 0.01], task_id=0)
        assigner = BudgetSavingAssigner(
            ConfidenceStoppingRule(threshold=0.9, min_answers=1)
        )
        assigner.refresh({0: state}, {0: 5})
        assert assigner.retired == {0}
        # Posterior softens later — the task stays retired.
        softened = make_state([0.6, 0.4], task_id=0)
        assigner.refresh({0: softened}, {0: 5})
        assert assigner.retired == {0}

    def test_all_retired_returns_empty(self):
        states = {0: make_state([0.99, 0.01], task_id=0)}
        assigner = BudgetSavingAssigner(
            ConfidenceStoppingRule(threshold=0.9, min_answers=1)
        )
        assert (
            assigner.assign(
                states, np.array([0.8]), answer_counts={0: 5}, k=1
            )
            == []
        )


class TestSavingsReport:
    def _world(self, seed=5):
        rng = np.random.default_rng(seed)
        tasks, answers = [], []
        workers = {f"w{i}": 0.85 for i in range(10)}
        for tid in range(80):
            r = np.array([1.0])
            truth = int(rng.integers(1, 3))
            tasks.append(
                Task(
                    task_id=tid,
                    text=f"t{tid}",
                    num_choices=2,
                    domain_vector=r,
                    ground_truth=truth,
                )
            )
            for worker, quality in workers.items():
                choice = truth if rng.random() < quality else 3 - truth
                answers.append(Answer(worker, tid, choice))
        return tasks, answers

    def test_savings_without_collapse(self):
        tasks, answers = self._world()
        report = savings_report(
            tasks,
            answers,
            ConfidenceStoppingRule(threshold=0.97, min_answers=3),
            TruthInference(),
        )
        # A strong crowd means most tasks resolve early: real savings...
        assert report.saved_fraction > 0.3
        # ...without giving up much accuracy.
        assert report.accuracy_stopped >= report.accuracy_full - 0.05
        assert report.needed_answers < report.total_answers

    def test_strict_rule_saves_nothing(self):
        tasks, answers = self._world()
        report = savings_report(
            tasks,
            answers,
            ConfidenceStoppingRule(threshold=0.999999, min_answers=10),
            TruthInference(),
        )
        assert report.saved_fraction == pytest.approx(0.0)
