"""Tests for Domain Vector Estimation (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dve import (
    DomainVectorEstimator,
    EntityLinking,
    domain_vector,
    domain_vector_enumeration,
    enumeration_linking_count,
)
from repro.errors import ValidationError, WorkBudgetExceeded
from repro.linking import EntityLinker


def paper_entities():
    """The exact Table 2 inputs (Michael Jordan / NBA / Kobe Bryant)."""
    e1 = EntityLinking(
        probabilities=np.array([0.7, 0.2, 0.1]),
        indicators=np.array([[0, 1, 1], [0, 0, 0], [0, 0, 1]]),
    )
    e2 = EntityLinking(
        probabilities=np.array([0.8, 0.2]),
        indicators=np.array([[0, 1, 0], [0, 0, 0]]),
    )
    e3 = EntityLinking(
        probabilities=np.array([1.0]),
        indicators=np.array([[0, 1, 0]]),
    )
    return [e1, e2, e3]


class TestPaperExample:
    def test_paper_table2_example(self):
        """Section 3's worked example: r_t = [0, 0.78, 0.22]."""
        r = domain_vector(paper_entities())
        assert r[0] == pytest.approx(0.0)
        assert r[1] == pytest.approx(0.78, abs=0.005)
        assert r[2] == pytest.approx(0.22, abs=0.005)

    def test_figure2_intermediate_value(self):
        """Figure 2 computes r_t2 = 0.78 explicitly."""
        r = domain_vector(paper_entities())
        # 3/4*0.56 + 2/3*0.22 + 2/2*0.16 + 1/1*0.04 + 1/2*0.02
        expected = (
            0.75 * 0.56 + (2 / 3) * 0.22 + 1.0 * 0.16 + 1.0 * 0.04
            + 0.5 * 0.02
        )
        assert r[1] == pytest.approx(expected)

    def test_enumeration_agrees_on_paper_example(self):
        np.testing.assert_allclose(
            domain_vector(paper_entities()),
            domain_vector_enumeration(paper_entities()),
        )


def random_entities(draw):
    """Hypothesis helper: a random small entity list."""
    num_entities = draw(st.integers(min_value=1, max_value=4))
    num_domains = draw(st.integers(min_value=1, max_value=4))
    entities = []
    for _ in range(num_entities):
        num_candidates = draw(st.integers(min_value=1, max_value=3))
        weights = [
            draw(st.floats(min_value=0.05, max_value=1.0))
            for _ in range(num_candidates)
        ]
        total = sum(weights)
        probs = np.array([w / total for w in weights])
        indicators = np.array(
            [
                [
                    draw(st.integers(min_value=0, max_value=1))
                    for _ in range(num_domains)
                ]
                for _ in range(num_candidates)
            ]
        )
        entities.append(
            EntityLinking(probabilities=probs, indicators=indicators)
        )
    return entities


class TestAlgorithmEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_algorithm1_equals_enumeration(self, data):
        """Algorithm 1 computes exactly Eq. 1 — the property the whole
        DVE module rests on."""
        entities = random_entities(data.draw)
        np.testing.assert_allclose(
            domain_vector(entities),
            domain_vector_enumeration(entities),
            atol=1e-10,
        )

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_mass_at_most_one(self, data):
        entities = random_entities(data.draw)
        r = domain_vector(entities)
        assert np.all(r >= -1e-12)
        assert r.sum() <= 1.0 + 1e-9


class TestInputValidation:
    def test_empty_entities_rejected(self):
        with pytest.raises(ValidationError):
            domain_vector([])

    def test_unnormalised_probabilities_rejected(self):
        bad = EntityLinking(
            probabilities=np.array([0.5, 0.2]),
            indicators=np.zeros((2, 3)),
        )
        with pytest.raises(ValidationError):
            domain_vector([bad])

    def test_non_binary_indicators_rejected(self):
        bad = EntityLinking(
            probabilities=np.array([1.0]),
            indicators=np.array([[0.5, 0.0]]),
        )
        with pytest.raises(ValidationError):
            domain_vector([bad])

    def test_misaligned_shapes_rejected(self):
        bad = EntityLinking(
            probabilities=np.array([1.0]),
            indicators=np.zeros((2, 3)),
        )
        with pytest.raises(ValidationError):
            domain_vector([bad])

    def test_inconsistent_domain_width_rejected(self):
        a = EntityLinking(np.array([1.0]), np.zeros((1, 3), dtype=int))
        b = EntityLinking(np.array([1.0]), np.zeros((1, 4), dtype=int))
        with pytest.raises(ValidationError):
            domain_vector([a, b])


class TestEnumerationBudget:
    def test_linking_count(self):
        assert enumeration_linking_count(paper_entities()) == 6

    def test_budget_enforced(self):
        with pytest.raises(WorkBudgetExceeded):
            domain_vector_enumeration(paper_entities(), work_limit=5)

    def test_budget_allows_exact_fit(self):
        domain_vector_enumeration(paper_entities(), work_limit=6)

    def test_all_zero_linkings_drop_mass(self):
        entity = EntityLinking(
            probabilities=np.array([0.5, 0.5]),
            indicators=np.array([[0, 0], [1, 0]]),
        )
        r = domain_vector([entity])
        # Half the mass links to an all-zero indicator and is dropped.
        assert r.sum() == pytest.approx(0.5)


class TestDomainVectorEstimator:
    def test_end_to_end_with_linker(self, paper_kb):
        linker = EntityLinker(paper_kb)
        estimator = DomainVectorEstimator(linker, paper_kb.num_domains)
        r = estimator.estimate(
            "Does Michael Jordan win more NBA championships than "
            "Kobe Bryant?"
        )
        assert r.sum() == pytest.approx(1.0)
        assert int(np.argmax(r)) == 1  # sports

    def test_no_entities_uniform(self, paper_kb):
        linker = EntityLinker(paper_kb)
        estimator = DomainVectorEstimator(linker, 3)
        np.testing.assert_allclose(
            estimator.estimate("nothing here"), [1 / 3] * 3
        )

    def test_all_zero_evidence_uniform(self):
        entity = EntityLinking(
            probabilities=np.array([1.0]),
            indicators=np.zeros((1, 3), dtype=int),
        )
        estimator = DomainVectorEstimator(linker=None, num_domains=3)
        np.testing.assert_allclose(
            estimator.estimate_from_entities([entity]), [1 / 3] * 3
        )

    def test_renormalises_dropped_mass(self):
        entity = EntityLinking(
            probabilities=np.array([0.5, 0.5]),
            indicators=np.array([[1, 0, 0], [0, 0, 0]]),
        )
        estimator = DomainVectorEstimator(linker=None, num_domains=3)
        r = estimator.estimate_from_entities([entity])
        np.testing.assert_allclose(r, [1.0, 0.0, 0.0])

    def test_invalid_num_domains(self):
        with pytest.raises(ValidationError):
            DomainVectorEstimator(linker=None, num_domains=0)
