"""Tests for the linear top-k selection."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ValidationError
from repro.utils.topk import top_k_indices


class TestTopKIndices:
    def test_basic_selection(self):
        values = [1.0, 5.0, 3.0, 4.0]
        np.testing.assert_array_equal(
            top_k_indices(values, 2), [1, 3]
        )

    def test_full_selection_sorted(self):
        values = [2.0, 9.0, 4.0]
        np.testing.assert_array_equal(
            top_k_indices(values, 3), [1, 2, 0]
        )

    def test_k_zero(self):
        assert top_k_indices([1.0, 2.0], 0).size == 0

    def test_k_too_large_rejected(self):
        with pytest.raises(ValidationError):
            top_k_indices([1.0], 2)

    def test_negative_k_rejected(self):
        with pytest.raises(ValidationError):
            top_k_indices([1.0], -1)

    def test_ties_break_by_index(self):
        values = [5.0, 5.0, 5.0, 1.0]
        np.testing.assert_array_equal(
            top_k_indices(values, 2), [0, 1]
        )

    def test_single_element(self):
        np.testing.assert_array_equal(top_k_indices([7.0], 1), [0])

    @given(
        st.lists(
            st.floats(
                min_value=-1e6,
                max_value=1e6,
                allow_nan=False,
            ),
            min_size=1,
            max_size=50,
        ),
        st.data(),
    )
    def test_matches_argsort(self, values, data):
        k = data.draw(st.integers(min_value=0, max_value=len(values)))
        selected = top_k_indices(values, k)
        arr = np.asarray(values)
        # The selected values must be the k largest (as a multiset).
        expected = np.sort(arr)[::-1][:k]
        np.testing.assert_allclose(
            np.sort(arr[selected])[::-1], expected
        )
        # And reported in non-increasing order.
        assert all(
            arr[selected[i]] >= arr[selected[i + 1]] - 1e-12
            for i in range(len(selected) - 1)
        )
