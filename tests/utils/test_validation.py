"""Tests for validation helpers."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.validation import (
    require_choice_index,
    require_distribution,
    require_in_unit_interval,
    require_non_negative,
    require_positive,
)


class TestRequirePositive:
    def test_accepts(self):
        assert require_positive(3, "x") == 3

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            require_positive(0, "x")


class TestRequireNonNegative:
    def test_accepts_zero(self):
        assert require_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            require_non_negative(-0.1, "x")


class TestRequireUnitInterval:
    def test_accepts_bounds(self):
        assert require_in_unit_interval(0.0, "x") == 0.0
        assert require_in_unit_interval(1.0, "x") == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValidationError):
            require_in_unit_interval(1.01, "x")


class TestRequireDistribution:
    def test_accepts(self):
        out = require_distribution([0.5, 0.5], "d")
        assert isinstance(out, np.ndarray)

    def test_rejects(self):
        with pytest.raises(ValidationError):
            require_distribution([0.5, 0.4], "d")


class TestRequireChoiceIndex:
    def test_accepts_one_based(self):
        assert require_choice_index(1, 2, "v") == 1
        assert require_choice_index(2, 2, "v") == 2

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            require_choice_index(0, 2, "v")

    def test_rejects_above(self):
        with pytest.raises(ValidationError):
            require_choice_index(3, 2, "v")
