"""Tests for the text utilities."""

import pytest

from repro.utils.text import (
    STOPWORDS,
    content_tokens,
    cosine_similarity,
    jaccard_similarity,
    ngrams,
    term_frequencies,
    tokenize,
)


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Stephen Curry") == ["stephen", "curry"]

    def test_strips_punctuation(self):
        assert tokenize("Is Stephen Curry a PF?") == [
            "is", "stephen", "curry", "a", "pf",
        ]

    def test_keeps_apostrophes_and_digits(self):
        assert tokenize("O'Neal scored 61") == ["o'neal", "scored", "61"]

    def test_empty(self):
        assert tokenize("") == []


class TestContentTokens:
    def test_removes_stopwords(self):
        tokens = content_tokens("Is the engine of the car fast")
        assert "the" not in tokens
        assert "engine" in tokens

    def test_all_stopwords(self):
        assert content_tokens("is the a an") == []


class TestJaccard:
    def test_identical(self):
        assert jaccard_similarity("a b c", "a b c") == 1.0

    def test_disjoint(self):
        assert jaccard_similarity("a b", "c d") == 0.0

    def test_partial(self):
        # {compare, height} vs {compare, weight}: 1 shared of 3 total.
        assert jaccard_similarity(
            "compare height", "compare weight"
        ) == pytest.approx(1 / 3)

    def test_paper_motivating_example(self):
        # High surface similarity, different true domains (Section 1).
        players = "Compare the height of Stephen Curry and Kobe Bryant."
        mountains = "Compare the height of Mount Everest and K2."
        assert jaccard_similarity(players, mountains) > 0.3

    def test_both_empty(self):
        assert jaccard_similarity("", "") == 1.0

    def test_one_empty(self):
        assert jaccard_similarity("a", "") == 0.0


class TestCosine:
    def test_identical_bags(self):
        assert cosine_similarity(["a", "b"], ["a", "b"]) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_similarity(["a"], ["b"]) == 0.0

    def test_empty(self):
        assert cosine_similarity([], ["a"]) == 0.0

    def test_frequency_weighting(self):
        high = cosine_similarity(["a", "a", "b"], ["a", "a", "c"])
        low = cosine_similarity(["a", "b", "b"], ["a", "c", "c"])
        assert high > low


class TestNgrams:
    def test_longest_first_at_each_start(self):
        grams = list(ngrams(["a", "b", "c"], max_n=2))
        # At start 0 the bigram precedes the unigram.
        assert grams[0] == (0, 2, "a b")
        assert grams[1] == (0, 1, "a")

    def test_respects_bounds(self):
        grams = list(ngrams(["a", "b"], max_n=5))
        lengths = {g[1] for g in grams}
        assert lengths == {1, 2}


class TestTermFrequencies:
    def test_counts(self):
        assert term_frequencies(["a", "b", "a"]) == {"a": 2, "b": 1}

    def test_empty(self):
        assert term_frequencies([]) == {}
