"""Tests for repro.utils.math."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ValidationError
from repro.utils.math import (
    entropy,
    entropy_unchecked,
    is_distribution,
    kl_divergence,
    normalize,
    safe_log,
    uniform_distribution,
)


class TestEntropy:
    def test_uniform_is_maximal(self):
        assert entropy([0.5, 0.5]) == pytest.approx(np.log(2))

    def test_point_mass_is_zero(self):
        assert entropy([1.0, 0.0]) == pytest.approx(0.0)

    def test_zero_entries_contribute_nothing(self):
        assert entropy([0.5, 0.5, 0.0]) == pytest.approx(np.log(2))

    def test_known_value(self):
        # H([0.25, 0.75]) = -0.25 ln 0.25 - 0.75 ln 0.75
        expected = -0.25 * np.log(0.25) - 0.75 * np.log(0.75)
        assert entropy([0.25, 0.75]) == pytest.approx(expected)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            entropy([])

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            entropy([-0.5, 1.5])

    def test_rejects_non_normalised(self):
        with pytest.raises(ValidationError):
            entropy([0.3, 0.3])

    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=10.0),
            min_size=2,
            max_size=8,
        )
    )
    def test_entropy_bounds(self, weights):
        dist = normalize(weights)
        h = entropy(dist)
        assert -1e-9 <= h <= np.log(len(weights)) + 1e-9

    def test_unchecked_matches_checked(self):
        dist = np.array([0.2, 0.3, 0.5])
        assert entropy_unchecked(dist) == pytest.approx(entropy(dist))


class TestKlDivergence:
    def test_identical_distributions_zero(self):
        p = np.array([0.3, 0.7])
        assert kl_divergence(p, p) == pytest.approx(0.0)

    def test_known_value(self):
        p = np.array([0.5, 0.5])
        q = np.array([0.25, 0.75])
        expected = 0.5 * np.log(2) + 0.5 * np.log(0.5 / 0.75)
        assert kl_divergence(p, q) == pytest.approx(expected)

    def test_zero_sigma_terms_ignored(self):
        assert kl_divergence([0.0, 1.0], [0.5, 0.5]) == pytest.approx(
            np.log(2)
        )

    def test_infinite_when_support_mismatch(self):
        assert kl_divergence([0.5, 0.5], [1.0, 0.0]) == float("inf")

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValidationError):
            kl_divergence([0.5, 0.5], [1.0])

    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=10.0),
            min_size=2,
            max_size=6,
        ),
        st.lists(
            st.floats(min_value=0.01, max_value=10.0),
            min_size=2,
            max_size=6,
        ),
    )
    def test_non_negative(self, w1, w2):
        size = min(len(w1), len(w2))
        p = normalize(w1[:size])
        q = normalize(w2[:size])
        assert kl_divergence(p, q) >= -1e-9


class TestNormalize:
    def test_basic(self):
        np.testing.assert_allclose(
            normalize([1.0, 3.0]), [0.25, 0.75]
        )

    def test_rejects_all_zero(self):
        with pytest.raises(ValidationError):
            normalize([0.0, 0.0])

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            normalize([-1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            normalize([])

    @given(
        st.lists(
            st.floats(min_value=0.001, max_value=100.0),
            min_size=1,
            max_size=10,
        )
    )
    def test_result_is_distribution(self, weights):
        assert is_distribution(normalize(weights))


class TestUniformDistribution:
    def test_values(self):
        np.testing.assert_allclose(uniform_distribution(4), [0.25] * 4)

    def test_rejects_non_positive(self):
        with pytest.raises(ValidationError):
            uniform_distribution(0)


class TestSafeLog:
    def test_zero_maps_to_huge_negative(self):
        assert safe_log(np.array([0.0]))[0] < -600

    def test_positive_matches_log(self):
        assert safe_log(np.array([2.0]))[0] == pytest.approx(np.log(2))

    def test_x_log_x_at_zero(self):
        x = np.array([0.0, 0.5])
        product = x * safe_log(x)
        assert product[0] == 0.0


class TestIsDistribution:
    def test_accepts_valid(self):
        assert is_distribution([0.5, 0.5])

    def test_rejects_unnormalised(self):
        assert not is_distribution([0.5, 0.2])

    def test_rejects_empty(self):
        assert not is_distribution([])
