"""Tests for deterministic RNG streams."""

import numpy as np
import pytest

from repro.utils.rng import make_rng, spawn_rngs


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42).integers(0, 1000, size=10)
        b = make_rng(42).integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 1000, size=10)
        b = make_rng(2).integers(0, 1000, size=10)
        assert not np.array_equal(a, b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen


class TestSpawnRngs:
    def test_children_are_independent(self):
        children = spawn_rngs(7, 3)
        draws = [c.integers(0, 10**9) for c in children]
        assert len(set(draws)) == 3

    def test_deterministic(self):
        a = [g.integers(0, 10**9) for g in spawn_rngs(7, 3)]
        b = [g.integers(0, 10**9) for g in spawn_rngs(7, 3)]
        assert a == b

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
