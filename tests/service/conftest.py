"""Shared fixtures for the service suites: a live in-thread server
speaking real HTTP over a real socket, plus a tiny JSON client."""

import json
import urllib.error
import urllib.request

import pytest

from repro.datasets import make_dataset
from repro.service import DocsService, InThreadServer, ServiceConfig


class JsonClient:
    """status/body/header access over urllib (stdlib only)."""

    def __init__(self, base_url: str):
        self.base_url = base_url

    def request(self, method, path, body=None, raw=None):
        data = raw
        if body is not None:
            data = json.dumps(body).encode("utf-8")
        req = urllib.request.Request(
            self.base_url + path, data=data, method=method
        )
        if data is not None:
            req.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(req, timeout=30) as resp:
                return (
                    resp.status,
                    json.loads(resp.read()),
                    dict(resp.headers),
                )
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read()), dict(err.headers)

    def get(self, path):
        return self.request("GET", path)

    def post(self, path, body=None, raw=None):
        return self.request("POST", path, body=body, raw=raw)

    def delete(self, path):
        return self.request("DELETE", path)


@pytest.fixture()
def dataset():
    return make_dataset("4d", seed=11, tasks_per_domain=6)


def start_service(tmp_path=None, **config_kwargs):
    if tmp_path is not None:
        config_kwargs.setdefault("db_dir", str(tmp_path))
    app = DocsService(ServiceConfig(**config_kwargs))
    server = InThreadServer(app).start()
    return app, server, JsonClient(server.base_url)


@pytest.fixture()
def service():
    """In-memory service: (app, client). Stops cleanly on teardown."""
    app, server, client = start_service()
    yield app, client
    server.stop()


@pytest.fixture()
def durable_service(tmp_path):
    """SQLite-backed service rooted in tmp_path: (app, client)."""
    app, server, client = start_service(tmp_path=tmp_path)
    yield app, client
    server.stop()


CAMPAIGN_BODY = {
    "name": "c1",
    "dataset": "4d",
    "seed": 11,
    "config": {
        "golden_count": 4,
        "hit_size": 3,
        "rerun_interval": 50,
    },
    "dataset_overrides": {"tasks_per_domain": 6},
}


def create_campaign(client, **overrides):
    body = {**CAMPAIGN_BODY, **overrides}
    status, payload, _ = client.post("/campaigns", body)
    assert status == 201, payload
    return payload


def bootstrap_worker(client, dataset, worker_id, name="c1"):
    status, payload, _ = client.get(f"/campaigns/{name}/golden")
    assert status == 200, payload
    answers = [
        {
            "task_id": task_id,
            "choice": dataset.task_by_id(task_id).ground_truth,
        }
        for task_id in payload["golden_task_ids"]
    ]
    status, payload, _ = client.post(
        f"/campaigns/{name}/workers/{worker_id}/bootstrap",
        {"answers": answers},
    )
    assert status == 200, payload
    return payload
