"""The campaign-create ``engine`` field: any registry engine over HTTP.

A campaign may host any engine from :mod:`repro.engines`. Hot-state
surfaces (digest, worker quality vectors) degrade to ``null`` for
engines without the capability; everything else — assignment, answers,
truths, finalize — serves identically.
"""

import pytest

from tests.service.conftest import create_campaign, start_service


@pytest.fixture()
def service():
    app, server, client = start_service()
    yield app, client
    server.stop()


class TestEngineField:
    def test_default_campaign_reports_docs_engine(self, service):
        _, client = service
        body = create_campaign(client)
        assert body["engine"] == "docs"
        status, body, _ = client.get("/campaigns/c1")
        assert status == 200
        assert body["engine"] == "docs"
        assert isinstance(body["hot_state_digest"], str)

    def test_unknown_engine_rejected_with_registry(self, service):
        _, client = service
        status, payload, _ = client.post(
            "/campaigns",
            {"name": "c2", "dataset": "4d", "engine": "nope"},
        )
        assert status == 400
        message = payload["error"]["message"]
        assert "nope" in message
        assert "docs" in message  # the error lists registered engines

    def test_non_string_engine_rejected(self, service):
        _, client = service
        status, payload, _ = client.post(
            "/campaigns",
            {"name": "c2", "dataset": "4d", "engine": 7},
        )
        assert status == 400
        assert payload["error"]["type"] == "validation"

    def test_baseline_engine_campaign_end_to_end(self, service):
        """A memory-only baseline through the full HTTP lifecycle."""
        _, client = service
        body = create_campaign(client, name="base", engine="random")
        assert body["engine"] == "random"
        # No golden pre-test: workers assign immediately.
        assert body["golden_task_ids"] == []
        status, body, _ = client.get("/campaigns/base")
        assert status == 200
        assert body["hot_state_digest"] is None

        status, body, _ = client.get(
            "/campaigns/base/workers/w0/assignment?k=3"
        )
        assert status == 200
        task_ids = body["task_ids"]
        assert task_ids

        for task_id in task_ids:
            status, body, _ = client.post(
                "/campaigns/base/answers",
                {"worker_id": "w0", "task_id": task_id, "choice": 1},
            )
            assert status == 200, body
            assert body["accepted"] is True

        status, body, _ = client.get("/campaigns/base/workers/w0")
        assert status == 200
        assert body["quality"] is None  # no hot worker model
        assert body["tasks_answered"] == len(task_ids)

        status, body, _ = client.post("/campaigns/base/finalize")
        assert status == 200, body
        assert len(body["truths"]) == 24  # every task gets a verdict

    def test_duplicate_answer_still_rejected(self, service):
        _, client = service
        create_campaign(client, name="base", engine="random")
        status, body, _ = client.get(
            "/campaigns/base/workers/w0/assignment?k=1"
        )
        task_id = body["task_ids"][0]
        answer = {"worker_id": "w0", "task_id": task_id, "choice": 1}
        status, _, _ = client.post("/campaigns/base/answers", answer)
        assert status == 200
        status, payload, _ = client.post(
            "/campaigns/base/answers", answer
        )
        assert status == 400
        assert payload["error"]["type"] == "validation"
