"""Concurrency properties of the request scheduler.

The three invariants the serving plane promises:

1. the bounded arrival queue never exceeds its limit, no matter how
   hard concurrent clients push;
2. submit coalescing preserves per-worker submit order;
3. a saturated queue refuses with 429 — and refusal is the *only*
   way an answer is lost: every accepted (2xx-acked) answer is in the
   journal's committed rows afterwards.
"""

import threading

import pytest

from repro.service import DocsService, QueueFullError, ServiceConfig
from repro.service.http import InThreadServer

from tests.service.conftest import (
    JsonClient,
    bootstrap_worker,
    create_campaign,
)


def _start(tmp_path=None, **kwargs):
    config_kwargs = dict(kwargs)
    if tmp_path is not None:
        config_kwargs["db_dir"] = str(tmp_path)
    app = DocsService(ServiceConfig(**config_kwargs))
    server = InThreadServer(app).start()
    return app, server, JsonClient(server.base_url)


def _prepare_workers(client, dataset, workers, name="c1"):
    create_campaign(client)
    for worker in workers:
        bootstrap_worker(client, dataset, worker, name=name)


class TestBoundedQueue:
    def test_depth_never_exceeds_limit_under_burst(self, dataset):
        app, server, client = _start(queue_limit=8)
        try:
            _prepare_workers(client, dataset, ["w1"])
            app.scheduler.pause()
            accepted, rejected = 0, 0
            # Far more submits than capacity, from the caller side of
            # the queue: the atomic check-and-append must cap depth.
            for task_id in range(100):
                try:
                    app.submit(
                        "c1",
                        {
                            "worker_id": "w1",
                            "task_id": task_id,
                            "choice": 1,
                        },
                    )
                except QueueFullError as err:
                    rejected += 1
                    assert err.retry_after > 0
                else:
                    accepted += 1
                assert app.scheduler.depth() <= 8
            assert accepted == 8
            assert rejected == 92
            assert app.scheduler.metrics()["max_depth"] <= 8
            app.scheduler.resume_consumer()
        finally:
            server.stop()

    def test_burst_of_concurrent_http_submits(self, dataset):
        """Threaded HTTP clients: every request resolves to exactly
        one of {2xx accepted, 4xx refused}; depth stays bounded."""
        app, server, client = _start(queue_limit=8)
        try:
            _prepare_workers(client, dataset, ["w1"])
            app.scheduler.pause()
            results = []
            lock = threading.Lock()

            def fire(task_id):
                status, body, headers = client.post(
                    "/campaigns/c1/answers",
                    {
                        "worker_id": "w1",
                        "task_id": task_id,
                        "choice": 1,
                    },
                )
                with lock:
                    results.append((status, body, headers))

            threads = [
                threading.Thread(target=fire, args=(tid,))
                for tid in range(30)
            ]
            for thread in threads:
                thread.start()
            # Let the burst land against the paused consumer, then
            # release it so queued submits complete.
            deadline = threading.Event()
            deadline.wait(0.5)
            assert app.scheduler.depth() <= 8
            app.scheduler.resume_consumer()
            for thread in threads:
                thread.join(timeout=30)
            statuses = sorted(s for s, _, _ in results)
            assert len(results) == 30
            assert set(statuses) <= {200, 404, 429}
            assert statuses.count(429) >= 1
            assert app.scheduler.metrics()["max_depth"] <= 8
            for status, body, headers in results:
                if status == 429:
                    assert "Retry-After" in headers
                    assert body["error"]["type"] == "queue_full"
        finally:
            server.stop()


class TestCoalescing:
    def test_batches_preserve_per_worker_order(self, dataset):
        app, server, client = _start(
            queue_limit=256, coalesce_max=32
        )
        try:
            workers = ["w1", "w2", "w3"]
            _prepare_workers(client, dataset, workers)
            system = app._campaigns["c1"].system
            task_ids = [
                t.task_id for t in system.database.tasks()
            ]
            app.scheduler.pause()
            sent = {w: [] for w in workers}
            futures = []
            # Interleave submits across workers; each worker answers
            # a distinct task sequence.
            for index, task_id in enumerate(task_ids):
                worker = workers[index % len(workers)]
                futures.append(
                    app.submit(
                        "c1",
                        {
                            "worker_id": worker,
                            "task_id": task_id,
                            "choice": 1,
                        },
                    )
                )
                sent[worker].append(task_id)
            app.scheduler.resume_consumer()
            for future in futures:
                status, body, _ = future.result(timeout=30)
                assert status == 200, body
            # Coalescing actually happened: fewer executor batches
            # than submits.
            batches = app.scheduler.metrics()["batches"]["submit"]
            assert 1 <= batches < len(task_ids)
            # And per-worker arrival order survived it.
            for worker in workers:
                stored = [
                    a.task_id
                    for a in system.database.answers.for_worker(
                        worker
                    )
                ]
                assert stored == sent[worker]
        finally:
            server.stop()


class TestNoAcceptedAnswerLost:
    def test_acked_answers_all_reach_committed_journal(
        self, dataset, tmp_path
    ):
        """Saturate a tiny queue over HTTP; afterwards, every acked
        answer must appear in ``committed_answers_through`` — 429s
        refuse work, they never drop accepted work."""
        app, server, client = _start(
            tmp_path=tmp_path, queue_limit=6
        )
        try:
            workers = ["w1", "w2"]
            _prepare_workers(client, dataset, workers)
            system = app._campaigns["c1"].system
            task_ids = app.scheduler.submit_request(
                "control",
                None,
                run=lambda: [
                    t.task_id for t in system.database.tasks()
                ],
                force=True,
            ).result(timeout=30)
            acked = []
            lock = threading.Lock()
            rejected = [0]

            def fire(worker, task_id):
                status, body, _ = client.post(
                    "/campaigns/c1/answers",
                    {
                        "worker_id": worker,
                        "task_id": task_id,
                        "choice": 1,
                    },
                )
                with lock:
                    if status == 200:
                        assert body["accepted"] is True
                        assert body["durable"] is True
                        acked.append((worker, task_id))
                    else:
                        assert status == 429
                        rejected[0] += 1

            threads = [
                threading.Thread(target=fire, args=(w, tid))
                for w in workers
                for tid in task_ids
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert len(acked) + rejected[0] == len(threads)
            assert len(acked) >= 1  # the run did accept work

            journal = system.database.journal

            def read_journal():
                # Runs on the scheduler thread — SQLite connections
                # are thread-affine.
                rows = journal.committed_answers_through(
                    journal.last_committed_seq
                )
                return journal.pending, rows

            pending, rows = app.scheduler.submit_request(
                "control", None, run=read_journal, force=True
            ).result(timeout=30)
            # The ack contract: acked => already flushed; nothing
            # should be pending once all submit futures resolved.
            assert pending == 0
            committed = {
                (worker_id, task_id)
                for _seq, _row, task_id, worker_id, _choice in rows
            }
            for pair in acked:
                assert pair in committed, pair
            # And refusals truly refused: committed real answers ==
            # acked answers exactly.
            assert len(committed) == len(acked)
        finally:
            server.stop()


class TestHealthUnderSaturation:
    def test_healthz_answers_while_queue_is_full(self, dataset):
        app, server, client = _start(queue_limit=4)
        try:
            _prepare_workers(client, dataset, ["w1"])
            app.scheduler.pause()
            for task_id in range(4):
                app.submit(
                    "c1",
                    {
                        "worker_id": "w1",
                        "task_id": task_id,
                        "choice": 1,
                    },
                )
            with pytest.raises(QueueFullError):
                app.submit(
                    "c1",
                    {
                        "worker_id": "w1",
                        "task_id": 99,
                        "choice": 1,
                    },
                )
            # The health endpoint bypasses the queue entirely.
            status, body, _ = client.get("/healthz")
            assert status == 200
            assert body["queue"] == {"depth": 4, "limit": 4}
            app.scheduler.resume_consumer()
        finally:
            server.stop()
