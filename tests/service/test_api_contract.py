"""API contract: every endpoint, success and failure shapes.

Response schemas are asserted field-by-field, and every error body
must carry ``{"error": {"type", "message"}}`` with a message naming
the remediation — the HTTP rendering of the library's ``ReproError``
message discipline.
"""

import pytest

from tests.service.conftest import bootstrap_worker, create_campaign


def assert_error(payload, kind, *needles):
    assert set(payload) == {"error"}
    error = payload["error"]
    assert set(error) == {"type", "message"}
    assert error["type"] == kind
    for needle in needles:
        assert needle in error["message"], (needle, error["message"])


class TestHealthAndMetrics:
    def test_healthz_shape(self, service):
        _, client = service
        status, body, _ = client.get("/healthz")
        assert status == 200
        assert set(body) == {
            "status",
            "campaigns",
            "degraded_campaigns",
            "queue",
        }
        assert body["status"] == "ok"
        assert body["campaigns"] == 0
        assert body["degraded_campaigns"] == []
        assert set(body["queue"]) == {"depth", "limit"}

    def test_metricsz_shape(self, service):
        _, client = service
        status, body, _ = client.get("/metricsz")
        assert status == 200
        assert set(body) == {"scheduler", "campaigns"}
        scheduler = body["scheduler"]
        for key in (
            "queue_depth",
            "queue_limit",
            "max_depth",
            "rejected_429",
            "enqueued",
            "completed",
            "errored",
            "batches",
            "latency",
        ):
            assert key in scheduler


class TestCampaignLifecycle:
    def test_create_success_schema(self, service):
        _, client = service
        body = create_campaign(client)
        for key in (
            "name",
            "dataset",
            "seed",
            "storage",
            "path",
            "shared_store",
            "tasks",
            "golden_count",
            "accepted_answers",
            "durability",
            "golden_task_ids",
        ):
            assert key in body, key
        assert body["name"] == "c1"
        assert body["dataset"] == "4d"
        assert body["storage"] == "memory"
        assert body["tasks"] == 24
        assert body["golden_count"] == 4
        assert len(body["golden_task_ids"]) == 4
        assert body["accepted_answers"] == 0

    def test_create_duplicate_conflict(self, service):
        _, client = service
        create_campaign(client)
        status, payload, _ = client.post(
            "/campaigns", {"name": "c1", "dataset": "4d"}
        )
        assert status == 409
        assert_error(payload, "conflict", "c1", "DELETE")

    def test_create_bad_name_validation(self, service):
        _, client = service
        status, payload, _ = client.post(
            "/campaigns", {"name": "bad name!", "dataset": "4d"}
        )
        assert status == 400
        assert_error(payload, "validation", "bad name!")

    def test_create_unknown_dataset_validation(self, service):
        _, client = service
        status, payload, _ = client.post(
            "/campaigns", {"name": "c2", "dataset": "nope"}
        )
        assert status == 400
        assert_error(payload, "validation", "nope", "expected one of")

    def test_create_unknown_config_field_validation(self, service):
        _, client = service
        status, payload, _ = client.post(
            "/campaigns",
            {
                "name": "c2",
                "dataset": "4d",
                "config": {"golden_cuont": 4},
            },
        )
        assert status == 400
        assert_error(payload, "validation", "golden_cuont")

    def test_create_sqlite_without_db_dir_validation(self, service):
        _, client = service
        status, payload, _ = client.post(
            "/campaigns",
            {"name": "c2", "dataset": "4d", "storage": "sqlite"},
        )
        assert status == 400
        assert_error(payload, "validation", "--db-dir")

    def test_list_campaigns(self, service):
        _, client = service
        create_campaign(client)
        create_campaign(client, name="c2")
        status, body, _ = client.get("/campaigns")
        assert status == 200
        names = [c["name"] for c in body["campaigns"]]
        assert names == ["c1", "c2"]

    def test_get_campaign_includes_digest(self, service):
        _, client = service
        create_campaign(client)
        status, body, _ = client.get("/campaigns/c1")
        assert status == 200
        digest = body["hot_state_digest"]
        assert isinstance(digest, str) and len(digest) == 64

    def test_get_unknown_campaign_not_found(self, service):
        _, client = service
        status, payload, _ = client.get("/campaigns/ghost")
        assert status == 404
        assert_error(payload, "not_found", "ghost", "POST /campaigns")

    def test_delete_then_404(self, service):
        _, client = service
        create_campaign(client)
        status, body, _ = client.delete("/campaigns/c1")
        assert status == 200
        assert body == {"name": "c1", "closed": True}
        status, payload, _ = client.get("/campaigns/c1")
        assert status == 404


class TestTaskUpload:
    def test_add_tasks_success_schema(self, service):
        _, client = service
        created = create_campaign(client)
        # Taxonomy size = the length of any worker's quality vector.
        _, info, _ = client.get("/campaigns/c1/workers/anybody")
        taxonomy = len(info["quality"])
        status, body, _ = client.post(
            "/campaigns/c1/tasks",
            {
                "tasks": [
                    {
                        "task_id": 900,
                        "text": "uploaded over HTTP",
                        "num_choices": 3,
                        "domain_vector": [1.0 / taxonomy] * taxonomy,
                    }
                ]
            },
        )
        assert status == 201, body
        assert set(body) == {
            "campaign",
            "ingested",
            "linked",
            "entities",
            "total_tasks",
        }
        assert body["ingested"] == 1
        assert body["total_tasks"] == created["tasks"] + 1

    def test_add_tasks_empty_validation(self, service):
        _, client = service
        create_campaign(client)
        status, payload, _ = client.post(
            "/campaigns/c1/tasks", {"tasks": []}
        )
        assert status == 400
        assert_error(payload, "validation", "tasks")

    def test_add_tasks_missing_field_validation(self, service):
        _, client = service
        create_campaign(client)
        status, payload, _ = client.post(
            "/campaigns/c1/tasks",
            {"tasks": [{"task_id": 901, "num_choices": 2}]},
        )
        assert status == 400
        assert_error(payload, "validation", "text")

    def test_add_tasks_unknown_campaign(self, service):
        _, client = service
        status, payload, _ = client.post(
            "/campaigns/ghost/tasks",
            {
                "tasks": [
                    {"task_id": 1, "text": "x", "num_choices": 2}
                ]
            },
        )
        assert status == 404
        assert_error(payload, "not_found", "ghost")


class TestWorkers:
    def test_golden_schema(self, service, dataset):
        _, client = service
        created = create_campaign(client)
        status, body, _ = client.get("/campaigns/c1/golden")
        assert status == 200
        assert set(body) == {"campaign", "golden_task_ids"}
        assert body["golden_task_ids"] == created["golden_task_ids"]

    def test_bootstrap_success_schema(self, service, dataset):
        _, client = service
        create_campaign(client)
        body = bootstrap_worker(client, dataset, "w1")
        assert body == {
            "campaign": "c1",
            "worker_id": "w1",
            "bootstrapped": True,
        }

    def test_bootstrap_twice_conflict(self, service, dataset):
        _, client = service
        create_campaign(client)
        bootstrap_worker(client, dataset, "w1")
        status, payload, _ = client.post(
            "/campaigns/c1/workers/w1/bootstrap", {"answers": []}
        )
        assert status == 409
        assert_error(payload, "conflict", "w1", "assignment")

    def test_bootstrap_bad_body_validation(self, service):
        _, client = service
        create_campaign(client)
        status, payload, _ = client.post(
            "/campaigns/c1/workers/w1/bootstrap",
            {"answers": [{"task_id": "one", "choice": 1}]},
        )
        assert status == 400
        assert_error(payload, "validation", "task_id")

    def test_worker_info_schema(self, service, dataset):
        _, client = service
        create_campaign(client)
        bootstrap_worker(client, dataset, "w1")
        status, body, _ = client.get("/campaigns/c1/workers/w1")
        assert status == 200
        assert set(body) == {
            "campaign",
            "worker_id",
            "needs_bootstrap",
            "quality",
            "tasks_answered",
        }
        assert body["needs_bootstrap"] is False
        assert isinstance(body["quality"], list)
        assert all(0.0 <= q <= 1.0 for q in body["quality"])

    def test_assignment_success_schema(self, service, dataset):
        _, client = service
        create_campaign(client)
        bootstrap_worker(client, dataset, "w1")
        status, body, _ = client.get(
            "/campaigns/c1/workers/w1/assignment?k=3"
        )
        assert status == 200
        assert set(body) == {"campaign", "worker_id", "task_ids"}
        assert body["worker_id"] == "w1"
        assert len(body["task_ids"]) == 3

    def test_assignment_unknown_worker_not_found(self, service):
        _, client = service
        create_campaign(client)
        status, payload, _ = client.get(
            "/campaigns/c1/workers/ghost/assignment?k=3"
        )
        assert status == 404
        assert_error(payload, "not_found", "ghost", "bootstrap")

    def test_assignment_bad_k_validation(self, service, dataset):
        _, client = service
        create_campaign(client)
        bootstrap_worker(client, dataset, "w1")
        status, payload, _ = client.get(
            "/campaigns/c1/workers/w1/assignment?k=zero"
        )
        assert status == 400
        assert_error(payload, "validation", "k")


class TestAnswers:
    def _prepare(self, client, dataset):
        create_campaign(client)
        bootstrap_worker(client, dataset, "w1")
        status, body, _ = client.get(
            "/campaigns/c1/workers/w1/assignment?k=3"
        )
        assert status == 200
        return body["task_ids"]

    def test_submit_success_schema(self, service, dataset):
        _, client = service
        task_ids = self._prepare(client, dataset)
        status, body, _ = client.post(
            "/campaigns/c1/answers",
            {"worker_id": "w1", "task_id": task_ids[0], "choice": 1},
        )
        assert status == 200
        assert set(body) == {
            "campaign",
            "worker_id",
            "task_id",
            "accepted",
            "durable",
        }
        assert body["accepted"] is True

    def test_submit_duplicate_validation(self, service, dataset):
        _, client = service
        task_ids = self._prepare(client, dataset)
        answer = {
            "worker_id": "w1",
            "task_id": task_ids[0],
            "choice": 1,
        }
        client.post("/campaigns/c1/answers", answer)
        status, payload, _ = client.post(
            "/campaigns/c1/answers", answer
        )
        assert status == 400
        assert_error(payload, "validation", "already answered")

    def test_submit_missing_field_validation(self, service, dataset):
        _, client = service
        self._prepare(client, dataset)
        status, payload, _ = client.post(
            "/campaigns/c1/answers", {"worker_id": "w1", "choice": 1}
        )
        assert status == 400
        assert_error(payload, "validation", "task_id")

    def test_submit_unknown_task_not_found(self, service, dataset):
        _, client = service
        self._prepare(client, dataset)
        status, payload, _ = client.post(
            "/campaigns/c1/answers",
            {"worker_id": "w1", "task_id": 999999, "choice": 1},
        )
        assert status == 404
        assert_error(payload, "not_found", "999999")


class TestInspection:
    def _drive(self, client, dataset):
        create_campaign(client)
        bootstrap_worker(client, dataset, "w1")
        _, body, _ = client.get(
            "/campaigns/c1/workers/w1/assignment?k=3"
        )
        for task_id in body["task_ids"]:
            client.post(
                "/campaigns/c1/answers",
                {"worker_id": "w1", "task_id": task_id, "choice": 1},
            )
        return body["task_ids"]

    def test_truths_schema(self, service, dataset):
        _, client = service
        self._drive(client, dataset)
        status, body, _ = client.get("/campaigns/c1/truths")
        assert status == 200
        assert set(body) == {"campaign", "truths"}
        assert len(body["truths"]) == 24
        assert all(
            isinstance(v, int) for v in body["truths"].values()
        )

    def test_single_truth_schema(self, service, dataset):
        _, client = service
        task_ids = self._drive(client, dataset)
        status, body, _ = client.get(
            f"/campaigns/c1/truths/{task_ids[0]}"
        )
        assert status == 200
        assert body == {
            "campaign": "c1",
            "task_id": task_ids[0],
            "truth": body["truth"],
        }

    def test_unknown_truth_not_found(self, service, dataset):
        _, client = service
        self._drive(client, dataset)
        status, payload, _ = client.get("/campaigns/c1/truths/424242")
        assert status == 404
        assert_error(payload, "not_found", "424242")

    def test_durability_memory_campaign(self, service, dataset):
        _, client = service
        create_campaign(client)
        status, body, _ = client.get("/campaigns/c1/durability")
        assert status == 200
        assert body["campaign"] == "c1"
        assert body["mode"] == "memory"
        assert body["degraded"] is False

    def test_durability_sqlite_campaign(
        self, durable_service, dataset
    ):
        _, client = durable_service
        create_campaign(client)
        status, body, _ = client.get("/campaigns/c1/durability")
        assert status == 200
        assert body["mode"] == "durable"
        assert body["degraded"] is False

    def test_checkpoint_schema(self, durable_service, dataset):
        _, client = durable_service
        self._drive(client, dataset)
        status, body, _ = client.post("/campaigns/c1/checkpoint")
        assert status == 200
        assert body["campaign"] == "c1"
        assert body["flushed"] >= 0

    def test_finalize_schema(self, service, dataset):
        _, client = service
        self._drive(client, dataset)
        status, body, _ = client.post("/campaigns/c1/finalize")
        assert status == 200
        assert set(body) == {"campaign", "truths"}
        assert len(body["truths"]) == 24


class TestAnalytics:
    def _drive(self, client, dataset):
        create_campaign(client)
        bootstrap_worker(client, dataset, "w1")
        _, body, _ = client.get(
            "/campaigns/c1/workers/w1/assignment?k=3"
        )
        for task_id in body["task_ids"]:
            client.post(
                "/campaigns/c1/answers",
                {"worker_id": "w1", "task_id": task_id, "choice": 1},
            )
        return body["task_ids"]

    def test_analytics_success_schema(self, durable_service, dataset):
        _, client = durable_service
        self._drive(client, dataset)
        status, body, _ = client.get(
            "/campaigns/c1/analytics/leaderboard"
        )
        assert status == 200
        assert set(body) == {"campaign", "query", "params", "rows"}
        assert body["campaign"] == "c1"
        assert body["query"] == "leaderboard"
        assert body["params"] == {"limit": 10, "min_graded": 1}
        assert body["rows"], "submitted answers should rank w1"
        assert set(body["rows"][0]) == {
            "rank", "worker", "graded", "correct", "accuracy",
        }
        assert body["rows"][0]["worker"] == "w1"

    def test_analytics_query_params(self, durable_service, dataset):
        _, client = durable_service
        self._drive(client, dataset)
        status, body, _ = client.get(
            "/campaigns/c1/analytics/worker-accuracy?window=2"
        )
        assert status == 200
        assert body["params"] == {"window": 2}
        for row in body["rows"]:
            assert row["window_graded"] <= 2

    def test_analytics_unknown_query_not_found(
        self, durable_service, dataset
    ):
        _, client = durable_service
        self._drive(client, dataset)
        status, payload, _ = client.get(
            "/campaigns/c1/analytics/nope"
        )
        assert status == 404
        assert_error(payload, "not_found", "nope", "leaderboard")

    def test_analytics_bad_param_validation(
        self, durable_service, dataset
    ):
        _, client = durable_service
        self._drive(client, dataset)
        status, payload, _ = client.get(
            "/campaigns/c1/analytics/leaderboard?limit=abc"
        )
        assert status == 400
        assert_error(payload, "validation", "limit")
        status, payload, _ = client.get(
            "/campaigns/c1/analytics/leaderboard?nope=1"
        )
        assert status == 400
        assert_error(payload, "validation", "nope")

    def test_analytics_unknown_campaign_not_found(
        self, durable_service
    ):
        _, client = durable_service
        status, payload, _ = client.get(
            "/campaigns/ghost/analytics/leaderboard"
        )
        assert status == 404
        assert_error(payload, "not_found", "ghost")

    def test_analytics_memory_campaign_validation(
        self, service, dataset
    ):
        _, client = service
        self._drive(client, dataset)
        status, payload, _ = client.get(
            "/campaigns/c1/analytics/leaderboard"
        )
        assert status == 400
        assert_error(payload, "validation", "sqlite")


class TestTransportErrors:
    def test_unknown_route_names_docs(self, service):
        _, client = service
        status, payload, _ = client.get("/nope")
        assert status == 404
        assert_error(payload, "not_found", "docs/api.md")

    def test_wrong_method_lists_allowed(self, service):
        _, client = service
        status, payload, headers = client.delete("/healthz")
        assert status == 405
        assert headers.get("Allow") == "GET"
        assert_error(payload, "validation", "GET")

    def test_malformed_json_validation(self, service):
        _, client = service
        status, payload, _ = client.post(
            "/campaigns", raw=b"{not json"
        )
        assert status == 400
        assert_error(payload, "validation", "not valid JSON")

    @pytest.mark.parametrize(
        "body", ["[]", "\"text\"", "3"]
    )
    def test_non_object_body_validation(self, service, body):
        _, client = service
        status, payload, _ = client.post(
            "/campaigns", raw=body.encode()
        )
        assert status == 400
        assert_error(payload, "validation", "JSON object")
