"""Service kill-and-resume: a server killed mid-load must come back
bit-identical, losing only in-flight unacked submits.

The server subprocess arms a fault point from ``REPRO_SERVE_FAULT``
(a ``<point>[:<skip>]`` spec) and dies there with ``os._exit(137)`` —
the crash-matrix simulation of a SIGKILL inside a journal flush. The
test then resumes the campaign twice — directly in-process, and via a
second ``repro serve --resume`` server — and asserts both see the same
``hot_state_digest``, every acked answer, and none of the unacked
tail.
"""

import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.datasets import make_dataset
from repro.system import DocsConfig, DocsSystem

from tests.service.conftest import JsonClient

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
    "src",
)


def _spawn_server(db_dir, fault=None, resume=False):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if fault:
        env["REPRO_SERVE_FAULT"] = fault
    else:
        env.pop("REPRO_SERVE_FAULT", None)
    argv = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--port",
        "0",
        "--db-dir",
        db_dir,
    ]
    if resume:
        argv.append("--resume")
    proc = subprocess.Popen(
        argv,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    base_url = None
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if line.startswith("serving on "):
            base_url = line.split("serving on ", 1)[1].strip()
            break
    if base_url is None:
        proc.kill()
        raise RuntimeError("server did not start in 60s")
    return proc, JsonClient(base_url)


def _sidecar_config(db_dir, name):
    with open(
        os.path.join(db_dir, f"{name}.meta.json"), encoding="utf-8"
    ) as handle:
        meta = json.load(handle)
    return meta


class TestServiceKillResume:
    def test_kill_mid_flush_resume_bit_identical(self, tmp_path):
        db_dir = str(tmp_path)
        dataset = make_dataset("4d", seed=13, tasks_per_domain=6)
        # Skip the first 3 journal-flush commits, then die inside the
        # 4th — mid-load, with acked batches behind it and an unacked
        # one in flight.
        proc, client = _spawn_server(
            db_dir, fault="journal.flush.pre-commit:3"
        )
        acked = []
        crashed = False
        try:
            status, body, _ = client.post(
                "/campaigns",
                {
                    "name": "c1",
                    "dataset": "4d",
                    "seed": 13,
                    "storage": "sqlite",
                    "config": {"golden_count": 4, "hit_size": 2},
                    "dataset_overrides": {"tasks_per_domain": 6},
                },
            )
            assert status == 201, body
            _, golden, _ = client.get("/campaigns/c1/golden")
            answers = [
                {
                    "task_id": task_id,
                    "choice": dataset.task_by_id(
                        task_id
                    ).ground_truth,
                }
                for task_id in golden["golden_task_ids"]
            ]
            status, body, _ = client.post(
                "/campaigns/c1/workers/w1/bootstrap",
                {"answers": answers},
            )
            assert status == 200, body
            attempted = []
            for round_ in range(20):
                try:
                    status, hit, _ = client.get(
                        "/campaigns/c1/workers/w1/assignment?k=2"
                    )
                    assert status == 200
                    for task_id in hit["task_ids"]:
                        attempted.append(("w1", task_id))
                        status, body, _ = client.post(
                            "/campaigns/c1/answers",
                            {
                                "worker_id": "w1",
                                "task_id": task_id,
                                "choice": 1,
                            },
                        )
                        if status == 200:
                            acked.append(("w1", task_id))
                except (
                    urllib.error.URLError,
                    ConnectionError,
                    OSError,
                ):
                    crashed = True
                    break
            assert crashed, "server survived 20 rounds; fault unhit?"
        finally:
            exit_code = proc.wait(timeout=30)
        assert exit_code == 137  # died at the armed point, not cleanly
        assert acked, "no answer was acked before the crash"
        assert len(acked) < len(attempted), (
            "the crashing submit must not have been acked"
        )

        # --- in-process resume: ground truth for the comparison -----
        meta = _sidecar_config(db_dir, "c1")
        resumed = DocsSystem.resume(
            meta["path"],
            config=DocsConfig(**meta["config"]),
            kb=dataset.kb,
        )
        digest_direct = resumed.hot_state_digest()
        answers_direct = {
            (a.worker_id, a.task_id)
            for a in resumed.database.answers.all()
        }
        resumed.close()

        # Every acked answer survived; the unacked tail did not.
        for pair in acked:
            assert pair in answers_direct, pair
        assert answers_direct == set(acked)

        # --- server resume: must match the direct resume exactly ----
        proc2, client2 = _spawn_server(db_dir, resume=True)
        try:
            status, body, _ = client2.get("/campaigns/c1")
            assert status == 200, body
            assert body["hot_state_digest"] == digest_direct
            status, info, _ = client2.get("/campaigns/c1/workers/w1")
            assert status == 200
            assert info["needs_bootstrap"] is False
            assert info["tasks_answered"] == len(acked)
            # The resumed server keeps serving: a fresh assignment
            # excludes every already-answered task.
            status, hit, _ = client2.get(
                "/campaigns/c1/workers/w1/assignment?k=2"
            )
            assert status == 200
            assert not (
                {("w1", t) for t in hit["task_ids"]} & set(acked)
            )
        finally:
            proc2.terminate()
            proc2.wait(timeout=30)
