"""Tests for the four dataset generators."""

import numpy as np
import pytest

from repro.datasets import DATASET_NAMES, make_dataset
from repro.errors import ValidationError
from repro.utils.text import jaccard_similarity


@pytest.fixture(scope="module")
def datasets():
    """One small instance of each dataset (scaled for test speed)."""
    return {
        "item": make_dataset("item", seed=0, tasks_per_domain=15),
        "4d": make_dataset("4d", seed=0, tasks_per_domain=15),
        "qa": make_dataset("qa", seed=0, num_tasks=60),
        "sfv": make_dataset("sfv", seed=0, num_tasks=60),
    }


class TestRegistry:
    def test_names(self):
        assert set(DATASET_NAMES) == {"item", "4d", "qa", "sfv"}

    def test_unknown_rejected(self):
        with pytest.raises(ValidationError):
            make_dataset("nope")

    def test_deterministic(self):
        a = make_dataset("item", seed=5, tasks_per_domain=5)
        b = make_dataset("item", seed=5, tasks_per_domain=5)
        assert [t.text for t in a.tasks] == [t.text for t in b.tasks]


class TestCommonInvariants:
    @pytest.mark.parametrize("name", ["item", "4d", "qa", "sfv"])
    def test_every_task_annotated(self, datasets, name):
        ds = datasets[name]
        for task in ds.tasks:
            assert task.ground_truth is not None
            assert 1 <= task.ground_truth <= task.num_choices
            assert task.true_domain is not None
            assert task.behavior_domains is not None
            assert task.behavior_domains.sum() == pytest.approx(1.0)

    @pytest.mark.parametrize("name", ["item", "4d", "qa", "sfv"])
    def test_labels_align_with_domains(self, datasets, name):
        ds = datasets[name]
        mapping = ds.domain_label_indices()
        for task, label in zip(ds.tasks, ds.task_labels):
            assert task.true_domain == mapping[label]

    @pytest.mark.parametrize("name", ["item", "4d", "qa", "sfv"])
    def test_four_domains(self, datasets, name):
        assert len(datasets[name].domains) == 4

    @pytest.mark.parametrize("name", ["item", "4d", "qa", "sfv"])
    def test_entities_linkable(self, datasets, name):
        """Every task must contain at least one KB-linkable mention."""
        from repro.linking import EntityLinker

        ds = datasets[name]
        linker = EntityLinker(ds.kb)
        unlinked = sum(
            1 for task in ds.tasks if not linker.link(task.text)
        )
        assert unlinked == 0


class TestDatasetCharacter:
    def test_paper_default_sizes(self):
        assert make_dataset("item", seed=1).num_tasks == 360
        assert make_dataset("4d", seed=1).num_tasks == 400

    def test_item_intra_domain_similarity_high(self, datasets):
        """Item's defining property: templated per-domain text."""
        ds = datasets["item"]
        nba = [
            t.text
            for t, lbl in zip(ds.tasks, ds.task_labels)
            if lbl == "NBA"
        ]
        sims = [
            jaccard_similarity(nba[i], nba[i + 1])
            for i in range(len(nba) - 1)
        ]
        assert np.mean(sims) > 0.5

    def test_4d_has_cross_domain_lookalikes(self, datasets):
        """4D's defining property: identical templates across domains."""
        ds = datasets["4d"]
        by_label = {}
        for task, label in zip(ds.tasks, ds.task_labels):
            by_label.setdefault(label, []).append(task.text)
        best = 0.0
        for nba_text in by_label["NBA"][:10]:
            for mountain_text in by_label["Mountain"][:10]:
                best = max(
                    best, jaccard_similarity(nba_text, mountain_text)
                )
        assert best > 0.4

    def test_sfv_has_distractors(self, datasets):
        ds = datasets["sfv"]
        assert all(t.distractor is not None for t in ds.tasks)
        assert all(t.num_choices == 4 for t in ds.tasks)

    def test_qa_two_choices(self, datasets):
        assert all(t.num_choices == 2 for t in datasets["qa"].tasks)

    def test_sfv_multi_domain_persons_exist(self):
        ds = make_dataset("sfv", seed=3)
        multi = [
            t
            for t in ds.tasks
            if np.count_nonzero(t.behavior_domains > 0.01) > 1
        ]
        assert multi  # some renowned-in-two-domains persons


class TestDatasetAccessors:
    def test_task_by_id(self, datasets):
        ds = datasets["item"]
        assert ds.task_by_id(0).task_id == 0
        with pytest.raises(ValidationError):
            ds.task_by_id(10**6)

    def test_label_of(self, datasets):
        ds = datasets["item"]
        assert ds.label_of(0) == ds.task_labels[0]

    def test_ground_truths(self, datasets):
        ds = datasets["item"]
        truths = ds.ground_truths()
        assert len(truths) == ds.num_tasks

    def test_summary_mentions_counts(self, datasets):
        assert "tasks" in datasets["qa"].summary()
