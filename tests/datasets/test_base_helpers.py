"""Tests for the dataset-generation helpers."""

import numpy as np
import pytest

from repro.datasets.base import (
    behavior_mixture,
    sample_concepts,
    sample_dominant_concepts,
)
from repro.errors import ValidationError
from repro.kb.concept import Concept
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.taxonomy import DomainTaxonomy
from repro.utils.rng import make_rng


@pytest.fixture
def kb():
    tax = DomainTaxonomy(("a", "b", "c"))
    kb = KnowledgeBase(tax)
    # Domain a: one famous dominant concept and one outmatched sense.
    kb.add_concept(
        Concept(0, "Alpha One", frozenset({0}), commonness=10.0)
    )
    kb.add_concept(
        Concept(1, "Alpha One", frozenset({1}), commonness=1.0)
    )
    kb.add_concept(
        Concept(2, "Alpha Two", frozenset({0}), commonness=2.0)
    )
    # A multi-domain dominant concept in a.
    kb.add_concept(
        Concept(3, "Alpha Three", frozenset({0, 2}), commonness=8.0)
    )
    # Domain b.
    kb.add_concept(
        Concept(4, "Beta One", frozenset({1}), commonness=3.0)
    )
    return kb


class TestSampleConcepts:
    def test_competitive_filter(self, kb):
        rng = make_rng(0)
        # Concept 1 (commonness 1 vs rival 10) is not competitive.
        names = {
            c.concept_id
            for _ in range(20)
            for c in sample_concepts(kb, 1, 1, rng)
        }
        assert 1 not in names
        assert 4 in names

    def test_distinct_names(self, kb):
        rng = make_rng(0)
        concepts = sample_concepts(kb, 0, 3, rng)
        names = [c.name for c in concepts]
        assert len(set(names)) == 3

    def test_too_many_requested(self, kb):
        with pytest.raises(ValidationError):
            sample_concepts(kb, 1, 10, make_rng(0))


class TestSampleDominantConcepts:
    def test_single_domain_dominants(self, kb):
        rng = make_rng(0)
        ids = {
            c.concept_id
            for _ in range(20)
            for c in sample_dominant_concepts(kb, 0, 1, rng)
        }
        # Concept 0 dominates; concept 3 is multi-domain (excluded);
        # concept 2 has no rivals so it dominates trivially.
        assert ids <= {0, 2}

    def test_multi_domain_pool(self, kb):
        rng = make_rng(0)
        concepts = sample_dominant_concepts(
            kb, 0, 1, rng, multi_domain=True
        )
        assert concepts[0].concept_id == 3

    def test_insufficient_pool_rejected(self, kb):
        with pytest.raises(ValidationError):
            sample_dominant_concepts(kb, 1, 5, make_rng(0))


class TestBehaviorMixture:
    def test_single_domain_concepts_one_hot(self, kb):
        mix = behavior_mixture([kb.concept(0)], 0, 3)
        np.testing.assert_allclose(mix, [1.0, 0.0, 0.0])

    def test_multi_domain_concept_spreads(self, kb):
        mix = behavior_mixture([kb.concept(3)], 0, 3, primary_weight=0.6)
        # 0.6 one-hot + 0.4 * [0.5, 0, 0.5]
        np.testing.assert_allclose(mix, [0.8, 0.0, 0.2])

    def test_no_concepts_falls_back_to_one_hot(self):
        mix = behavior_mixture([], 1, 3)
        np.testing.assert_allclose(mix, [0.0, 1.0, 0.0])

    def test_invalid_primary_weight(self, kb):
        with pytest.raises(ValidationError):
            behavior_mixture([kb.concept(0)], 0, 3, primary_weight=0.0)

    def test_result_is_distribution(self, kb):
        mix = behavior_mixture(
            [kb.concept(0), kb.concept(3)], 0, 3, primary_weight=0.7
        )
        assert mix.sum() == pytest.approx(1.0)
