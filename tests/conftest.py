"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core.types import Answer, Task
from repro.crowd.worker_pool import WorkerPool, WorkerPoolConfig
from repro.kb.concept import Concept
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.taxonomy import DomainTaxonomy


@pytest.fixture
def small_taxonomy():
    """A 3-domain taxonomy matching the paper's running examples."""
    return DomainTaxonomy(("politics", "sports", "films"))


@pytest.fixture
def paper_kb(small_taxonomy):
    """The knowledge base of Table 2 (Michael Jordan / NBA / Kobe)."""
    kb = KnowledgeBase(small_taxonomy)
    kb.add_concept(
        Concept(
            concept_id=0,
            name="Michael Jordan",
            domain_indices=frozenset({1, 2}),
            description=("basketball", "championships", "bulls"),
            commonness=0.7,
        )
    )
    kb.add_concept(
        Concept(
            concept_id=1,
            name="Michael Jordan",
            domain_indices=frozenset(),
            description=("machine", "learning", "professor"),
            commonness=0.2,
        )
    )
    kb.add_concept(
        Concept(
            concept_id=2,
            name="Michael Jordan",
            domain_indices=frozenset({2}),
            description=("actor", "film", "creed"),
            commonness=0.1,
        )
    )
    kb.add_concept(
        Concept(
            concept_id=3,
            name="NBA",
            domain_indices=frozenset({1}),
            description=("basketball", "league", "teams"),
            commonness=0.8,
        )
    )
    kb.add_concept(
        Concept(
            concept_id=4,
            name="NBA",
            domain_indices=frozenset(),
            description=("bar", "association", "lawyers"),
            commonness=0.2,
        )
    )
    kb.add_concept(
        Concept(
            concept_id=5,
            name="Kobe Bryant",
            domain_indices=frozenset({1}),
            description=("basketball", "lakers", "championships"),
            commonness=1.0,
        )
    )
    return kb


@pytest.fixture
def simple_tasks():
    """Three 2-choice tasks over a 3-domain space with domain vectors."""
    return [
        Task(
            task_id=0,
            text="task zero",
            num_choices=2,
            domain_vector=np.array([0.8, 0.1, 0.1]),
            ground_truth=1,
            true_domain=0,
        ),
        Task(
            task_id=1,
            text="task one",
            num_choices=2,
            domain_vector=np.array([0.1, 0.8, 0.1]),
            ground_truth=2,
            true_domain=1,
        ),
        Task(
            task_id=2,
            text="task two",
            num_choices=2,
            domain_vector=np.array([0.1, 0.1, 0.8]),
            ground_truth=1,
            true_domain=2,
        ),
    ]


@pytest.fixture
def small_pool():
    """A deterministic 8-worker pool over 3 domains."""
    return WorkerPool.generate(
        WorkerPoolConfig(num_workers=8, num_domains=3, seed=5)
    )
