"""The engine registry: names, construction, and runtime registration."""

import pytest

from repro.engines import (
    ENGINES,
    engine_names,
    make_engine,
    register_engine,
)
from repro.engines.base import Engine
from repro.errors import ValidationError

CORE_ENTRIES = {
    "docs",
    "oracle",
    "batched-em",
    "random",
    "askit",
    "icrowd",
    "qasca",
    "dmax",
    "mv",
    "zc",
    "ds",
    "fc",
}


class TestRegistry:
    def test_core_entries_registered(self):
        assert CORE_ENTRIES <= set(engine_names())

    def test_every_spec_has_a_summary(self):
        for spec in ENGINES.values():
            assert spec.summary, f"{spec.name} has no summary line"

    def test_make_engine_builds_engines(self):
        for name in engine_names():
            engine = make_engine(name, seed=3)
            assert isinstance(engine, Engine), name

    def test_unknown_name_raises_with_valid_names(self):
        with pytest.raises(ValidationError) as excinfo:
            make_engine("no-such-engine")
        message = str(excinfo.value)
        assert "no-such-engine" in message
        assert "docs" in message  # the error lists the registry

    def test_engines_are_fresh_per_call(self):
        assert make_engine("random") is not make_engine("random")

    def test_register_engine_round_trip(self):
        class _Probe(Engine):
            name = "probe"

            def prepare(self, dataset):
                pass

            def golden_task_ids(self):
                return []

            def needs_bootstrap(self, worker_id):
                return False

            def bootstrap(self, worker_id, answers):
                pass

            def assign(self, worker_id, k):
                return []

            def submit(self, answer):
                pass

            def finalize(self):
                return {}

        register_engine(
            "probe", lambda seed, config: _Probe(), summary="test probe"
        )
        try:
            assert "probe" in engine_names()
            assert isinstance(make_engine("probe"), _Probe)
        finally:
            del ENGINES["probe"]

    def test_register_engine_rejects_empty_name(self):
        with pytest.raises(ValidationError):
            register_engine("", lambda seed, config: None)
