"""The campaign shell adds durability, never behaviour.

The refactor's acceptance bar: :class:`repro.system.DocsSystem` hosting
the ``docs`` engine must be indistinguishable — bit-identical HITs,
truths, and resume digests — from the bare engine, and from the
brute-force ``oracle`` registry entry (full-pool Eq. 8 evaluation with
the serving ladder disabled). And a memory-only engine hosted by the
sqlite shell must journal enough to resume by replay.
"""

import pytest

from repro.core.types import Answer
from repro.crowd.worker_pool import WorkerPool, WorkerPoolConfig
from repro.datasets import make_dataset
from repro.engines import make_engine
from repro.errors import ValidationError
from repro.platform.amt_sim import PlatformSimulator
from repro.system import DocsConfig, DocsSystem

WORKERS = [f"w{i}" for i in range(6)]


@pytest.fixture(scope="module")
def dataset():
    return make_dataset("4d", seed=31, tasks_per_domain=8)


def _pool(dataset, seed=7):
    active = tuple(d.taxonomy_index for d in dataset.domains)
    return WorkerPool.generate(
        WorkerPoolConfig(
            num_workers=12,
            num_domains=dataset.taxonomy.size,
            active_domains=active,
            seed=seed,
        )
    )


def _campaign(engine, dataset, seed=7):
    simulator = PlatformSimulator(
        dataset,
        _pool(dataset, seed=seed + 1),
        answers_per_task=3,
        hit_size=2,
        seed=seed + 3,
    )
    report = simulator.run(engine)
    hits = [(h.worker_id, h.task_ids) for h in report.hit_log.all()]
    return hits, dict(report.truths)


def _golden_answers(system, dataset, worker):
    return [
        Answer(worker, tid, dataset.task_by_id(tid).ground_truth)
        for tid in system.golden_task_ids()
    ]


def _drive(system, dataset, arrivals, start=0):
    """Deterministic arrival script shared by the resume tests."""
    for arrival in range(start, arrivals):
        worker = WORKERS[arrival % len(WORKERS)]
        if system.needs_bootstrap(worker):
            system.bootstrap(
                worker, _golden_answers(system, dataset, worker)
            )
        for task_id in system.assign(worker, 2):
            ell = dataset.task_by_id(task_id).num_choices
            choice = 1 + (task_id * 3 + arrival) % ell
            system.submit(Answer(worker, task_id, choice))


class TestShellTransparency:
    def test_shell_hosted_docs_identical_to_bare_engine(self, dataset):
        shell = DocsSystem(DocsConfig(seed=7))
        bare = make_engine("docs", seed=7)
        assert _campaign(shell, dataset) == _campaign(bare, dataset)

    def test_shell_hosted_docs_identical_to_brute_oracle(self, dataset):
        """The serving ladder (index, pool) is an optimisation: picks
        must match a full-pool Eq. 8 evaluation bit for bit."""
        shell = DocsSystem(DocsConfig(seed=7))
        oracle = make_engine("oracle", seed=7)
        assert _campaign(shell, dataset) == _campaign(oracle, dataset)

    def test_configured_engine_is_reported(self):
        assert DocsSystem(DocsConfig()).config.engine == "docs"
        system = DocsSystem(DocsConfig(engine="random"))
        assert system.config.engine == "random"
        assert system.engine.name == "Baseline"


class TestHotResumeDigest:
    def test_killed_campaign_resumes_to_identical_digest(
        self, dataset, tmp_path
    ):
        config = DocsConfig(
            golden_count=6, rerun_interval=20, hit_size=3,
            journal_batch_size=8,
        )
        path = str(tmp_path / "campaign.db")
        system = DocsSystem(config, storage="sqlite", path=path)
        system.prepare(dataset)
        _drive(system, dataset, 17)
        system.checkpoint()
        digest = system.hot_state_digest()
        # Simulated kill: abandoned, never closed.

        resumed = DocsSystem.resume(path, config=config)
        assert resumed.hot_state_digest() == digest
        for worker in WORKERS:
            assert system.assign(worker, 3) == resumed.assign(worker, 3)


class TestGenericEngineHosting:
    """A memory-only engine through the sqlite-durable shell."""

    CONFIG = dict(seed=7, engine="random", journal_batch_size=8)

    def test_baseline_campaign_survives_close_and_resume(
        self, dataset, tmp_path
    ):
        path = str(tmp_path / "baseline.db")
        system = DocsSystem(
            DocsConfig(**self.CONFIG), storage="sqlite", path=path
        )
        system.prepare(dataset)
        _drive(system, dataset, 17)
        truths = system.finalize()
        unanswered = system.unanswered_task_ids()
        system.close()

        resumed = DocsSystem.resume(
            path, config=DocsConfig(**self.CONFIG), dataset=dataset
        )
        assert resumed.finalize() == truths
        assert resumed.unanswered_task_ids() == unanswered

    def test_resume_requires_the_dataset(self, dataset, tmp_path):
        """Memory-only engines resume by replay: linking/DVE state is
        not persisted, so the original dataset must be supplied."""
        path = str(tmp_path / "baseline.db")
        system = DocsSystem(
            DocsConfig(**self.CONFIG), storage="sqlite", path=path
        )
        system.prepare(dataset)
        _drive(system, dataset, 5)
        system.close()
        with pytest.raises(ValidationError):
            DocsSystem.resume(path, config=DocsConfig(**self.CONFIG))

    def test_hot_surfaces_refused_with_engine_name(self, dataset):
        system = DocsSystem(DocsConfig(**self.CONFIG))
        system.prepare(dataset)
        with pytest.raises(ValidationError) as excinfo:
            system.hot_state_digest()
        assert "hot-state" in str(excinfo.value)
        with pytest.raises(ValidationError):
            system.snapshot()
        with pytest.raises(ValidationError):
            system.quality_store
