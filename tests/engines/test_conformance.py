"""Engine-conformance suite: every registry entry obeys the contract.

Parametrized over :func:`repro.engines.engine_names`, so a newly
registered engine is held to the same rules automatically:

- ``prepare`` is single-shot;
- bootstrap discipline — assigning to a worker who still owes the
  golden pre-test raises :class:`~repro.errors.UnknownWorkerError`;
- the at-most-once answer rule — a repeat (worker, task) submit raises
  :class:`~repro.errors.ValidationError`;
- ``assign`` never returns a task its worker already answered;
- ``finalize`` covers every task id, resolving never-answered tasks to
  the explicit uninformed default and reporting them through
  ``unanswered_task_ids``.
"""

import pytest

from repro.core.types import Answer
from repro.crowd.worker_pool import WorkerPool, WorkerPoolConfig
from repro.datasets import make_dataset
from repro.engines import (
    UNINFORMED_DEFAULT_CHOICE,
    engine_names,
    make_engine,
)
from repro.errors import UnknownWorkerError, ValidationError
from repro.platform.amt_sim import PlatformSimulator

ALL_ENGINES = engine_names()


@pytest.fixture(scope="module")
def dataset():
    return make_dataset("4d", seed=11, tasks_per_domain=6)


@pytest.fixture(scope="module")
def pool(dataset):
    active = tuple(d.taxonomy_index for d in dataset.domains)
    return WorkerPool.generate(
        WorkerPoolConfig(
            num_workers=10,
            num_domains=dataset.taxonomy.size,
            active_domains=active,
            seed=12,
        )
    )


def _bootstrap(engine, dataset, worker_id):
    """Complete the golden pre-test when the engine requires one."""
    if engine.needs_bootstrap(worker_id):
        answers = [
            Answer(
                worker_id,
                task_id,
                dataset.task_by_id(task_id).ground_truth or 1,
            )
            for task_id in engine.golden_task_ids()
        ]
        engine.bootstrap(worker_id, answers)


@pytest.mark.parametrize("name", ALL_ENGINES)
class TestEngineConformance:
    def test_prepare_is_single_shot(self, name, dataset):
        engine = make_engine(name, seed=5)
        engine.prepare(dataset)
        with pytest.raises(ValidationError):
            engine.prepare(dataset)

    def test_bootstrap_discipline(self, name, dataset):
        engine = make_engine(name, seed=5)
        engine.prepare(dataset)
        if engine.golden_task_ids():
            # A fresh worker owes the golden pre-test: assignment is
            # refused until bootstrap() ingested their answers.
            assert engine.needs_bootstrap("w_fresh")
            with pytest.raises(UnknownWorkerError):
                engine.assign("w_fresh", 2)
            _bootstrap(engine, dataset, "w_fresh")
            assert not engine.needs_bootstrap("w_fresh")
            engine.assign("w_fresh", 2)
        else:
            # No golden pre-test: workers assign straight away.
            assert not engine.needs_bootstrap("w_fresh")
            engine.assign("w_fresh", 2)

    def test_repeat_answer_rejected(self, name, dataset):
        engine = make_engine(name, seed=5)
        engine.prepare(dataset)
        _bootstrap(engine, dataset, "w0")
        picks = engine.assign("w0", 2)
        assert picks, f"{name} assigned nothing to a fresh worker"
        answer = Answer("w0", picks[0], 1)
        engine.submit(answer)
        with pytest.raises(ValidationError):
            engine.submit(answer)

    def test_never_assigns_an_answered_task(self, name, dataset):
        engine = make_engine(name, seed=5)
        engine.prepare(dataset)
        _bootstrap(engine, dataset, "w0")
        answered = set()
        for _ in range(dataset.num_tasks):
            picks = engine.assign("w0", 2)
            if not picks:
                break
            overlap = answered & set(picks)
            assert not overlap, (
                f"{name} re-assigned already-answered tasks {overlap}"
            )
            for task_id in picks:
                engine.submit(Answer("w0", task_id, 1))
                answered.add(task_id)
        assert answered, f"{name} never assigned anything"

    def test_finalize_covers_all_tasks_with_explicit_default(
        self, name, dataset
    ):
        engine = make_engine(name, seed=5)
        engine.prepare(dataset)
        # Reporting unanswered tasks is meaningless before finalize
        # decided them.
        with pytest.raises(ValidationError):
            engine.unanswered_task_ids()
        _bootstrap(engine, dataset, "w0")
        picks = engine.assign("w0", 1)
        for task_id in picks:
            engine.submit(Answer("w0", task_id, 1))

        truths = engine.finalize()
        all_ids = {t.task_id for t in dataset.tasks}
        assert set(truths) == all_ids
        unanswered = set(engine.unanswered_task_ids())
        golden = set(engine.golden_task_ids())
        # Only the single assigned task received a paid answer;
        # everything else (modulo how the engine accounts its golden
        # pre-test answers) was never answered and must carry the
        # documented uninformed default.
        assert all_ids - set(picks) - golden <= unanswered
        assert unanswered <= all_ids - set(picks)
        for task_id in unanswered:
            assert truths[task_id] == UNINFORMED_DEFAULT_CHOICE

    def test_full_campaign_coverage(self, name, dataset, pool):
        engine = make_engine(name, seed=5)
        simulator = PlatformSimulator(
            dataset, pool, answers_per_task=2, hit_size=2, seed=13
        )
        report = simulator.run(engine)
        assert set(report.truths) == {t.task_id for t in dataset.tasks}
        assert 0.0 <= report.accuracy <= 1.0
        for task_id in engine.unanswered_task_ids():
            assert report.truths[task_id] == UNINFORMED_DEFAULT_CHOICE
