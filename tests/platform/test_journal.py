"""Tests for the write-behind answer journal and its integrity checks."""

import sqlite3

import numpy as np
import pytest

from repro.core.types import Answer, Task
from repro.errors import JournalCorruptionError, ValidationError
from repro.platform.journal import (
    KIND_ANSWER,
    KIND_BOOTSTRAP_ANSWER,
    KIND_BOOTSTRAP_DONE,
    AnswerJournal,
    JournaledAnswerTable,
)
from repro.platform.sqlite_storage import SqliteSystemDatabase


def _task(i):
    return Task(
        task_id=i,
        text=f"task {i}",
        num_choices=3,
        domain_vector=np.array([0.2, 0.3, 0.5]),
        ground_truth=1,
    )


@pytest.fixture()
def conn():
    connection = sqlite3.connect(":memory:")
    yield connection
    connection.close()


class TestAnswerJournal:
    def test_write_behind_batching(self, conn):
        journal = AnswerJournal(conn, batch_size=3)
        journal.record_answer(Answer("w", 0, 1), task_row=0)
        journal.record_answer(Answer("w", 1, 2), task_row=1)
        assert journal.pending == 2
        assert len(journal) == 0  # nothing durable yet
        journal.record_answer(Answer("w", 2, 3), task_row=2)
        # Third event crossed the batch size: auto-flush.
        assert journal.pending == 0
        assert len(journal) == 3

    def test_flush_idempotent(self, conn):
        journal = AnswerJournal(conn, batch_size=100)
        journal.record_answer(Answer("w", 0, 1), task_row=0)
        assert journal.flush() == 1
        assert journal.flush() == 0
        assert journal.flush() == 0
        assert len(journal) == 1
        journal.validate()  # repeated flushes leave a valid journal

    def test_replay_preserves_commit_order(self, conn):
        journal = AnswerJournal(conn, batch_size=2)
        journal.record_bootstrap(
            "w1", [Answer("w1", 0, 1)], task_rows=[0]
        )
        journal.record_answer(Answer("w1", 1, 2), task_row=1)
        journal.record_answer(Answer("w2", 1, 3), task_row=1)
        journal.flush()
        entries = list(journal.replay())
        assert [e.kind for e in entries] == [
            KIND_BOOTSTRAP_ANSWER,
            KIND_BOOTSTRAP_DONE,
            KIND_ANSWER,
            KIND_ANSWER,
        ]
        assert [e.seq for e in entries] == [0, 1, 2, 3]
        assert entries[2].task_row == 1
        assert entries[2].worker_id == "w1"
        assert entries[3].choice == 3

    def test_bootstrap_never_split_across_batches(self, conn):
        # Batch size 2, bootstrap with 4 answers: the whole bootstrap
        # (answers + marker) must land in one atomic batch.
        journal = AnswerJournal(conn, batch_size=2)
        answers = [Answer("w", i, 1) for i in range(4)]
        journal.record_bootstrap("w", answers, task_rows=range(4))
        assert journal.pending == 0  # auto-flushed in one go
        batches = {entry.batch for entry in journal.replay()}
        assert len(batches) == 1

    def test_journal_survives_reopen(self, conn, tmp_path):
        path = str(tmp_path / "j.db")
        first = sqlite3.connect(path)
        journal = AnswerJournal(first, batch_size=10)
        journal.record_answer(Answer("w", 0, 1), task_row=0)
        journal.flush()
        first.close()
        second = sqlite3.connect(path)
        reopened = AnswerJournal(second, batch_size=10)
        assert len(reopened) == 1
        reopened.record_answer(Answer("w", 1, 1), task_row=1)
        reopened.flush()
        reopened.validate()
        entries = list(reopened.replay())
        assert [e.seq for e in entries] == [0, 1]
        assert entries[0].batch < entries[1].batch
        second.close()

    def test_validate_rejects_orphan_rows(self, conn):
        journal = AnswerJournal(conn, batch_size=10)
        journal.record_answer(Answer("w", 0, 1), task_row=0)
        journal.flush()
        # Simulate a torn final write: rows present, batch record gone.
        conn.execute(
            "INSERT INTO answers_log "
            "(seq, kind, task_row, task_id, worker_id, choice, ts, batch) "
            "VALUES (99, 0, 5, 5, 'w', 1, 0.0, 77)"
        )
        conn.commit()
        with pytest.raises(JournalCorruptionError, match="partial"):
            journal.validate()

    def test_validate_rejects_missing_rows(self, conn):
        journal = AnswerJournal(conn, batch_size=10)
        journal.record_answer(Answer("w", 0, 1), task_row=0)
        journal.record_answer(Answer("w", 1, 1), task_row=1)
        journal.flush()
        conn.execute("DELETE FROM answers_log WHERE seq = 1")
        conn.commit()
        with pytest.raises(JournalCorruptionError, match="incomplete"):
            journal.validate()

    def test_validate_rejects_altered_rows(self, conn):
        journal = AnswerJournal(conn, batch_size=10)
        journal.record_answer(Answer("w", 0, 1), task_row=0)
        journal.flush()
        conn.execute("UPDATE answers_log SET choice = 2 WHERE seq = 0")
        conn.commit()
        with pytest.raises(JournalCorruptionError, match="checksum"):
            journal.validate()

    def test_error_names_remediation(self, conn):
        journal = AnswerJournal(conn, batch_size=10)
        journal.record_answer(Answer("w", 0, 1), task_row=0)
        journal.flush()
        conn.execute("UPDATE answers_log SET choice = 2 WHERE seq = 0")
        conn.commit()
        with pytest.raises(JournalCorruptionError) as excinfo:
            journal.validate()
        message = str(excinfo.value)
        assert "backup" in message
        assert "checkpoint" in message

    def test_invalid_batch_size(self, conn):
        with pytest.raises(ValidationError):
            AnswerJournal(conn, batch_size=0)


class TestJournaledAnswerTable:
    def _table(self, conn, batch_size=2):
        journal = AnswerJournal(conn, batch_size=batch_size)
        table = JournaledAnswerTable(journal)
        table.bind_row_resolver(lambda task_id: task_id)
        return table

    def test_reads_see_unflushed_answers(self, conn):
        table = self._table(conn, batch_size=100)
        table.insert(Answer("w", 0, 1))
        # Not yet durable, but the serving path must see it.
        assert table.journal.pending == 1
        assert table.tasks_answered_by("w") == {0}
        assert table.has_answered("w", 0)
        assert len(table) == 1
        assert [a.choice for a in table.for_task(0)] == [1]

    def test_at_most_once_enforced_synchronously(self, conn):
        table = self._table(conn, batch_size=100)
        table.insert(Answer("w", 0, 1))
        with pytest.raises(ValidationError):
            table.insert(Answer("w", 0, 2))
        # The rejected insert must not reach the journal either.
        assert table.journal.pending == 1

    def test_requires_row_resolver(self, conn):
        journal = AnswerJournal(conn, batch_size=2)
        table = JournaledAnswerTable(journal)
        with pytest.raises(ValidationError, match="resolver"):
            table.insert(Answer("w", 0, 1))

    def test_restore_skips_journal(self, conn):
        table = self._table(conn, batch_size=100)
        table.restore(Answer("w", 0, 1))
        assert table.journal.pending == 0
        assert table.tasks_answered_by("w") == {0}


class TestSqliteSystemDatabaseJournalMode:
    def test_checkpoint_flushes_and_is_idempotent(self, tmp_path):
        db = SqliteSystemDatabase(
            str(tmp_path / "c.db"), journal_batch_size=100
        )
        db.add_tasks([_task(0), _task(1)])
        db.answers.bind_row_resolver(lambda task_id: task_id)
        db.answers.insert(Answer("w", 0, 1))
        assert db.checkpoint() == 1
        assert db.checkpoint() == 0
        db.journal.validate()
        db.close()
        db.close()  # idempotent

    def test_close_flushes_pending(self, tmp_path):
        path = str(tmp_path / "c.db")
        db = SqliteSystemDatabase(path, journal_batch_size=100)
        db.add_tasks([_task(0)])
        db.answers.bind_row_resolver(lambda task_id: task_id)
        db.answers.insert(Answer("w", 0, 1))
        db.close()
        reopened = SqliteSystemDatabase(path, journal_batch_size=100)
        assert len(reopened.journal) == 1
        reopened.close()

    def test_tasks_in_ingest_order(self, tmp_path):
        db = SqliteSystemDatabase(
            str(tmp_path / "o.db"), journal_batch_size=100
        )
        # Ingest order deliberately differs from id order.
        db.add_tasks([_task(5), _task(1)])
        db.add_tasks([_task(3)])
        assert [t.task_id for t in db.tasks_in_ingest_order()] == [5, 1, 3]
        assert [t.task_id for t in db.tasks()] == [1, 3, 5]  # id-ordered
        db.close()

    def test_migration_adds_ingest_seq_to_legacy_file(self, tmp_path):
        path = str(tmp_path / "legacy.db")
        legacy = sqlite3.connect(path)
        legacy.executescript(
            """
            CREATE TABLE tasks (
                task_id       INTEGER PRIMARY KEY,
                text          TEXT NOT NULL,
                num_choices   INTEGER NOT NULL,
                domain_vector BLOB,
                ground_truth  INTEGER,
                true_domain   INTEGER,
                distractor    INTEGER,
                golden_rank   INTEGER
            );
            INSERT INTO tasks (task_id, text, num_choices)
            VALUES (7, 'a', 2), (2, 'b', 2);
            """
        )
        legacy.commit()
        legacy.close()
        db = SqliteSystemDatabase(path, journal_batch_size=100)
        # Backfilled in id order, and new inserts continue the sequence.
        assert [t.task_id for t in db.tasks_in_ingest_order()] == [2, 7]
        db.add_tasks([_task(0)])
        assert [t.task_id for t in db.tasks_in_ingest_order()] == [2, 7, 0]
        db.close()


class TestTruncation:
    """`truncate_through`: whole covered batches move to the archive,
    the surviving tail still validates and replays, and the archived
    prefix stays visible to the snapshot-resume index rebuild."""

    def _journal_with_batches(self, conn, batch_size=3, answers=10):
        journal = AnswerJournal(conn, batch_size=batch_size)
        for i in range(answers):
            journal.record_answer(Answer(f"w{i % 2}", i, 1), task_row=i)
        journal.flush()
        return journal

    def test_truncate_archives_and_drops_whole_batches(self, conn):
        journal = self._journal_with_batches(conn)
        total = len(journal)
        watermark = 5  # covers batches [0..2] and [3..5]
        removed = journal.truncate_through(watermark)
        assert removed == 6
        assert len(journal) == total - 6
        assert journal.archived_through == 5
        journal.validate()  # surviving batches still self-consistent
        # Cursors untouched: the next flush continues the seq space.
        journal.record_answer(Answer("w9", 99, 1), task_row=99)
        journal.flush()
        journal.validate()

    def test_truncate_never_tears_a_batch(self, conn):
        journal = self._journal_with_batches(conn, batch_size=4)
        # Watermark inside the second batch: only the first may go.
        removed = journal.truncate_through(5)
        assert removed == 4
        assert journal.archived_through == 3
        journal.validate()

    def test_truncate_idempotent_and_negative_noop(self, conn):
        journal = self._journal_with_batches(conn)
        assert journal.truncate_through(-1) == 0
        first = journal.truncate_through(5)
        assert first > 0
        assert journal.truncate_through(5) == 0

    def test_committed_answers_span_archive_and_tail(self, conn):
        journal = self._journal_with_batches(conn)
        before = journal.committed_answers_through(8)
        journal.truncate_through(5)
        after = journal.committed_answers_through(8)
        assert after == before  # the rebuild feed is unchanged

    def test_replay_tail_works_archived_prefix_refused(self, conn):
        journal = self._journal_with_batches(conn)
        journal.truncate_through(5)
        tail = [entry.seq for entry in journal.replay(after_seq=5)]
        assert tail == [6, 7, 8, 9]
        with pytest.raises(JournalCorruptionError, match="truncated"):
            list(journal.replay(after_seq=-1))

    def test_archive_survives_reopen(self, tmp_path):
        path = str(tmp_path / "trunc.db")
        connection = sqlite3.connect(path)
        journal = self._journal_with_batches(connection)
        journal.truncate_through(5)
        connection.close()
        reopened = sqlite3.connect(path)
        journal2 = AnswerJournal(reopened, batch_size=3)
        assert journal2.archived_through == 5
        assert len(journal2.committed_answers_through(9)) == 10
        journal2.validate()
        reopened.close()

    def test_fully_truncated_journal_keeps_seq_space_on_reopen(
        self, tmp_path
    ):
        path = str(tmp_path / "full-trunc.db")
        connection = sqlite3.connect(path)
        journal = self._journal_with_batches(connection)
        journal.truncate_through(journal.last_committed_seq)
        assert len(journal) == 0
        connection.close()
        reopened = sqlite3.connect(path)
        journal2 = AnswerJournal(reopened, batch_size=3)
        journal2.record_answer(Answer("w", 50, 1), task_row=50)
        journal2.flush()
        # The new row's seq continues past the archive, never over it.
        rows = journal2.committed_answers_through(10_000)
        assert len(rows) == 11
        assert rows[-1][0] == 10
        reopened.close()


class TestFlushAtomicity:
    """A mid-flush failure must retain the pending buffer — the
    regression suite for the fault-injected flush path."""

    def test_injected_crash_retains_pending_buffer(self, conn):
        from repro.platform import faults
        from repro.platform.faults import CrashPoint

        journal = AnswerJournal(conn, batch_size=100)
        journal.record_answer(Answer("w", 0, 1), task_row=0)
        journal.record_answer(Answer("w", 1, 2), task_row=1)
        with faults.injected() as injector:
            injector.arm("journal.flush.pre-commit", "crash")
            with pytest.raises(CrashPoint):
                journal.flush()
        # The transaction rolled back and the events are still pending:
        # nothing durable, nothing dropped.
        assert journal.pending == 2
        assert len(journal) == 0
        assert journal.flush() == 2
        journal.validate()
        assert [e.worker_id for e in journal.replay()] == ["w", "w"]

    def test_exhausted_lock_retries_retain_pending_buffer(self, conn):
        from repro.platform import faults
        from repro.platform.retry import RetryPolicy

        retry = RetryPolicy(attempts=2, base_delay=0.0, jitter=0.0)
        journal = AnswerJournal(conn, batch_size=100, retry=retry)
        journal.record_answer(Answer("w", 0, 1), task_row=0)
        with faults.injected() as injector:
            injector.arm("journal.flush.pre-commit", "locked", times=-1)
            with pytest.raises(sqlite3.OperationalError):
                journal.flush()
            assert journal.pending == 1
        # Outage over: the same buffer flushes cleanly.
        assert journal.flush() == 1
        journal.validate()

    def test_transient_lock_is_retried_to_success(self, conn):
        from repro.platform import faults
        from repro.platform.retry import RetryPolicy

        retry = RetryPolicy(attempts=3, base_delay=0.0, jitter=0.0)
        journal = AnswerJournal(conn, batch_size=100, retry=retry)
        journal.record_answer(Answer("w", 0, 1), task_row=0)
        with faults.injected() as injector:
            injector.arm("journal.flush.pre-commit", "locked", times=1)
            assert journal.flush() == 1  # first try fails, second lands
            assert injector.triggered("journal.flush.pre-commit") == 1
        assert journal.pending == 0
        journal.validate()

    def test_sequences_stay_dense_across_failed_flushes(self, conn):
        from repro.platform import faults
        from repro.platform.faults import CrashPoint

        journal = AnswerJournal(conn, batch_size=100)
        journal.record_answer(Answer("w", 0, 1), task_row=0)
        journal.flush()
        journal.record_answer(Answer("w", 1, 2), task_row=1)
        with faults.injected() as injector:
            injector.arm("journal.flush.pre-commit", "crash", times=2)
            for _ in range(2):
                with pytest.raises(CrashPoint):
                    journal.flush()
        journal.flush()
        # Failed attempts must not burn seq numbers or batch ids.
        seqs = [e.seq for e in journal.replay()]
        batches = [e.batch for e in journal.replay()]
        assert seqs == [0, 1]
        assert batches == [0, 1]
        journal.validate()
