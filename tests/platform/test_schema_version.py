"""Version-skew guard: files written by a newer schema are refused.

A database written by a future build must raise a clear
:class:`~repro.errors.SchemaVersionError` naming both versions — not
crash deep in a decode, and never silently misread the file. Older
(pre-versioning) files are adopted in place.
"""

import sqlite3

import pytest

from repro.datasets import make_dataset
from repro.errors import SchemaVersionError
from repro.platform.sqlite_storage import (
    SCHEMA_VERSION,
    SqliteSystemDatabase,
    SqliteWorkerQualityStore,
)
from repro.system import DocsConfig, DocsSystem


def _bump_version(path, version):
    conn = sqlite3.connect(path)
    conn.execute(
        "UPDATE repro_meta SET value = ? WHERE key = 'schema_version'",
        (str(version),),
    )
    conn.commit()
    conn.close()


class TestCampaignDatabaseSkew:
    def test_newer_file_refused_naming_both_versions(self, tmp_path):
        path = str(tmp_path / "campaign.db")
        SqliteSystemDatabase(path, journal_batch_size=8).close()
        _bump_version(path, SCHEMA_VERSION + 1)

        with pytest.raises(SchemaVersionError) as err:
            SqliteSystemDatabase(path, journal_batch_size=8)
        message = str(err.value)
        assert str(SCHEMA_VERSION + 1) in message
        assert str(SCHEMA_VERSION) in message
        assert "upgrade the code" in message
        assert err.value.found == SCHEMA_VERSION + 1
        assert err.value.supported == SCHEMA_VERSION

    def test_resume_surfaces_the_skew(self, tmp_path):
        dataset = make_dataset("4d", seed=31, tasks_per_domain=4)
        path = str(tmp_path / "campaign.db")
        config = DocsConfig(golden_count=4, journal_batch_size=8)
        system = DocsSystem(config, storage="sqlite", path=path)
        system.prepare(dataset)
        system.close()
        _bump_version(path, SCHEMA_VERSION + 3)

        with pytest.raises(SchemaVersionError) as err:
            DocsSystem.resume(path, config=config)
        assert err.value.found == SCHEMA_VERSION + 3

    def test_current_version_roundtrips(self, tmp_path):
        path = str(tmp_path / "campaign.db")
        SqliteSystemDatabase(path, journal_batch_size=8).close()
        db = SqliteSystemDatabase(path, journal_batch_size=8)
        db.close()

    def test_legacy_file_without_meta_is_adopted(self, tmp_path):
        path = str(tmp_path / "campaign.db")
        SqliteSystemDatabase(path, journal_batch_size=8).close()
        conn = sqlite3.connect(path)
        conn.execute("DROP TABLE repro_meta")
        conn.commit()
        conn.close()
        db = SqliteSystemDatabase(path, journal_batch_size=8)
        db.close()
        # Adoption stamped the current version into the file.
        conn = sqlite3.connect(path)
        (value,) = conn.execute(
            "SELECT value FROM repro_meta WHERE key = 'schema_version'"
        ).fetchone()
        conn.close()
        assert int(value) == SCHEMA_VERSION

    def test_garbage_version_is_refused_not_crashed(self, tmp_path):
        path = str(tmp_path / "campaign.db")
        SqliteSystemDatabase(path, journal_batch_size=8).close()
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE repro_meta SET value = 'not-a-number' "
            "WHERE key = 'schema_version'"
        )
        conn.commit()
        conn.close()
        with pytest.raises(SchemaVersionError):
            SqliteSystemDatabase(path, journal_batch_size=8)


class TestWorkerStoreSkew:
    def test_newer_store_refused(self, tmp_path):
        path = str(tmp_path / "store.db")
        SqliteWorkerQualityStore(4, path=path).close()
        _bump_version(path, SCHEMA_VERSION + 2)
        with pytest.raises(SchemaVersionError) as err:
            SqliteWorkerQualityStore(4, path=path)
        assert err.value.found == SCHEMA_VERSION + 2

    def test_current_store_roundtrips(self, tmp_path):
        path = str(tmp_path / "store.db")
        SqliteWorkerQualityStore(4, path=path).close()
        SqliteWorkerQualityStore(4, path=path).close()
