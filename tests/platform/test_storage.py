"""Tests for the platform storage tables."""

import pytest

from repro.core.types import Answer, Task
from repro.errors import UnknownTaskError, ValidationError
from repro.platform.storage import AnswerTable, SystemDatabase


class TestAnswerTable:
    def test_insert_and_indexes(self):
        table = AnswerTable()
        table.insert(Answer("w1", 0, 1))
        table.insert(Answer("w2", 0, 2))
        table.insert(Answer("w1", 1, 1))
        assert len(table) == 3
        assert len(table.for_task(0)) == 2
        assert len(table.for_worker("w1")) == 2
        assert table.tasks_answered_by("w1") == {0, 1}
        assert table.count_for_task(0) == 2

    def test_repeat_answer_rejected(self):
        table = AnswerTable()
        table.insert(Answer("w", 0, 1))
        with pytest.raises(ValidationError):
            table.insert(Answer("w", 0, 2))

    def test_has_answered(self):
        table = AnswerTable()
        table.insert(Answer("w", 0, 1))
        assert table.has_answered("w", 0)
        assert not table.has_answered("w", 1)

    def test_arrival_order_preserved(self):
        table = AnswerTable()
        for i in range(5):
            table.insert(Answer(f"w{i}", 0, 1))
        workers = [a.worker_id for a in table.for_task(0)]
        assert workers == [f"w{i}" for i in range(5)]

    def test_empty_lookups(self):
        table = AnswerTable()
        assert table.for_task(9) == []
        assert table.for_worker("x") == []
        assert table.count_for_task(9) == 0


class TestSystemDatabase:
    def _task(self, task_id, truth=1):
        return Task(
            task_id=task_id,
            text=f"t{task_id}",
            num_choices=2,
            ground_truth=truth,
        )

    def test_insert_and_fetch(self):
        db = SystemDatabase()
        db.insert_task(self._task(0))
        assert db.task(0).task_id == 0
        assert len(db) == 1

    def test_duplicate_task_rejected(self):
        db = SystemDatabase()
        db.insert_task(self._task(0))
        with pytest.raises(ValidationError):
            db.insert_task(self._task(0))

    def test_unknown_task_raises(self):
        db = SystemDatabase()
        with pytest.raises(UnknownTaskError):
            db.task(5)

    def test_tasks_ordered_by_id(self):
        db = SystemDatabase()
        db.insert_tasks([self._task(3), self._task(1), self._task(2)])
        assert [t.task_id for t in db.tasks()] == [1, 2, 3]
        assert db.task_ids() == [1, 2, 3]

    def test_golden_registry(self):
        db = SystemDatabase()
        db.insert_tasks([self._task(0), self._task(1)])
        db.mark_golden([1])
        assert db.golden_ids == [1]

    def test_golden_without_truth_rejected(self):
        db = SystemDatabase()
        db.insert_task(
            Task(task_id=0, text="t", num_choices=2)
        )
        with pytest.raises(ValidationError):
            db.mark_golden([0])
