"""Unit tests for the fault-injection harness itself.

The crash matrix leans on the injector's arming semantics (skip, times,
scoped install/restore); these tests pin those semantics down so a
matrix failure means the durability plane broke, not the harness.
"""

import sqlite3

import pytest

from repro.platform import faults
from repro.platform.faults import (
    FAULT_POINTS,
    CrashPoint,
    FaultInjector,
)


class TestFaultInjector:
    def test_unarmed_fire_only_counts(self):
        injector = FaultInjector()
        injector.fire("journal.flush.pre-commit")
        injector.fire("journal.flush.pre-commit")
        assert injector.hit_count("journal.flush.pre-commit") == 2
        assert injector.triggered("journal.flush.pre-commit") == 0

    def test_crash_mode_raises_crash_point(self):
        injector = FaultInjector()
        injector.arm("journal.flush.pre-commit", "crash")
        with pytest.raises(CrashPoint) as err:
            injector.fire("journal.flush.pre-commit")
        assert err.value.point == "journal.flush.pre-commit"

    def test_crash_point_is_not_swallowable(self):
        """CrashPoint must bypass production error handling: it is
        neither a ReproError nor a sqlite3.Error."""
        from repro.errors import ReproError

        exc = CrashPoint("db.connect")
        assert not isinstance(exc, ReproError)
        assert not isinstance(exc, sqlite3.Error)

    def test_locked_mode_raises_transient_operational_error(self):
        from repro.platform.retry import is_transient

        injector = FaultInjector()
        injector.arm("worker_store.apply_delta", "locked")
        with pytest.raises(sqlite3.OperationalError) as err:
            injector.fire("worker_store.apply_delta")
        assert is_transient(err.value)

    def test_exception_instance_raised_as_is(self):
        boom = RuntimeError("disk on fire")
        injector = FaultInjector()
        injector.arm("db.connect", boom)
        with pytest.raises(RuntimeError) as err:
            injector.fire("db.connect")
        assert err.value is boom

    def test_skip_lets_early_hits_pass(self):
        injector = FaultInjector()
        injector.arm("journal.flush.post-commit", "crash", skip=2)
        injector.fire("journal.flush.post-commit")
        injector.fire("journal.flush.post-commit")
        with pytest.raises(CrashPoint):
            injector.fire("journal.flush.post-commit")
        assert injector.triggered("journal.flush.post-commit") == 1

    def test_times_bounds_the_firings(self):
        injector = FaultInjector()
        injector.arm("snapshot.write.post-crc", "crash", times=2)
        for _ in range(2):
            with pytest.raises(CrashPoint):
                injector.fire("snapshot.write.post-crc")
        injector.fire("snapshot.write.post-crc")  # inert again
        assert injector.triggered("snapshot.write.post-crc") == 2

    def test_negative_times_fires_forever(self):
        injector = FaultInjector()
        injector.arm("worker_store.apply_delta", "locked", times=-1)
        for _ in range(10):
            with pytest.raises(sqlite3.OperationalError):
                injector.fire("worker_store.apply_delta")

    def test_disarm_one_and_all(self):
        injector = FaultInjector()
        injector.arm("db.connect", "crash")
        injector.arm("journal.flush.pre-commit", "crash")
        injector.disarm("db.connect")
        injector.fire("db.connect")  # no raise
        with pytest.raises(CrashPoint):
            injector.fire("journal.flush.pre-commit")
        injector.arm("journal.flush.pre-commit", "crash")
        injector.disarm()
        injector.fire("journal.flush.pre-commit")

    def test_unknown_point_rejected_everywhere(self):
        injector = FaultInjector()
        with pytest.raises(ValueError, match="unknown fault point"):
            injector.arm("journal.flush.typo")
        with pytest.raises(ValueError, match="unknown fault point"):
            injector.fire("journal.flush.typo")
        with pytest.raises(ValueError, match="unknown fault point"):
            injector.hit_count("journal.flush.typo")

    def test_unknown_failure_mode_rejected(self):
        injector = FaultInjector()
        with pytest.raises(ValueError, match="unknown failure mode"):
            injector.arm("db.connect", "explode")

    def test_zero_times_rejected(self):
        injector = FaultInjector()
        with pytest.raises(ValueError, match="times"):
            injector.arm("db.connect", "crash", times=0)


class TestModuleLevelInjection:
    def test_default_injector_is_inert(self):
        for point in FAULT_POINTS:
            faults.fire(point)  # must never raise

    def test_injected_scopes_the_active_injector(self):
        before = faults.active()
        with faults.injected() as injector:
            assert faults.active() is injector
            injector.arm("db.connect", "crash")
            with pytest.raises(CrashPoint):
                faults.fire("db.connect")
        assert faults.active() is before
        faults.fire("db.connect")  # armed fault did not leak out

    def test_injected_restores_on_exception(self):
        before = faults.active()
        with pytest.raises(RuntimeError):
            with faults.injected() as injector:
                injector.arm("db.connect", "crash")
                raise RuntimeError("test body blew up")
        assert faults.active() is before

    def test_injected_accepts_prearmed_injector(self):
        injector = FaultInjector()
        injector.arm("journal.flush.pre-commit", "crash")
        with faults.injected(injector):
            with pytest.raises(CrashPoint):
                faults.fire("journal.flush.pre-commit")
