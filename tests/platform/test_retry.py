"""Unit tests for the bounded-backoff retry policy.

Everything runs with an injected ``sleep`` so the suite spends zero
wall-clock time in backoff.
"""

import random
import sqlite3

import pytest

from repro.errors import ValidationError
from repro.platform.retry import (
    DEFAULT_POLICY,
    RetryPolicy,
    apply_busy_timeout,
    is_transient,
)


class TestIsTransient:
    def test_locked_and_busy_are_transient(self):
        assert is_transient(
            sqlite3.OperationalError("database is locked")
        )
        assert is_transient(
            sqlite3.OperationalError("database is busy")
        )

    def test_other_operational_errors_are_not(self):
        assert not is_transient(
            sqlite3.OperationalError("disk I/O error")
        )

    def test_non_operational_errors_are_not(self):
        assert not is_transient(sqlite3.IntegrityError(
            "UNIQUE constraint failed"
        ))
        assert not is_transient(RuntimeError("database is locked"))


def _flaky(failures, exc=None):
    """An operation that fails ``failures`` times, then succeeds."""
    exc = exc or sqlite3.OperationalError("database is locked")
    calls = {"n": 0}

    def operation():
        calls["n"] += 1
        if calls["n"] <= failures:
            raise exc
        return calls["n"]

    return operation, calls


class TestRetryPolicy:
    def test_success_on_first_try_never_sleeps(self):
        slept = []
        operation, calls = _flaky(0)
        policy = RetryPolicy(attempts=3)
        assert policy.run(operation, sleep=slept.append) == 1
        assert slept == []

    def test_transient_errors_are_retried_until_success(self):
        slept = []
        operation, calls = _flaky(3)
        policy = RetryPolicy(attempts=5, jitter=0.0)
        assert policy.run(operation, sleep=slept.append) == 4
        assert calls["n"] == 4
        assert len(slept) == 3

    def test_budget_exhaustion_raises_the_last_error(self):
        operation, calls = _flaky(10)
        policy = RetryPolicy(
            attempts=3, base_delay=0.0, jitter=0.0
        )
        with pytest.raises(sqlite3.OperationalError, match="locked"):
            policy.run(operation, sleep=lambda _: None)
        assert calls["n"] == 3

    def test_non_transient_error_propagates_immediately(self):
        operation, calls = _flaky(
            10, exc=sqlite3.OperationalError("disk I/O error")
        )
        policy = RetryPolicy(attempts=5)
        with pytest.raises(sqlite3.OperationalError, match="I/O"):
            policy.run(operation, sleep=lambda _: None)
        assert calls["n"] == 1

    def test_non_sqlite_error_propagates_immediately(self):
        operation, calls = _flaky(10, exc=RuntimeError("boom"))
        policy = RetryPolicy(attempts=5)
        with pytest.raises(RuntimeError):
            policy.run(operation, sleep=lambda _: None)
        assert calls["n"] == 1

    def test_delays_double_and_cap(self):
        policy = RetryPolicy(
            attempts=6, base_delay=0.1, max_delay=0.4, jitter=0.0
        )
        assert list(policy.delays()) == pytest.approx(
            [0.1, 0.2, 0.4, 0.4, 0.4]
        )

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(
            attempts=50, base_delay=1.0, max_delay=1.0, jitter=0.25
        )
        rng = random.Random(7)
        for delay in policy.delays(rng):
            assert 0.75 <= delay <= 1.25

    def test_attempt_one_means_no_retry(self):
        operation, calls = _flaky(1)
        policy = RetryPolicy(attempts=1)
        with pytest.raises(sqlite3.OperationalError):
            policy.run(operation, sleep=lambda _: None)
        assert calls["n"] == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"attempts": 0},
            {"base_delay": -0.1},
            {"base_delay": 2.0, "max_delay": 1.0},
            {"jitter": 1.0},
            {"jitter": -0.1},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            RetryPolicy(**kwargs)

    def test_default_policy_is_valid_and_bounded(self):
        assert DEFAULT_POLICY.attempts >= 2
        # Total worst-case backoff stays comfortably sub-5s so a stuck
        # lock cannot stall a serving path for long.
        assert sum(
            RetryPolicy(
                attempts=DEFAULT_POLICY.attempts,
                base_delay=DEFAULT_POLICY.base_delay,
                max_delay=DEFAULT_POLICY.max_delay,
                jitter=0.0,
            ).delays()
        ) < 5.0


class TestApplyBusyTimeout:
    def test_sets_the_pragma(self):
        conn = sqlite3.connect(":memory:")
        apply_busy_timeout(conn, 1234)
        (value,) = conn.execute("PRAGMA busy_timeout").fetchone()
        assert value == 1234

    def test_zero_disables_the_spin_wait(self):
        conn = sqlite3.connect(":memory:")
        apply_busy_timeout(conn, 0)
        (value,) = conn.execute("PRAGMA busy_timeout").fetchone()
        assert value == 0

    def test_negative_rejected(self):
        conn = sqlite3.connect(":memory:")
        with pytest.raises(ValidationError):
            apply_busy_timeout(conn, -1)
