"""Tests for the persistent per-worker answered-task sets (O(1) T(w))."""

import pytest

from repro.core.types import Answer
from repro.platform.sqlite_storage import SqliteAnswerTable
from repro.platform.storage import AnswerTable


@pytest.fixture(params=["memory", "sqlite"])
def table(request):
    if request.param == "memory":
        yield AnswerTable()
    else:
        sqlite_table = SqliteAnswerTable(":memory:")
        yield sqlite_table
        sqlite_table.close()


class TestAnsweredSets:
    def test_empty_worker(self, table):
        assert table.tasks_answered_by("nobody") == set()

    def test_set_is_maintained_across_inserts(self, table):
        table.insert(Answer("w", 0, 1))
        assert table.tasks_answered_by("w") == {0}
        table.insert(Answer("w", 1, 2))
        table.insert(Answer("other", 5, 1))
        assert table.tasks_answered_by("w") == {0, 1}
        assert table.tasks_answered_by("other") == {5}

    def test_repeated_lookups_stay_fresh(self, table):
        """The cached set must reflect inserts made after the first
        lookup (the lazy-hydration + live-update contract)."""
        assert table.tasks_answered_by("w") == set()
        table.insert(Answer("w", 3, 1))
        assert table.tasks_answered_by("w") == {3}
        first = table.tasks_answered_by("w")
        table.insert(Answer("w", 4, 1))
        assert table.tasks_answered_by("w") == {3, 4}
        # Same (live) object on the fast path — no per-call rebuild.
        assert table.tasks_answered_by("w") is first


def test_sqlite_hydrates_preexisting_rows(tmp_path):
    """A table opened over an existing database must see old answers."""
    path = str(tmp_path / "answers.db")
    writer = SqliteAnswerTable(path)
    writer.insert(Answer("w", 0, 1))
    writer.insert(Answer("w", 7, 2))
    writer.close()

    reader = SqliteAnswerTable(path)
    assert reader.tasks_answered_by("w") == {0, 7}
    reader.insert(Answer("w", 9, 1))
    assert reader.tasks_answered_by("w") == {0, 7, 9}
    reader.close()
