"""Tests for HIT logging and budget accounting."""

import pytest

from repro.errors import BudgetExhaustedError, ValidationError
from repro.platform.budget import Budget
from repro.platform.hit import DEFAULT_REWARD_PER_HIT, HIT, HITLog


class TestHIT:
    def test_requires_tasks(self):
        with pytest.raises(ValidationError):
            HIT(hit_id=0, worker_id="w", task_ids=())

    def test_negative_reward_rejected(self):
        with pytest.raises(ValidationError):
            HIT(hit_id=0, worker_id="w", task_ids=(1,), reward=-0.1)


class TestHITLog:
    def test_issue_and_indexes(self):
        log = HITLog()
        log.issue("w1", [1, 2, 3])
        log.issue("w2", [4])
        log.issue("w1", [5, 6])
        assert len(log) == 3
        assert len(log.for_worker("w1")) == 2
        assert log.total_assignments() == 6

    def test_sequential_ids(self):
        log = HITLog()
        a = log.issue("w", [1])
        b = log.issue("w", [2])
        assert (a.hit_id, b.hit_id) == (0, 1)

    def test_spend_accounting(self):
        """Paper: 360 tasks x 10 answers / 20 per HIT x $0.1 = $18."""
        log = HITLog()
        for _ in range(360 * 10 // 20):
            log.issue("w", list(range(20)))
        assert log.total_spend() == pytest.approx(18.0)
        assert DEFAULT_REWARD_PER_HIT == pytest.approx(0.10)


class TestBudget:
    def test_countdown(self):
        budget = Budget(5)
        budget.consume(3)
        assert budget.remaining == 2
        assert not budget.exhausted()
        budget.consume(2)
        assert budget.exhausted()

    def test_overconsumption_rejected(self):
        budget = Budget(2)
        with pytest.raises(BudgetExhaustedError):
            budget.consume(3)

    def test_invalid_initialisation(self):
        with pytest.raises(ValidationError):
            Budget(0)

    def test_negative_consume_rejected(self):
        with pytest.raises(ValidationError):
            Budget(1).consume(-1)
