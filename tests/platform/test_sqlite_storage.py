"""Tests for the SQLite-backed storage (durable variant of the tables)."""

import numpy as np
import pytest

from repro.core.types import Answer
from repro.errors import UnknownWorkerError, ValidationError
from repro.platform.sqlite_storage import (
    SqliteAnswerTable,
    SqliteWorkerQualityStore,
)


@pytest.fixture
def table():
    t = SqliteAnswerTable(":memory:")
    yield t
    t.close()


@pytest.fixture
def store():
    s = SqliteWorkerQualityStore(3, ":memory:")
    yield s
    s.close()


class TestSqliteAnswerTable:
    def test_insert_and_indexes(self, table):
        table.insert(Answer("w1", 0, 1))
        table.insert(Answer("w2", 0, 2))
        table.insert(Answer("w1", 1, 1))
        assert len(table) == 3
        assert len(table.for_task(0)) == 2
        assert len(table.for_worker("w1")) == 2
        assert table.tasks_answered_by("w1") == {0, 1}
        assert table.count_for_task(0) == 2

    def test_repeat_answer_rejected(self, table):
        table.insert(Answer("w", 0, 1))
        with pytest.raises(ValidationError):
            table.insert(Answer("w", 0, 2))

    def test_arrival_order(self, table):
        for i in range(5):
            table.insert(Answer(f"w{i}", 0, 1))
        workers = [a.worker_id for a in table.for_task(0)]
        assert workers == [f"w{i}" for i in range(5)]

    def test_has_answered(self, table):
        table.insert(Answer("w", 3, 1))
        assert table.has_answered("w", 3)
        assert not table.has_answered("w", 4)

    def test_all_roundtrips_answer_objects(self, table):
        answer = Answer("w", 7, 2)
        table.insert(answer)
        assert table.all() == [answer]

    def test_durable_across_connections(self, tmp_path):
        path = str(tmp_path / "answers.db")
        first = SqliteAnswerTable(path)
        first.insert(Answer("w", 0, 1))
        first.close()
        second = SqliteAnswerTable(path)
        assert len(second) == 1
        assert second.has_answered("w", 0)
        second.close()


class TestSqliteWorkerQualityStore:
    def test_unknown_worker(self, store):
        with pytest.raises(UnknownWorkerError):
            store.get("ghost")
        np.testing.assert_allclose(
            store.quality_or_default("ghost"), [0.7] * 3
        )

    def test_set_get_roundtrip(self, store):
        store.set(
            "w", np.array([0.9, 0.5, 0.2]), np.array([3.0, 1.0, 0.0])
        )
        stats = store.get("w")
        np.testing.assert_allclose(stats.quality, [0.9, 0.5, 0.2])
        np.testing.assert_allclose(stats.weight, [3.0, 1.0, 0.0])

    def test_zero_weight_defaults(self, store):
        store.set(
            "w", np.array([0.9, 0.5, 0.2]), np.array([3.0, 1.0, 0.0])
        )
        quality = store.quality_or_default("w")
        assert quality[2] == pytest.approx(0.7)

    def test_theorem1_merge_matches_memory_store(self, store):
        from repro.core.quality_store import WorkerQualityStore

        memory = WorkerQualityStore(3)
        batches = [
            (np.array([0.8, 0.6, 0.4]), np.array([2.0, 1.0, 0.5])),
            (np.array([0.5, 0.9, 0.7]), np.array([1.0, 3.0, 0.0])),
        ]
        for quality, weight in batches:
            store.merge("w", quality, weight)
            memory.merge("w", quality, weight)
        np.testing.assert_allclose(
            store.get("w").quality, memory.get("w").quality
        )
        np.testing.assert_allclose(
            store.get("w").weight, memory.get("w").weight
        )

    def test_blended_quality(self, store):
        store.set(
            "w", np.array([1.0, 0.0, 0.7]), np.array([9.0, 0.0, 1.0])
        )
        blended = store.blended_quality("w", pseudo_weight=1.0)
        assert blended[0] == pytest.approx((9.0 + 0.7) / 10)
        assert blended[1] == pytest.approx(0.7)

    def test_golden_initialisation(self, store):
        stats = store.initialize_from_golden(
            "w",
            golden_answers={0: 1, 1: 1},
            golden_truths={0: 1, 1: 2},
            domain_vectors={
                0: np.array([1.0, 0.0, 0.0]),
                1: np.array([1.0, 0.0, 0.0]),
            },
        )
        # 1 of 2 correct with unit shrinkage: (1 + 0.7) / 3.
        assert stats.quality[0] == pytest.approx(1.7 / 3)

    def test_durable_across_connections(self, tmp_path):
        path = str(tmp_path / "workers.db")
        first = SqliteWorkerQualityStore(2, path)
        first.set("w", np.array([0.9, 0.4]), np.array([5.0, 2.0]))
        first.close()
        second = SqliteWorkerQualityStore(2, path)
        assert "w" in second
        np.testing.assert_allclose(
            second.get("w").quality, [0.9, 0.4]
        )
        second.close()

    def test_known_workers_and_snapshot(self, store):
        store.set("a", np.full(3, 0.5), np.ones(3))
        store.set("b", np.full(3, 0.6), np.ones(3))
        assert set(store.known_workers()) == {"a", "b"}
        assert set(store.snapshot()) == {"a", "b"}

    def test_validation(self, store):
        with pytest.raises(ValidationError):
            store.set("w", np.array([0.5]), np.array([1.0]))
        with pytest.raises(ValidationError):
            store.merge("w", np.full(3, 0.5), np.array([-1.0, 0, 0]))
        with pytest.raises(ValidationError):
            SqliteWorkerQualityStore(0)
