"""Tests for journal salvage: truncating a torn tail to the last
CRC-consistent batch boundary.

Corruption is staged the way a real crash (or file editor) would leave
it: orphan rows with no batch record, a batch whose rows were altered
after commit, a batch with missing rows. Salvage must always cut back
to the longest *replayable prefix* — never keep a valid batch stranded
behind a corrupt one — and never touch intact committed batches.
"""

import sqlite3

import pytest

from repro.core.types import Answer
from repro.errors import JournalCorruptionError
from repro.platform.journal import (
    KIND_ANSWER,
    AnswerJournal,
    SalvageReport,
)


@pytest.fixture()
def conn():
    connection = sqlite3.connect(":memory:")
    yield connection
    connection.close()


def _filled_journal(conn, batches=3, rows_per_batch=4):
    """A journal holding ``batches`` committed batches of answers."""
    journal = AnswerJournal(conn, batch_size=rows_per_batch)
    task = 0
    for _ in range(batches * rows_per_batch):
        journal.record_answer(Answer("w", task, 1), task_row=task)
        task += 1
    assert journal.pending == 0
    return journal


def _tear_tail(conn, rows=2, batch=99):
    """Append rows with no batch record, as a torn final write would."""
    (next_seq,) = conn.execute(
        "SELECT COALESCE(MAX(seq), -1) + 1 FROM answers_log"
    ).fetchone()
    for offset in range(rows):
        conn.execute(
            "INSERT INTO answers_log "
            "(seq, kind, task_row, task_id, worker_id, choice, ts, "
            "batch) VALUES (?, ?, ?, ?, ?, ?, 0.0, ?)",
            (next_seq + offset, KIND_ANSWER, 0, 0, "w", 1, batch),
        )
    conn.commit()
    return next_seq


class TestSalvageClean:
    def test_clean_journal_reports_clean(self, conn):
        journal = _filled_journal(conn)
        report = journal.salvage()
        assert report.clean
        assert report.problem is None
        assert report.dropped_rows == 0
        assert report.valid_through_seq == journal.last_committed_seq
        journal.validate()

    def test_empty_journal_is_clean(self, conn):
        journal = AnswerJournal(conn, batch_size=4)
        report = journal.salvage()
        assert report.clean
        assert report.valid_through_seq == -1


class TestSalvageTornTail:
    def test_orphan_rows_are_dropped(self, conn):
        journal = _filled_journal(conn, batches=3, rows_per_batch=4)
        torn_at = _tear_tail(conn, rows=2)
        with pytest.raises(JournalCorruptionError):
            journal.validate()

        report = journal.salvage()
        assert not report.clean
        assert report.dropped_rows == 2
        assert report.dropped_answers == 2
        assert report.dropped_batches == 0
        assert report.valid_through_seq == torn_at - 1
        assert "torn final write" in report.problem
        journal.validate()  # the salvaged journal is consistent
        assert len(journal) == 12  # all committed rows survived

    def test_dry_run_diagnoses_without_deleting(self, conn):
        journal = _filled_journal(conn)
        _tear_tail(conn, rows=2)
        report = journal.salvage(dry_run=True)
        assert report.dry_run
        assert report.dropped_rows == 2
        # Nothing was removed: validation still fails.
        with pytest.raises(JournalCorruptionError):
            journal.validate()

    def test_salvaged_journal_accepts_new_flushes(self, conn):
        """Seq/batch cursors re-derive after the cut: new writes must
        not collide with surviving rows."""
        journal = _filled_journal(conn, batches=2, rows_per_batch=3)
        _tear_tail(conn, rows=1)
        journal.salvage()
        journal.record_answer(Answer("w2", 50, 2), task_row=50)
        journal.flush()
        journal.validate()
        entries = list(journal.replay())
        assert entries[-1].worker_id == "w2"
        seqs = [e.seq for e in entries]
        assert seqs == sorted(set(seqs))  # no seq reuse


class TestSalvageCorruptBatch:
    def test_altered_rows_cut_from_that_batch(self, conn):
        journal = _filled_journal(conn, batches=3, rows_per_batch=4)
        # Flip one choice inside the middle batch: its CRC now lies.
        conn.execute(
            "UPDATE answers_log SET choice = 3 WHERE seq = 5"
        )
        conn.commit()
        report = journal.salvage()
        assert not report.clean
        assert "CRC" in report.problem
        # The cut removes the corrupt batch AND the valid batch behind
        # it — replay is prefix-ordered.
        assert report.dropped_rows == 8
        assert report.dropped_batches == 2
        assert report.valid_through_seq == 3
        journal.validate()
        assert len(journal) == 4

    def test_missing_rows_cut_from_that_batch(self, conn):
        journal = _filled_journal(conn, batches=2, rows_per_batch=4)
        conn.execute("DELETE FROM answers_log WHERE seq = 6")
        conn.commit()
        report = journal.salvage()
        assert not report.clean
        assert report.valid_through_seq == 3
        journal.validate()

    def test_orphans_and_corrupt_batch_cut_at_the_earlier(self, conn):
        journal = _filled_journal(conn, batches=3, rows_per_batch=4)
        conn.execute(
            "UPDATE answers_log SET choice = 3 WHERE seq = 5"
        )
        conn.commit()
        _tear_tail(conn, rows=2)
        report = journal.salvage()
        # The corrupt middle batch (first bad seq 4) wins over the torn
        # tail (seq 12): everything from 4 on goes.
        assert report.valid_through_seq == 3
        journal.validate()


class TestSalvageReport:
    def test_report_is_frozen(self):
        report = SalvageReport(
            valid_through_seq=3,
            dropped_rows=1,
            dropped_answers=1,
            dropped_batches=0,
            dry_run=False,
            problem="x",
        )
        with pytest.raises(Exception):
            report.dropped_rows = 2
