"""Tests for the platform simulator."""

import pytest

from repro.baselines.engines import RandomBaselineEngine
from repro.crowd.worker_pool import WorkerPool, WorkerPoolConfig
from repro.datasets import make_dataset
from repro.errors import ValidationError
from repro.platform.amt_sim import PlatformSimulator


@pytest.fixture(scope="module")
def world():
    dataset = make_dataset("item", seed=31, tasks_per_domain=6)
    active = tuple(d.taxonomy_index for d in dataset.domains)
    pool = WorkerPool.generate(
        WorkerPoolConfig(
            num_workers=10,
            num_domains=dataset.taxonomy.size,
            active_domains=active,
            seed=32,
        )
    )
    return dataset, pool


class TestPlatformSimulator:
    def test_budget_respected(self, world):
        dataset, pool = world
        simulator = PlatformSimulator(
            dataset, pool, answers_per_task=4, hit_size=3, seed=33
        )
        report = simulator.run(RandomBaselineEngine())
        assert report.total_answers == dataset.num_tasks * 4

    def test_hit_log_consistent(self, world):
        dataset, pool = world
        simulator = PlatformSimulator(
            dataset, pool, answers_per_task=2, hit_size=3, seed=34
        )
        report = simulator.run(RandomBaselineEngine())
        assert report.hit_log.total_assignments() == report.total_answers
        for hit in report.hit_log.all():
            assert 1 <= len(hit.task_ids) <= 3

    def test_deterministic(self, world):
        dataset, pool = world
        reports = []
        for _ in range(2):
            simulator = PlatformSimulator(
                dataset, pool, answers_per_task=2, hit_size=3, seed=35
            )
            reports.append(simulator.run(RandomBaselineEngine(seed=1)))
        assert reports[0].truths == reports[1].truths
        assert reports[0].accuracy == reports[1].accuracy

    def test_assignment_timing_recorded(self, world):
        dataset, pool = world
        simulator = PlatformSimulator(
            dataset, pool, answers_per_task=2, hit_size=3, seed=36
        )
        report = simulator.run(RandomBaselineEngine())
        assert report.max_assign_seconds >= report.mean_assign_seconds > 0

    def test_invalid_parameters(self, world):
        dataset, pool = world
        with pytest.raises(ValidationError):
            PlatformSimulator(dataset, pool, answers_per_task=0)
        with pytest.raises(ValidationError):
            PlatformSimulator(dataset, pool, hit_size=0)

    def test_terminates_when_pool_exhausted(self, world):
        """With a tiny per-worker cap the budget cannot be filled; the
        simulator must stop instead of spinning."""
        dataset, pool = world
        simulator = PlatformSimulator(
            dataset,
            pool,
            answers_per_task=9,
            hit_size=3,
            max_hits_per_worker=1,
            seed=37,
        )
        report = simulator.run(RandomBaselineEngine())
        assert report.total_answers <= 10 * 3  # 10 workers x 1 HIT x 3
