"""Tests for the durable system database and batch answer ingestion."""

import numpy as np
import pytest

from repro.core.types import Answer, Task
from repro.errors import UnknownTaskError, ValidationError
from repro.platform.sqlite_storage import (
    SqliteAnswerTable,
    SqliteSystemDatabase,
)
from repro.platform.storage import AnswerTable, SystemDatabase


def _task(i, truth=1):
    return Task(
        task_id=i,
        text=f"task {i}",
        num_choices=3,
        domain_vector=np.array([0.2, 0.3, 0.5]),
        ground_truth=truth,
        true_domain=2,
        distractor=2,
    )


@pytest.fixture()
def db():
    database = SqliteSystemDatabase()
    yield database
    database.close()


class TestSqliteSystemDatabase:
    def test_bulk_add_and_roundtrip(self, db):
        db.add_tasks([_task(i) for i in range(10)])
        assert len(db) == 10
        assert db.task_ids() == list(range(10))
        task = db.task(4)
        assert task.text == "task 4"
        assert task.num_choices == 3
        assert task.ground_truth == 1
        assert task.true_domain == 2
        assert task.distractor == 2
        np.testing.assert_allclose(
            task.domain_vector, [0.2, 0.3, 0.5]
        )

    def test_tasks_id_ordered(self, db):
        db.add_tasks([_task(5), _task(1), _task(3)])
        assert [t.task_id for t in db.tasks()] == [1, 3, 5]

    def test_duplicate_batch_rolls_back(self, db):
        db.add_tasks([_task(0), _task(1)])
        with pytest.raises(ValidationError, match="duplicate task id 1"):
            db.add_tasks([_task(2), _task(1)])
        assert len(db) == 2  # nothing from the bad batch persisted

    def test_duplicate_within_batch_named(self, db):
        with pytest.raises(ValidationError, match="duplicate task id 6"):
            db.add_tasks([_task(6), _task(6)])

    def test_non_duplicate_constraint_violation_surfaced(self, db):
        """Integrity errors that are not duplicate ids still raise
        ValidationError (not a bare StopIteration)."""
        broken = _task(0)
        broken.text = None  # violates the NOT NULL column constraint
        with pytest.raises(ValidationError, match="storage constraint"):
            db.add_tasks([broken])

    def test_insert_task_compatibility(self, db):
        db.insert_task(_task(0))
        db.insert_tasks([_task(1), _task(2)])
        assert len(db) == 3
        with pytest.raises(ValidationError):
            db.insert_task(_task(0))

    def test_unknown_task(self, db):
        with pytest.raises(UnknownTaskError):
            db.task(99)

    def test_optional_fields_roundtrip_none(self, db):
        db.add_tasks(
            [Task(task_id=0, text="bare", num_choices=2)]
        )
        task = db.task(0)
        assert task.domain_vector is None
        assert task.ground_truth is None
        assert task.true_domain is None

    def test_golden_registry(self, db):
        db.add_tasks([_task(i) for i in range(5)])
        db.mark_golden([3, 1])
        assert db.golden_ids == [3, 1]
        db.mark_golden([2])
        assert db.golden_ids == [2]

    def test_golden_requires_ground_truth(self, db):
        db.add_tasks([Task(task_id=0, text="x", num_choices=2)])
        with pytest.raises(ValidationError, match="no ground truth"):
            db.mark_golden([0])

    def test_shared_answer_table(self, db):
        db.add_tasks([_task(0), _task(1)])
        db.add_answers([Answer("w", 0, 1), Answer("w", 1, 2)])
        assert len(db.answers) == 2
        assert db.answers.tasks_answered_by("w") == {0, 1}

    def test_parity_with_in_memory(self, db):
        """Same ops on both backends -> same observable state."""
        memory = SystemDatabase()
        tasks = [_task(i) for i in range(6)]
        for backend in (db, memory):
            backend.add_tasks(tasks)
            backend.mark_golden([4, 0])
            backend.add_answers(
                [Answer("w1", 0, 1), Answer("w2", 0, 2), Answer("w1", 3, 3)]
            )
        assert db.task_ids() == memory.task_ids()
        assert db.golden_ids == memory.golden_ids
        assert len(db.answers) == len(memory.answers)
        assert db.answers.tasks_answered_by("w1") == (
            memory.answers.tasks_answered_by("w1")
        )
        assert [
            (a.worker_id, a.task_id, a.choice)
            for a in db.answers.for_task(0)
        ] == [
            (a.worker_id, a.task_id, a.choice)
            for a in memory.answers.for_task(0)
        ]


class TestBatchAnswers:
    @pytest.mark.parametrize("table_cls", [AnswerTable, SqliteAnswerTable])
    def test_batch_insert(self, table_cls):
        table = table_cls()
        table.add_answers(
            [Answer("w1", 0, 1), Answer("w1", 1, 2), Answer("w2", 0, 1)]
        )
        assert len(table) == 3
        assert table.tasks_answered_by("w1") == {0, 1}

    @pytest.mark.parametrize("table_cls", [AnswerTable, SqliteAnswerTable])
    def test_batch_at_most_once_atomic(self, table_cls):
        table = table_cls()
        table.insert(Answer("w1", 0, 1))
        with pytest.raises(ValidationError):
            table.add_answers([Answer("w2", 0, 1), Answer("w1", 0, 2)])
        with pytest.raises(ValidationError):
            table.add_answers([Answer("w3", 0, 1), Answer("w3", 0, 2)])
        # Failed batches leave no partial rows behind.
        assert len(table) == 1
        assert table.tasks_answered_by("w2") == set()
        assert table.tasks_answered_by("w3") == set()
