"""Tests for candidate generation."""

import numpy as np

from repro.linking.candidates import generate_candidates


class TestGenerateCandidates:
    def test_all_senses_returned(self, paper_kb):
        candidates = generate_candidates("michael jordan", paper_kb)
        assert len(candidates) == 3

    def test_priors_follow_commonness(self, paper_kb):
        candidates = generate_candidates("michael jordan", paper_kb)
        by_id = dict(
            zip(
                (c.concept_id for c in candidates.concepts),
                candidates.priors,
            )
        )
        assert by_id[0] == 0.7
        assert by_id[1] == 0.2
        assert by_id[2] == 0.1

    def test_unknown_alias_empty(self, paper_kb):
        assert len(generate_candidates("unknown thing", paper_kb)) == 0

    def test_unambiguous_alias(self, paper_kb):
        candidates = generate_candidates("kobe bryant", paper_kb)
        assert len(candidates) == 1
        np.testing.assert_array_equal(candidates.priors, [1.0])
