"""Tests for mention detection."""

import pytest

from repro.linking.mention import Mention, context_tokens, detect_mentions


class TestDetectMentions:
    def test_detects_known_entities(self, paper_kb):
        mentions = detect_mentions(
            "Does Michael Jordan win more NBA championships than "
            "Kobe Bryant?",
            paper_kb,
        )
        surfaces = [m.surface for m in mentions]
        assert surfaces == ["michael jordan", "nba", "kobe bryant"]

    def test_longest_match_wins(self, paper_kb):
        # "Michael Jordan" must match as one mention, not fragments.
        mentions = detect_mentions("Michael Jordan", paper_kb)
        assert len(mentions) == 1
        assert mentions[0].token_length == 2

    def test_no_overlap(self, paper_kb):
        mentions = detect_mentions(
            "Michael Jordan Michael Jordan", paper_kb
        )
        assert len(mentions) == 2
        assert mentions[0].token_start == 0
        assert mentions[1].token_start == 2

    def test_no_entities(self, paper_kb):
        assert detect_mentions("hello world nothing here", paper_kb) == []

    def test_positions_recorded(self, paper_kb):
        mentions = detect_mentions("I think NBA rocks", paper_kb)
        assert mentions[0].token_start == 2
        assert mentions[0].token_length == 1


class TestContextTokens:
    def test_excludes_mention_spans_and_stopwords(self, paper_kb):
        text = "Does Michael Jordan win more NBA championships"
        mentions = detect_mentions(text, paper_kb)
        context = context_tokens(text, mentions)
        assert "michael" not in context
        assert "jordan" not in context
        assert "nba" not in context
        assert "does" not in context  # stopword
        assert "championships" in context
        assert "win" in context

    def test_empty_text(self, paper_kb):
        assert context_tokens("", []) == []
