"""Tests for context disambiguation."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.linking.candidates import generate_candidates
from repro.linking.disambiguate import score_candidates, truncate_top_c


class TestScoreCandidates:
    def test_context_boosts_matching_sense(self, paper_kb):
        candidates = generate_candidates("michael jordan", paper_kb)
        scores_sport = score_candidates(
            candidates, ["championships", "basketball"]
        )
        scores_ml = score_candidates(
            candidates, ["machine", "learning"]
        )
        ids = [c.concept_id for c in candidates.concepts]
        player, professor = ids.index(0), ids.index(1)
        # Sports context raises the player's relative score...
        assert (
            scores_sport[player] / scores_sport[professor]
            > scores_ml[player] / scores_ml[professor]
        )

    def test_no_context_falls_back_to_priors(self, paper_kb):
        candidates = generate_candidates("michael jordan", paper_kb)
        scores = score_candidates(candidates, [])
        np.testing.assert_allclose(
            scores / scores.sum(),
            candidates.priors / candidates.priors.sum(),
        )

    def test_invalid_smoothing_rejected(self, paper_kb):
        candidates = generate_candidates("nba", paper_kb)
        with pytest.raises(ValidationError):
            score_candidates(candidates, [], smoothing=0.0)


class TestTruncateTopC:
    def test_orders_descending(self):
        kept = truncate_top_c(np.array([0.1, 0.9, 0.5]), 2)
        assert kept == [1, 2]

    def test_keeps_all_when_c_large(self):
        kept = truncate_top_c(np.array([0.3, 0.2]), 10)
        assert kept == [0, 1]

    def test_rejects_non_positive_c(self):
        with pytest.raises(ValidationError):
            truncate_top_c(np.array([1.0]), 0)
