"""Batch linking vs sequential linking: bit-identical outputs.

``link_batch`` and ``link`` share the candidate cache and the scoring
code path, so per text their outputs — and therefore the domain vectors
computed from them — must be *bit-identical*, cache hits and misses
alike. Also covers the cache-disabled baseline used by the prepare
benchmark.
"""

import numpy as np
import pytest

from repro.core.dve import DomainVectorEstimator
from repro.errors import ValidationError
from repro.linking import EntityLinker

TEXTS = [
    "Does Michael Jordan win more NBA championships than Kobe Bryant?",
    "Michael Jordan published machine learning papers",
    "Kobe Bryant and Michael Jordan are NBA legends",
    "nothing linkable in this text",
    "NBA",
    # Repeats drive cache hits with different contexts.
    "Does Michael Jordan win more NBA championships than Kobe Bryant?",
    "Michael Jordan NBA Michael Jordan",
]


def _assert_entities_identical(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.surface == b.surface
        assert a.concept_ids == b.concept_ids
        np.testing.assert_array_equal(a.probabilities, b.probabilities)
        np.testing.assert_array_equal(a.indicators, b.indicators)


class TestLinkBatch:
    def test_batch_identical_to_sequential(self, paper_kb):
        batch_linker = EntityLinker(paper_kb)
        seq_linker = EntityLinker(paper_kb)
        batched = batch_linker.link_batch(TEXTS)
        for text, entities in zip(TEXTS, batched):
            _assert_entities_identical(entities, seq_linker.link(text))

    def test_batch_identical_to_uncached(self, paper_kb):
        cached = EntityLinker(paper_kb)
        uncached = EntityLinker(paper_kb, candidate_cache=False)
        batched = cached.link_batch(TEXTS)
        for text, entities in zip(TEXTS, batched):
            _assert_entities_identical(entities, uncached.link(text))

    def test_domain_vectors_bit_identical(self, paper_kb):
        """The satellite criterion: same domain vectors to the bit."""
        m = paper_kb.num_domains
        batch_estimator = DomainVectorEstimator(
            EntityLinker(paper_kb), m
        )
        seq_estimator = DomainVectorEstimator(EntityLinker(paper_kb), m)
        R = batch_estimator.estimate_batch(TEXTS)
        for row, text in zip(R, TEXTS):
            np.testing.assert_array_equal(
                row, seq_estimator.estimate(text)
            )

    def test_cache_grows_once_per_surface(self, paper_kb):
        linker = EntityLinker(paper_kb)
        assert linker.cached_surfaces == 0
        linker.link_batch(TEXTS)
        surfaces = linker.cached_surfaces
        assert surfaces > 0
        linker.link_batch(TEXTS)
        assert linker.cached_surfaces == surfaces

    def test_uncached_linker_reports_zero(self, paper_kb):
        linker = EntityLinker(paper_kb, candidate_cache=False)
        linker.link_batch(TEXTS)
        assert linker.cached_surfaces == 0

    def test_top_c_override(self, paper_kb):
        linker = EntityLinker(paper_kb, top_c=20)
        batched = linker.link_batch(["Michael Jordan"], top_c=1)
        assert batched[0][0].num_candidates == 1
        with pytest.raises(ValidationError):
            linker.link_batch(["NBA"], top_c=0)

    def test_empty_batch(self, paper_kb):
        assert EntityLinker(paper_kb).link_batch([]) == []

    def test_kb_indicator_matrix_is_shared(self, paper_kb):
        """Identical kept candidate tuples reuse one stacked matrix."""
        linker = EntityLinker(paper_kb)
        first, second = linker.link_batch(["NBA games", "NBA finals"])
        assert first[0].indicators is second[0].indicators
