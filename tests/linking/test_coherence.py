"""Tests for coherence-aware linking (correlated concepts)."""

import numpy as np
import pytest

from repro.core.dve import DomainVectorEstimator
from repro.errors import ValidationError
from repro.linking.coherence import CoherentEntityLinker
from repro.linking.wikifier import EntityLinker


@pytest.fixture
def linkers(paper_kb):
    base = EntityLinker(paper_kb)
    return base, CoherentEntityLinker(base, coherence_weight=2.0)


class TestCoherentEntityLinker:
    def test_single_entity_unchanged(self, linkers):
        base, coherent = linkers
        a = base.link("Kobe Bryant")
        b = coherent.link("Kobe Bryant")
        np.testing.assert_allclose(
            a[0].probabilities, b[0].probabilities
        )

    def test_zero_weight_is_identity(self, paper_kb):
        base = EntityLinker(paper_kb)
        passthrough = CoherentEntityLinker(base, coherence_weight=0.0)
        text = "Michael Jordan NBA Kobe Bryant"
        for a, b in zip(base.link(text), passthrough.link(text)):
            np.testing.assert_allclose(a.probabilities, b.probabilities)

    def test_coherence_boosts_shared_domain_sense(self, linkers):
        """In 'Michael Jordan ... NBA ... Kobe Bryant', the basketball
        sense of Michael Jordan shares the Sports domain with the other
        entities and must gain probability under coherence."""
        base, coherent = linkers
        text = "Michael Jordan NBA Kobe Bryant"
        independent = base.link(text)
        joint = coherent.link(text)
        jordan_before = dict(
            zip(independent[0].concept_ids, independent[0].probabilities)
        )
        jordan_after = dict(
            zip(joint[0].concept_ids, joint[0].probabilities)
        )
        # Concept 0 = the player (sports+films); concept 1 = the
        # professor (no domains).
        assert jordan_after[0] > jordan_before[0]
        assert jordan_after[1] < jordan_before[1]

    def test_distributions_stay_valid(self, linkers):
        _, coherent = linkers
        for entity in coherent.link("Michael Jordan NBA Kobe Bryant"):
            assert entity.probabilities.sum() == pytest.approx(1.0)
            assert np.all(entity.probabilities >= 0)

    def test_reduces_linking_ambiguity(self, linkers, paper_kb):
        """Coherence concentrates each mention's linking distribution
        (entropy drops) for mutually reinforcing entities.

        Note the *domain vector* is not guaranteed to sharpen — the
        player's indicator spans Sports and Films, so boosting him can
        legitimately move mass between domains; the invariant is about
        the linking distributions.
        """
        from repro.utils.math import entropy_unchecked

        base, coherent = linkers
        text = "Michael Jordan NBA Kobe Bryant"
        for before, after in zip(base.link(text), coherent.link(text)):
            assert entropy_unchecked(after.probabilities) <= (
                entropy_unchecked(before.probabilities) + 1e-9
            )

    def test_invalid_params(self, paper_kb):
        base = EntityLinker(paper_kb)
        with pytest.raises(ValidationError):
            CoherentEntityLinker(base, coherence_weight=-1.0)
        with pytest.raises(ValidationError):
            CoherentEntityLinker(base, rounds=0)

    def test_exposes_kb_and_top_c(self, linkers, paper_kb):
        _, coherent = linkers
        assert coherent.kb is paper_kb
        assert coherent.top_c == 20
