"""Tests for the entity-linker facade."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.linking.wikifier import EntityLinker, LinkedEntity


class TestEntityLinker:
    def test_end_to_end_shapes(self, paper_kb):
        linker = EntityLinker(paper_kb)
        entities = linker.link(
            "Does Michael Jordan win more NBA championships than "
            "Kobe Bryant?"
        )
        assert len(entities) == 3
        for entity in entities:
            assert entity.probabilities.sum() == pytest.approx(1.0)
            assert entity.indicators.shape == (
                entity.num_candidates,
                paper_kb.num_domains,
            )

    def test_sports_context_prefers_player(self, paper_kb):
        linker = EntityLinker(paper_kb)
        entities = linker.link(
            "Does Michael Jordan win more NBA championships than "
            "Kobe Bryant?"
        )
        jordan = entities[0]
        best = jordan.concept_ids[int(np.argmax(jordan.probabilities))]
        assert best == 0  # the basketball player

    def test_top_c_truncation(self, paper_kb):
        linker = EntityLinker(paper_kb, top_c=1)
        entities = linker.link("Michael Jordan")
        assert entities[0].num_candidates == 1
        assert entities[0].probabilities[0] == pytest.approx(1.0)

    def test_per_call_top_c_override(self, paper_kb):
        linker = EntityLinker(paper_kb, top_c=20)
        entities = linker.link("Michael Jordan", top_c=2)
        assert entities[0].num_candidates == 2

    def test_no_entities(self, paper_kb):
        linker = EntityLinker(paper_kb)
        assert linker.link("nothing to see here") == []

    def test_invalid_top_c(self, paper_kb):
        with pytest.raises(ValidationError):
            EntityLinker(paper_kb, top_c=0)
        linker = EntityLinker(paper_kb)
        with pytest.raises(ValidationError):
            linker.link("NBA", top_c=0)


class TestLinkedEntity:
    def test_misaligned_probabilities_rejected(self):
        with pytest.raises(ValidationError):
            LinkedEntity(
                surface="x",
                concept_ids=(1, 2),
                probabilities=np.array([1.0]),
                indicators=np.zeros((2, 3)),
            )

    def test_misaligned_indicators_rejected(self):
        with pytest.raises(ValidationError):
            LinkedEntity(
                surface="x",
                concept_ids=(1,),
                probabilities=np.array([1.0]),
                indicators=np.zeros((2, 3)),
            )
