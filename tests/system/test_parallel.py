"""The parallel serving plane: pool picks, coherence, degradation.

Three layers of guarantees:

1. **Bit-identity** — a :class:`repro.system.parallel.ServingPool`
   serves the same picks as the single-process
   :class:`repro.core.serving.AssignmentIndex` at every worker count,
   and a ``workers >= 1`` campaign replays a ``workers = 0`` campaign
   pick for pick.
2. **Coherence** — the quiesce/write-section state machine keeps
   workers out of the arena while the owner writes, and selects pick up
   the writes afterwards.
3. **Degradation** — this file owns the dedicated scenarios for the
   three ``parallel.*`` fault points the crash matrix delegates here
   (``tests/integration/test_crash_matrix.py``, ``DEDICATED``): armed
   pre-fork, each point kills a child process, and the parent degrades
   to the single-process path with identical outputs — no exception
   reaches the caller, no shared-memory segment leaks.
"""

import os

import numpy as np
import pytest

from repro.core.arena import AnswerLog
from repro.core.incremental import IncrementalTruthInference
from repro.core.quality_store import WorkerQualityStore
from repro.core.serving import AssignmentIndex
from repro.core.shared_arena import SharedStateArena
from repro.core.truth_inference import TruthInference
from repro.core.types import Answer, Task
from repro.datasets import make_dataset
from repro.errors import ServingPoolError, ValidationError
from repro.linking import EntityLinker
from repro.platform import faults
from repro.system import DocsConfig, DocsSystem
from repro.system.parallel import ServingPool
from repro.utils.rng import make_rng

M_DOMAINS = 4
NUM_WORKERS = 5
WORKERS = [f"w{i}" for i in range(6)]

pytestmark = pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="the serving pool requires the fork start method",
)


def shm_leaks():
    """Parallel-plane /dev/shm entries still alive."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return [
        f
        for f in os.listdir("/dev/shm")
        if f.startswith(("docsarena", "docscols"))
    ]


# -- core-level pool fixtures ------------------------------------------------


def _make_tasks(rng, count, base_id=0):
    return [
        Task(
            task_id=base_id + i,
            text=f"task {base_id + i}",
            num_choices=int(rng.integers(2, 5)),
            domain_vector=rng.dirichlet(np.ones(M_DOMAINS)),
            ground_truth=1,
        )
        for i in range(count)
    ]


def _make_engine(arena=None, seed=2, count=30):
    rng = make_rng(seed)
    store = WorkerQualityStore(M_DOMAINS)
    for j in range(NUM_WORKERS):
        store.set(
            f"w{j}",
            rng.uniform(0.4, 0.95, size=M_DOMAINS),
            np.full(M_DOMAINS, 2.0),
        )
    engine = IncrementalTruthInference(store, arena=arena)
    engine.register_tasks(_make_tasks(make_rng(seed + 1), count))
    seen = set()
    for _ in range(60):
        task_id = int(rng.integers(count))
        worker = f"w{int(rng.integers(NUM_WORKERS))}"
        if (worker, task_id) in seen:
            continue
        seen.add((worker, task_id))
        ell = engine.arena.view(task_id).num_choices
        engine.submit(
            Answer(worker, task_id, int(rng.integers(1, ell + 1)))
        )
    return engine


def _requests(arena, seed, count=6):
    """Select-level requests: (quality, take, excluded, eligible,
    available) — what the assigner hands the pool after translation."""
    rng = make_rng(seed)
    n = len(arena)
    out = []
    for _ in range(count):
        quality = rng.uniform(0.4, 0.95, size=M_DOMAINS)
        excluded = {
            int(r) for r in rng.choice(n, size=4, replace=False)
        }
        out.append((quality, 3, excluded, None, n - len(excluded)))
    return out


class TestServingPoolPicks:
    @pytest.mark.parametrize("num_workers", [1, 2, 3])
    def test_bit_identical_to_local_index(self, num_workers):
        engine = _make_engine(arena=SharedStateArena(M_DOMAINS))
        arena = engine.arena
        try:
            arena.refresh_entropies()
            oracle = AssignmentIndex(arena)
            with ServingPool(arena, num_workers) as pool:
                for request in _requests(arena, seed=40):
                    assert pool.select(*request) == oracle.select(
                        *request
                    )
        finally:
            arena.close()

    def test_select_many_preserves_request_order(self):
        engine = _make_engine(arena=SharedStateArena(M_DOMAINS))
        arena = engine.arena
        try:
            oracle = AssignmentIndex(arena)
            requests = _requests(arena, seed=41, count=9)
            with ServingPool(arena, 3) as pool:
                batches = pool.select_many(requests)
            assert batches == [oracle.select(*r) for r in requests]
        finally:
            arena.close()

    def test_writes_visible_after_write_section(self):
        """Owner-side mutations inside a write section are served by
        the workers afterwards, still matching the local oracle."""
        engine = _make_engine(arena=SharedStateArena(M_DOMAINS))
        arena = engine.arena
        try:
            oracle = AssignmentIndex(arena)
            request = _requests(arena, seed=42, count=1)[0]
            with ServingPool(arena, 2) as pool:
                assert pool.select(*request) == oracle.select(*request)
                with pool.write_section():
                    for choice in (1, 2):
                        engine.submit(
                            Answer(f"w{choice}", 0, choice)
                        )
                    engine.register_tasks(
                        _make_tasks(make_rng(9), 40, base_id=700)
                    )
                grown = _requests(arena, seed=42, count=1)[0]
                assert pool.select(*grown) == oracle.select(*grown)
        finally:
            arena.close()

    def test_rejects_workerless_pool_and_heap_arena(self):
        engine = _make_engine(arena=SharedStateArena(M_DOMAINS))
        try:
            with pytest.raises(ValidationError):
                ServingPool(engine.arena, 0)
        finally:
            engine.arena.close()


class TestServingPoolStateMachine:
    def test_selects_illegal_mid_write(self):
        engine = _make_engine(arena=SharedStateArena(M_DOMAINS))
        arena = engine.arena
        try:
            request = _requests(arena, seed=43, count=1)[0]
            with ServingPool(arena, 2) as pool:
                assert pool.state == "serving"
                with pool.write_section():
                    assert pool.state == "writing"
                    with pytest.raises(ServingPoolError):
                        pool.select(*request)
                assert pool.state == "serving"
                assert pool.select(*request)
        finally:
            arena.close()

    def test_quiesce_returns_per_worker_stats(self):
        engine = _make_engine(arena=SharedStateArena(M_DOMAINS))
        arena = engine.arena
        try:
            with ServingPool(arena, 2) as pool:
                pool.select_many(_requests(arena, seed=44))
                stats = pool.quiesce()
                assert len(stats) == 2
                assert all(isinstance(s, dict) for s in stats)
                assert pool.state == "serving"
        finally:
            arena.close()

    def test_closed_pool_refuses_and_close_is_idempotent(self):
        engine = _make_engine(arena=SharedStateArena(M_DOMAINS))
        arena = engine.arena
        try:
            pool = ServingPool(arena, 2)
            request = _requests(arena, seed=45, count=1)[0]
            pool.close()
            pool.close()
            with pytest.raises(ServingPoolError):
                pool.select(*request)
        finally:
            arena.close()
        assert shm_leaks() == []


# -- campaign-level equivalence ----------------------------------------------


@pytest.fixture()
def dataset():
    return make_dataset("4d", seed=21, tasks_per_domain=6)


def _campaign_config(workers, **overrides):
    knobs = dict(
        golden_count=6,
        hit_size=3,
        rerun_interval=10_000,
        ti_max_iterations=10,
        workers=workers,
        seed=7,
    )
    knobs.update(overrides)
    return DocsConfig(**knobs)


def _golden_answers(system, dataset, worker):
    return [
        Answer(worker, tid, dataset.task_by_id(tid).ground_truth)
        for tid in system.golden_task_ids()
    ]


def _drive_campaign(system, dataset, arrivals=12):
    """The deterministic campaign script; returns the pick record."""
    record = []
    for arrival in range(arrivals):
        worker = WORKERS[arrival % len(WORKERS)]
        if system.needs_bootstrap(worker):
            system.bootstrap(
                worker, _golden_answers(system, dataset, worker)
            )
        picks = system.assign(worker, 2)
        record.append((worker, tuple(picks)))
        for task_id in picks:
            ell = dataset.task_by_id(task_id).num_choices
            system.submit(
                Answer(
                    worker, task_id, 1 + (task_id * 3 + arrival) % ell
                )
            )
    return record


class TestCampaignEquivalence:
    def test_single_worker_campaign_is_bit_identical(self, dataset):
        """workers=1 (shared arena + pool, no sharded rerun) replays
        workers=0 exactly — mid-campaign full-TI reruns included."""
        records = {}
        truths = {}
        for workers in (0, 1):
            system = DocsSystem(
                _campaign_config(workers, rerun_interval=20)
            )
            system.prepare(dataset)
            assert (system.serving_pool is not None) == (workers >= 1)
            records[workers] = _drive_campaign(system, dataset)
            truths[workers] = system.finalize()
            system.close()
        assert records[0] == records[1]
        assert truths[0] == truths[1]
        assert shm_leaks() == []

    def test_two_worker_campaign_matches_picks_and_truths(self, dataset):
        """workers=2 adds sharded reruns/linking; picks stay identical
        (every pool worker's index is exact) and the finalize truths
        agree (the sharded solver matches to reduction rounding)."""
        records = {}
        truths = {}
        for workers in (0, 2):
            system = DocsSystem(_campaign_config(workers))
            system.prepare(dataset)
            records[workers] = _drive_campaign(system, dataset)
            truths[workers] = system.finalize()
            system.close()
        assert records[0] == records[2]
        assert truths[0] == truths[2]
        assert shm_leaks() == []

    def test_assign_many_matches_per_arrival_assign(self, dataset):
        system = DocsSystem(_campaign_config(2))
        system.prepare(dataset)
        try:
            _drive_campaign(system, dataset, arrivals=8)
            cohort = WORKERS[:4]
            batched = system.assign_many(cohort, 2)
            assert batched == [system.assign(w, 2) for w in cohort]
        finally:
            system.close()
        assert shm_leaks() == []

    def test_resume_rebuilds_the_pool(self, dataset, tmp_path):
        path = str(tmp_path / "campaign.db")
        config = _campaign_config(2)
        system = DocsSystem(config, storage="sqlite", path=path)
        system.prepare(dataset)
        _drive_campaign(system, dataset, arrivals=8)
        expected = system.assign(WORKERS[0], 2)
        system.close()
        assert shm_leaks() == []

        resumed = DocsSystem.resume(path, config=config)
        try:
            assert resumed.serving_pool is not None
            assert resumed.assign(WORKERS[0], 2) == expected
        finally:
            resumed.close()
        assert shm_leaks() == []


# -- dedicated fault scenarios (see crash matrix DEDICATED) ------------------


class TestWorkerServeCrash:
    def test_dead_worker_degrades_to_identical_picks(self, dataset):
        """``parallel.worker.serve``: the fault is armed pre-fork, so
        every pool worker inherits it and dies on its first request.
        The campaign never sees an exception: picks match the
        single-process reference, the write path detaches the broken
        pool, and close leaks nothing."""
        reference = DocsSystem(_campaign_config(0))
        reference.prepare(dataset)
        with faults.injected() as injector:
            injector.arm("parallel.worker.serve", "crash", times=-1)
            victim = DocsSystem(_campaign_config(2))
            victim.prepare(dataset)
            assert victim.serving_pool is not None

            worker = WORKERS[0]
            for system in (victim, reference):
                system.bootstrap(
                    worker, _golden_answers(system, dataset, worker)
                )
            victim_picks = victim.assign(worker, 2)
            assert victim_picks == reference.assign(worker, 2)
            # The injected crash fires in the forked children (the
            # parent's trigger counter stays 0) — the observable proof
            # is that every pool worker is now dead.
            pool = victim.serving_pool
            assert pool is not None
            with pytest.raises(ServingPoolError, match="died"):
                pool._check_alive()

            # The next write quiesces the (dead) pool, fails, and
            # detaches it; serving continues single-process.
            choice_of = dataset.task_by_id(victim_picks[0])
            victim.submit(
                Answer(worker, victim_picks[0], choice_of.ground_truth)
            )
            assert victim.serving_pool is None
            reference.submit(
                Answer(worker, victim_picks[0], choice_of.ground_truth)
            )
            assert victim.assign(worker, 2) == reference.assign(
                worker, 2
            )
            victim.close()
        reference.close()
        assert shm_leaks() == []


class TestRerunShardCrash:
    def _engine_and_log(self):
        engine = _make_engine(seed=6)
        log = AnswerLog(engine.arena)
        rng = make_rng(60)
        seen = set()
        for _ in range(50):
            task_id = int(rng.integers(30))
            worker = f"w{int(rng.integers(NUM_WORKERS))}"
            if (worker, task_id) in seen:
                continue
            seen.add((worker, task_id))
            ell = engine.arena.view(task_id).num_choices
            log.append(
                Answer(worker, task_id, int(rng.integers(1, ell + 1)))
            )
        return engine, log

    def test_sharded_rerun_matches_in_process_solver(self):
        engine, log = self._engine_and_log()
        ti = TruthInference(max_iterations=10)
        base = ti.infer_from_log(log)
        sharded = ti.infer_from_log(log, shards=2)
        assert sharded.iterations == base.iterations
        np.testing.assert_allclose(sharded.S, base.S, atol=1e-12)
        np.testing.assert_allclose(sharded.M, base.M, atol=1e-12)
        np.testing.assert_allclose(
            sharded.qualities, base.qualities, atol=1e-12
        )

    def test_dead_shard_degrades_to_exact_in_process_result(self):
        """``parallel.rerun.shard``: a shard killed mid-rerun degrades
        the whole rerun to the in-process solver — output bit-identical
        to ``shards=0``, no exception, no leak."""
        engine, log = self._engine_and_log()
        ti = TruthInference(max_iterations=10)
        base = ti.infer_from_log(log)
        with faults.injected() as injector:
            injector.arm("parallel.rerun.shard", "crash", times=-1)
            degraded = ti.infer_from_log(log, shards=2)
        assert degraded.iterations == base.iterations
        np.testing.assert_array_equal(degraded.S, base.S)
        np.testing.assert_array_equal(degraded.M, base.M)
        np.testing.assert_array_equal(
            degraded.qualities, base.qualities
        )
        assert shm_leaks() == []


class TestLinkWorkerCrash:
    TEXTS = [
        "Does Michael Jordan win more NBA championships than Kobe?",
        "Michael Jordan published machine learning papers",
        "Kobe Bryant and Michael Jordan are NBA legends",
        "nothing linkable in this text",
        "NBA finals",
        "Michael Jordan NBA Michael Jordan",
    ]

    @staticmethod
    def _assert_identical(left, right):
        assert len(left) == len(right)
        for a, b in zip(left, right):
            assert len(a) == len(b)
            for x, y in zip(a, b):
                assert x.surface == y.surface
                assert x.concept_ids == y.concept_ids
                np.testing.assert_array_equal(
                    x.probabilities, y.probabilities
                )

    def test_parallel_linking_matches_sequential(self, paper_kb):
        sequential = EntityLinker(paper_kb).link_batch(self.TEXTS)
        parallel = EntityLinker(paper_kb).link_batch(
            self.TEXTS, workers=2
        )
        self._assert_identical(parallel, sequential)

    def test_dead_link_worker_degrades_to_sequential(self, paper_kb):
        """``parallel.link.worker``: a dead link child degrades the
        batch to the sequential path with identical entities."""
        sequential = EntityLinker(paper_kb).link_batch(self.TEXTS)
        with faults.injected() as injector:
            injector.arm("parallel.link.worker", "crash", times=-1)
            degraded = EntityLinker(paper_kb).link_batch(
                self.TEXTS, workers=2
            )
        self._assert_identical(degraded, sequential)


class TestResyncPrecision:
    def test_resync_skips_rows_below_serve_precision(self):
        """Satellite: the delta-aware resync stamps only rows whose
        (M, S) moved past the precision — unmoved rows keep their
        epoch, so the serving index repairs nothing for them."""
        engine = _make_engine(seed=8)
        log = AnswerLog(engine.arena)
        rng = make_rng(80)
        seen = {
            (worker, task_id)
            for task_id in engine.arena.task_ids()
            for worker, _ in engine.answered_workers(task_id)
        }
        for _ in range(40):
            task_id = int(rng.integers(30))
            worker = f"w{int(rng.integers(NUM_WORKERS))}"
            if (worker, task_id) in seen:
                continue
            seen.add((worker, task_id))
            ell = engine.arena.view(task_id).num_choices
            answer = Answer(
                worker, task_id, int(rng.integers(1, ell + 1))
            )
            engine.submit(answer)
            log.append(answer)
        result = TruthInference(max_iterations=10).infer_from_log(log)

        epochs_before = engine.arena.row_epochs().copy()
        engine.resync_from_arena_result(result)
        moved = engine.arena.row_epochs() != epochs_before

        # A second, identical resync moves nothing: every row is
        # already at the full-TI fixpoint, so no epoch may advance.
        epochs_mid = engine.arena.row_epochs().copy()
        engine.resync_from_arena_result(result)
        np.testing.assert_array_equal(
            engine.arena.row_epochs(), epochs_mid
        )
        # And a huge precision skips everything even on moved state.
        worker, task_id = next(
            (w, t)
            for t in engine.arena.task_ids()
            for w in (f"w{j}" for j in range(NUM_WORKERS))
            if (w, t) not in seen
        )
        seen.add((worker, task_id))
        engine.submit(Answer(worker, task_id, 1))
        epochs_late = engine.arena.row_epochs().copy()
        engine.resync_from_arena_result(result, precision=1e9)
        np.testing.assert_array_equal(
            engine.arena.row_epochs(), epochs_late
        )
        assert moved.any()
