"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("item", "4d", "qa", "sfv"):
            assert name in out

    def test_detect_command(self, capsys):
        assert main(["detect", "--dataset", "item", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "domain detection" in out

    def test_demo_command_small(self, capsys):
        code = main(
            [
                "demo",
                "--dataset",
                "item",
                "--seed",
                "3",
                "--answers-per-task",
                "2",
                "--hit-size",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "accuracy" in out

    def test_report_command(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig5_ti_comparison.txt").write_text("table body\n")
        out_file = tmp_path / "report.md"
        code = main(
            [
                "report",
                "--results-dir",
                str(results),
                "--output",
                str(out_file),
            ]
        )
        assert code == 0
        assert "table body" in out_file.read_text()

    def test_report_missing_dir_raises(self, tmp_path):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            main(["report", "--results-dir", str(tmp_path / "none")])

    def test_run_command_memory(self, capsys):
        code = main(
            [
                "run",
                "--dataset",
                "item",
                "--seed",
                "3",
                "--answers-per-task",
                "2",
                "--hit-size",
                "3",
            ]
        )
        assert code == 0
        assert "accuracy" in capsys.readouterr().out

    def test_run_command_sqlite_then_resume(self, tmp_path, capsys):
        db = str(tmp_path / "campaign.db")
        code = main(
            [
                "run",
                "--dataset",
                "item",
                "--seed",
                "3",
                "--answers-per-task",
                "2",
                "--hit-size",
                "3",
                "--store",
                "sqlite",
                "--db",
                db,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "campaign persisted" in out
        assert "--resume" in out

        code = main(["run", "--store", "sqlite", "--db", db, "--resume"])
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed campaign" in out
        assert "answers replayed" in out
        assert "accuracy" in out

    def test_run_sqlite_requires_db(self, capsys):
        assert main(["run", "--store", "sqlite"]) == 2
        assert "--db" in capsys.readouterr().err

    def test_run_resume_requires_db(self, capsys):
        assert main(["run", "--resume"]) == 2
        assert "--db" in capsys.readouterr().err

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-a-command"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["detect", "--dataset", "bogus"])
