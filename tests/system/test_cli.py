"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("item", "4d", "qa", "sfv"):
            assert name in out

    def test_detect_command(self, capsys):
        assert main(["detect", "--dataset", "item", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "domain detection" in out

    def test_demo_command_small(self, capsys):
        code = main(
            [
                "demo",
                "--dataset",
                "item",
                "--seed",
                "3",
                "--answers-per-task",
                "2",
                "--hit-size",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "accuracy" in out

    def test_report_command(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig5_ti_comparison.txt").write_text("table body\n")
        out_file = tmp_path / "report.md"
        code = main(
            [
                "report",
                "--results-dir",
                str(results),
                "--output",
                str(out_file),
            ]
        )
        assert code == 0
        assert "table body" in out_file.read_text()

    def test_report_missing_dir_raises(self, tmp_path):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            main(["report", "--results-dir", str(tmp_path / "none")])

    def test_run_command_memory(self, capsys):
        code = main(
            [
                "run",
                "--dataset",
                "item",
                "--seed",
                "3",
                "--answers-per-task",
                "2",
                "--hit-size",
                "3",
            ]
        )
        assert code == 0
        assert "accuracy" in capsys.readouterr().out

    def test_run_command_sqlite_then_resume(self, tmp_path, capsys):
        db = str(tmp_path / "campaign.db")
        code = main(
            [
                "run",
                "--dataset",
                "item",
                "--seed",
                "3",
                "--answers-per-task",
                "2",
                "--hit-size",
                "3",
                "--store",
                "sqlite",
                "--db",
                db,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "campaign persisted" in out
        assert "--resume" in out

        code = main(["run", "--store", "sqlite", "--db", db, "--resume"])
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed campaign" in out
        assert "answers replayed" in out
        assert "accuracy" in out

    def test_run_sqlite_requires_db(self, capsys):
        assert main(["run", "--store", "sqlite"]) == 2
        assert "--db" in capsys.readouterr().err

    def test_run_resume_requires_db(self, capsys):
        assert main(["run", "--resume"]) == 2
        assert "--db" in capsys.readouterr().err

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-a-command"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["detect", "--dataset", "bogus"])


def _write_campaign(path):
    """Run a tiny sqlite campaign and return its committed journal size."""
    import sqlite3

    from repro.core.types import Answer
    from repro.datasets import make_dataset
    from repro.system import DocsConfig, DocsSystem

    dataset = make_dataset("4d", seed=31, tasks_per_domain=8)
    config = DocsConfig(golden_count=6, journal_batch_size=4, hit_size=3)
    system = DocsSystem(config, storage="sqlite", path=path)
    system.prepare(dataset)
    worker = "w0"
    system.bootstrap(
        worker,
        [
            Answer(worker, tid, dataset.task_by_id(tid).ground_truth)
            for tid in system.golden_task_ids()
        ],
    )
    for task_id in system.assign(worker, 2):
        ell = dataset.task_by_id(task_id).num_choices
        system.submit(Answer(worker, task_id, 1 + task_id % ell))
    system.close()
    conn = sqlite3.connect(path)
    (rows,) = conn.execute("SELECT COUNT(*) FROM answers_log").fetchone()
    conn.close()
    return rows


def _tear_tail(path, orphan_rows=3):
    """Append journal rows with no batch record — a torn final write."""
    import sqlite3

    conn = sqlite3.connect(path)
    (max_seq,) = conn.execute("SELECT MAX(seq) FROM answers_log").fetchone()
    for i in range(1, orphan_rows + 1):
        conn.execute(
            "INSERT INTO answers_log "
            "(seq, kind, task_row, task_id, worker_id, choice, ts, batch) "
            "SELECT ?, kind, task_row, task_id, worker_id, choice, ts, 999 "
            "FROM answers_log WHERE seq = ?",
            (max_seq + i, max_seq),
        )
    conn.commit()
    conn.close()


class TestCheckDbCommand:
    def test_healthy_database_passes(self, tmp_path, capsys):
        path = str(tmp_path / "campaign.db")
        _write_campaign(path)
        assert main(["check-db", path]) == 0
        out = capsys.readouterr().out
        assert "journal integrity  : OK" in out
        assert "schema version     : supported" in out
        assert "snapshot           : OK" in out

    def test_torn_tail_reported_without_mutation(self, tmp_path, capsys):
        path = str(tmp_path / "campaign.db")
        committed = _write_campaign(path)
        _tear_tail(path)
        assert main(["check-db", path]) == 1
        captured = capsys.readouterr()
        assert "CORRUPT" in captured.out
        assert "would drop 3 row(s)" in captured.out
        assert "--salvage" in captured.err
        # The dry run must not have repaired anything.
        import sqlite3

        conn = sqlite3.connect(path)
        (rows,) = conn.execute(
            "SELECT COUNT(*) FROM answers_log"
        ).fetchone()
        conn.close()
        assert rows == committed + 3

    def test_salvage_repairs_then_passes(self, tmp_path, capsys):
        path = str(tmp_path / "campaign.db")
        committed = _write_campaign(path)
        _tear_tail(path)
        assert main(["check-db", path, "--salvage"]) == 0
        out = capsys.readouterr().out
        assert "OK after salvage" in out
        # A follow-up check sees a clean journal of the committed rows.
        assert main(["check-db", path]) == 0
        assert f"{committed} committed row(s)" in capsys.readouterr().out

    def test_missing_file_is_exit_2(self, tmp_path, capsys):
        assert main(["check-db", str(tmp_path / "none.db")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_version_skew_is_exit_2(self, tmp_path, capsys):
        import sqlite3

        from repro.platform.sqlite_storage import SCHEMA_VERSION

        path = str(tmp_path / "campaign.db")
        _write_campaign(path)
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE repro_meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION + 7),),
        )
        conn.commit()
        conn.close()
        assert main(["check-db", path]) == 2
        err = capsys.readouterr().err
        assert "REFUSED" in err
        assert str(SCHEMA_VERSION + 7) in err


class TestEnginesCli:
    def test_engines_command_lists_registry(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        for name in ("docs", "oracle", "random", "batched-em"):
            assert name in out

    def test_run_with_engine(self, capsys):
        code = main(
            [
                "run",
                "--dataset", "item",
                "--seed", "3",
                "--answers-per-task", "2",
                "--hit-size", "3",
                "--engine", "random",
            ]
        )
        assert code == 0
        assert "accuracy" in capsys.readouterr().out

    def test_run_unknown_engine_rejected(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            main(
                [
                    "run",
                    "--dataset", "item",
                    "--seed", "3",
                    "--engine", "not-an-engine",
                ]
            )

    def test_run_engine_sqlite_then_resume(self, tmp_path, capsys):
        """A memory-only engine persists raw answers and resumes by
        replay: the CLI supplies the regenerated dataset itself."""
        db = str(tmp_path / "campaign.db")
        code = main(
            [
                "run",
                "--dataset", "item",
                "--seed", "3",
                "--answers-per-task", "2",
                "--hit-size", "3",
                "--engine", "random",
                "--store", "sqlite",
                "--db", db,
            ]
        )
        assert code == 0
        assert "campaign persisted" in capsys.readouterr().out

        code = main(
            [
                "run",
                "--store", "sqlite",
                "--db", db,
                "--resume",
                "--engine", "random",
                "--dataset", "item",
                "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed campaign" in out
        assert "accuracy" in out
