"""Tests for the assembled DOCS system."""

import numpy as np
import pytest

from repro.core.types import Answer
from repro.crowd.worker_pool import WorkerPool, WorkerPoolConfig
from repro.datasets import make_dataset
from repro.errors import ValidationError
from repro.platform.amt_sim import PlatformSimulator
from repro.system import CampaignResult, DocsConfig, DocsSystem, run_campaign


@pytest.fixture()
def dataset():
    return make_dataset("4d", seed=21, tasks_per_domain=10)


@pytest.fixture(scope="module")
def module_pool():
    ds = make_dataset("4d", seed=21, tasks_per_domain=10)
    active = tuple(d.taxonomy_index for d in ds.domains)
    return WorkerPool.generate(
        WorkerPoolConfig(
            num_workers=12,
            num_domains=ds.taxonomy.size,
            active_domains=active,
            seed=22,
        )
    )


class TestDocsConfig:
    def test_defaults_follow_paper(self):
        config = DocsConfig()
        assert config.hit_size == 20
        assert config.golden_count == 20
        assert config.rerun_interval == 100
        assert config.top_c == 20

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hit_size": 0},
            {"golden_count": -1},
            {"rerun_interval": 0},
            {"top_c": 0},
            {"default_quality": 0.0},
            {"ti_max_iterations": 0},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValidationError):
            DocsConfig(**kwargs).validate()


class TestLifecycle:
    def test_prepare_computes_domain_vectors_and_golden(self, dataset):
        system = DocsSystem(DocsConfig(golden_count=8))
        system.prepare(dataset)
        assert all(t.domain_vector is not None for t in dataset.tasks)
        assert len(system.golden_task_ids()) == 8

    def test_unprepared_access_rejected(self):
        system = DocsSystem()
        with pytest.raises(ValidationError):
            system.assign("w", 1)
        with pytest.raises(ValidationError):
            system.database

    def test_bootstrap_initialises_quality(self, dataset):
        system = DocsSystem(DocsConfig(golden_count=8))
        system.prepare(dataset)
        assert system.needs_bootstrap("w")
        golden_answers = [
            Answer("w", tid, dataset.task_by_id(tid).ground_truth)
            for tid in system.golden_task_ids()
        ]
        system.bootstrap("w", golden_answers)
        assert not system.needs_bootstrap("w")
        quality = system.quality_store.quality_or_default("w")
        # Perfect golden answers push quality above the default in the
        # covered domains.
        assert quality.max() > 0.7

    def test_assign_excludes_answered(self, dataset):
        system = DocsSystem(DocsConfig(golden_count=0))
        system.prepare(dataset)
        first = system.assign("w", 4)
        for tid in first:
            system.submit(Answer("w", tid, 1))
        second = system.assign("w", 4)
        assert not set(first) & set(second)

    def test_submit_updates_truth(self, dataset):
        system = DocsSystem(DocsConfig(golden_count=0))
        system.prepare(dataset)
        tid = dataset.tasks[0].task_id
        before = system._incremental.state(tid).s.copy()
        system.submit(Answer("w", tid, 1))
        after = system._incremental.state(tid).s
        assert not np.allclose(before, after)

    def test_periodic_full_rerun(self, dataset):
        system = DocsSystem(
            DocsConfig(golden_count=0, rerun_interval=5)
        )
        system.prepare(dataset)
        workers = [f"w{i}" for i in range(6)]
        count = 0
        for tid in [t.task_id for t in dataset.tasks[:5]]:
            for worker in workers[:2]:
                system.submit(Answer(worker, tid, 1))
                count += 1
        # 10 submissions with interval 5: the counter must have reset.
        assert system._submissions_since_rerun < 5

    def test_finalize_covers_all_tasks(self, dataset):
        system = DocsSystem(DocsConfig(golden_count=0))
        system.prepare(dataset)
        system.submit(Answer("w", dataset.tasks[0].task_id, 1))
        truths = system.finalize()
        assert set(truths) == {t.task_id for t in dataset.tasks}

    def test_rejected_submit_leaves_no_trace(self, dataset):
        """A bad answer must not reach any store: answer table, arena
        state, and answer log stay mutually consistent."""
        system = DocsSystem(DocsConfig(golden_count=0))
        system.prepare(dataset)
        tid = dataset.tasks[0].task_id
        system.submit(Answer("w", tid, 1))
        with pytest.raises(ValidationError):
            system.submit(Answer("w2", tid, 99))
        with pytest.raises(ValidationError):
            system.submit(Answer("w", tid, 2))
        assert len(system.database.answers) == 1
        assert len(system._log) == 1
        assert system.database.answers.tasks_answered_by("w2") == set()


class TestEndToEnd:
    def test_full_campaign_beats_random_baseline(
        self, dataset, module_pool
    ):
        from repro.baselines.engines import RandomBaselineEngine

        docs_sim = PlatformSimulator(
            dataset,
            module_pool,
            answers_per_task=5,
            hit_size=3,
            seed=23,
        )
        docs_report = docs_sim.run(
            DocsSystem(DocsConfig(golden_count=8, rerun_interval=50))
        )
        baseline_ds = make_dataset("4d", seed=21, tasks_per_domain=10)
        baseline_sim = PlatformSimulator(
            baseline_ds,
            module_pool,
            answers_per_task=5,
            hit_size=3,
            seed=23,
        )
        baseline_report = baseline_sim.run(RandomBaselineEngine(seed=1))
        assert docs_report.accuracy > baseline_report.accuracy
        assert docs_report.total_answers == dataset.num_tasks * 5

    def test_run_campaign_convenience(self):
        dataset = make_dataset("item", seed=24, tasks_per_domain=5)
        result = run_campaign(
            dataset,
            answers_per_task=3,
            hit_size=3,
            config=DocsConfig(golden_count=5, rerun_interval=50),
            seed=25,
        )
        assert isinstance(result, CampaignResult)
        assert set(result.truths) == {t.task_id for t in dataset.tasks}
        assert 0.0 <= result.accuracy() <= 1.0


class TestUnknownWorkerErrors:
    """Regression: the assign family must reject an unknown worker with
    a ValidationError naming the id — not a bare ``KeyError`` repr —
    so the HTTP service can map it to 404 with a useful body."""

    def _system(self, dataset, golden_count=6):
        system = DocsSystem(
            DocsConfig(golden_count=golden_count, hit_size=3)
        )
        system.prepare(dataset)
        return system

    def test_assign_pre_bootstrap_names_worker_and_remediation(
        self, dataset
    ):
        system = self._system(dataset)
        with pytest.raises(ValidationError) as err:
            system.assign("ghost-worker", 3)
        message = str(err.value)
        assert "ghost-worker" in message
        assert "bootstrap" in message
        # Still a KeyError for callers of the historical surface.
        assert isinstance(err.value, KeyError)

    def test_assign_many_rejects_first_unknown_worker(self, dataset):
        system = self._system(dataset)
        with pytest.raises(ValidationError, match="nobody"):
            system.assign_many(["nobody"], 3)

    def test_bootstrapped_worker_passes_the_guard(self, dataset):
        system = self._system(dataset)
        answers = [
            Answer("w0", tid, dataset.task_by_id(tid).ground_truth)
            for tid in system.golden_task_ids()
        ]
        system.bootstrap("w0", answers)
        assert len(system.assign("w0", 3)) == 3

    def test_no_golden_pretest_means_no_guard(self, dataset):
        system = self._system(dataset, golden_count=0)
        assert len(system.assign("anyone", 3)) == 3
