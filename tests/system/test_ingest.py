"""Tests for the staged ingest pipeline and DocsSystem live growth."""

import numpy as np
import pytest

from repro.core.incremental import IncrementalTruthInference
from repro.core.quality_store import WorkerQualityStore
from repro.core.types import Answer, Task
from repro.datasets import make_dataset
from repro.errors import ValidationError
from repro.linking import EntityLinker
from repro.platform.sqlite_storage import SqliteSystemDatabase
from repro.platform.storage import SystemDatabase
from repro.system import DocsConfig, DocsSystem, IngestPipeline


@pytest.fixture()
def dataset():
    return make_dataset("4d", seed=31, tasks_per_domain=6)


def _pipeline(dataset, database=None):
    store = WorkerQualityStore(dataset.taxonomy.size)
    incremental = IncrementalTruthInference(store)
    return IngestPipeline(
        database if database is not None else SystemDatabase(),
        incremental,
        EntityLinker(dataset.kb),
    )


class TestIngestPipeline:
    def test_stages_cover_whole_batch(self, dataset):
        pipeline = _pipeline(dataset)
        report = pipeline.ingest(dataset.tasks)
        assert report.tasks == len(dataset.tasks)
        assert report.linked == len(dataset.tasks)
        assert report.total_seconds >= 0.0
        assert all(t.domain_vector is not None for t in dataset.tasks)

    def test_matches_sequential_estimator(self, dataset):
        """The pipeline's vectors equal the per-task serving-path DVE."""
        from repro.core.dve import DomainVectorEstimator

        pipeline = _pipeline(dataset)
        pipeline.ingest(dataset.tasks)
        sequential = DomainVectorEstimator(
            EntityLinker(dataset.kb), dataset.taxonomy.size
        )
        for task in dataset.tasks:
            np.testing.assert_array_equal(
                task.domain_vector, sequential.estimate(task.text)
            )

    def test_preset_vectors_skip_linking(self, dataset):
        m = dataset.taxonomy.size
        preset = np.full(m, 1.0 / m)
        for task in dataset.tasks:
            task.domain_vector = preset.copy()
        pipeline = _pipeline(dataset)
        report = pipeline.ingest(dataset.tasks)
        assert report.linked == 0
        assert report.entities == 0

    def test_duplicate_in_batch_names_id(self, dataset):
        pipeline = _pipeline(dataset)
        dup = dataset.tasks[3]
        with pytest.raises(
            ValidationError, match=f"duplicate task id {dup.task_id}"
        ):
            pipeline.ingest(dataset.tasks + [dup])

    def test_duplicate_against_ingested_names_id(self, dataset):
        pipeline = _pipeline(dataset)
        pipeline.ingest(dataset.tasks[:5])
        offender = dataset.tasks[2]
        with pytest.raises(
            ValidationError, match=str(offender.task_id)
        ):
            pipeline.ingest(dataset.tasks[2:8])

    def test_rejected_batch_leaves_no_trace(self, dataset):
        db = SystemDatabase()
        pipeline = _pipeline(dataset, db)
        pipeline.ingest(dataset.tasks[:4])
        with pytest.raises(ValidationError):
            pipeline.ingest(dataset.tasks[3:6])
        assert len(db) == 4

    def test_empty_batch_is_noop(self, dataset):
        pipeline = _pipeline(dataset)
        report = pipeline.ingest([])
        assert report.tasks == 0

    def test_sqlite_backend(self, dataset):
        db = SqliteSystemDatabase()
        pipeline = _pipeline(dataset, db)
        pipeline.ingest(dataset.tasks)
        assert len(db) == len(dataset.tasks)
        stored = db.task(dataset.tasks[0].task_id)
        np.testing.assert_allclose(
            stored.domain_vector, dataset.tasks[0].domain_vector
        )


class TestPrepareIdempotency:
    def test_second_prepare_rejected(self, dataset):
        system = DocsSystem(DocsConfig(golden_count=0))
        system.prepare(dataset)
        with pytest.raises(ValidationError, match="already ran"):
            system.prepare(dataset)

    def test_add_tasks_before_prepare_rejected(self, dataset):
        system = DocsSystem()
        with pytest.raises(ValidationError, match="not prepared"):
            system.add_tasks(dataset.tasks)

    def test_failed_prepare_is_retryable(self, dataset):
        """A rejected dataset leaves the system un-prepared, so a
        corrected prepare() succeeds instead of hitting the
        single-shot guard."""
        bad = make_dataset("4d", seed=31, tasks_per_domain=6)
        bad.tasks.append(bad.tasks[0])
        bad.task_labels.append(bad.task_labels[0])
        system = DocsSystem(DocsConfig(golden_count=0))
        with pytest.raises(ValidationError, match="duplicate task id"):
            system.prepare(bad)
        system.prepare(dataset)
        assert len(system.database) == len(dataset.tasks)

    def test_duplicate_dataset_ids_rejected_at_boundary(self, dataset):
        """A dataset carrying a duplicate id fails fast, naming it."""
        system = DocsSystem(DocsConfig(golden_count=0))
        dup = dataset.tasks[0]
        dataset.tasks.append(dup)
        dataset.task_labels.append(dataset.task_labels[0])
        with pytest.raises(
            ValidationError, match=f"duplicate task id {dup.task_id}"
        ):
            system.prepare(dataset)


class TestDocsSystemAddTasks:
    def test_growth_extends_pool(self, dataset):
        system = DocsSystem(DocsConfig(golden_count=0))
        half = len(dataset.tasks) // 2
        first, second = dataset.tasks[:half], dataset.tasks[half:]
        dataset.tasks = first
        dataset.task_labels = dataset.task_labels[:half]
        system.prepare(dataset)
        assert len(system.database) == half

        report = system.add_tasks(second)
        assert report.tasks == len(second)
        assert len(system.database) == half + len(second)
        # New tasks are immediately assignable.
        hit = system.assign("w", k=half + len(second))
        assert {t.task_id for t in second} <= set(hit)

    def test_growth_duplicate_rejected(self, dataset):
        system = DocsSystem(DocsConfig(golden_count=0))
        system.prepare(dataset)
        with pytest.raises(
            ValidationError, match=str(dataset.tasks[0].task_id)
        ):
            system.add_tasks([dataset.tasks[0]])

    def test_submissions_against_grown_tasks(self, dataset):
        system = DocsSystem(DocsConfig(golden_count=0, rerun_interval=4))
        half = len(dataset.tasks) // 2
        first, second = dataset.tasks[:half], dataset.tasks[half:]
        dataset.tasks = first
        dataset.task_labels = dataset.task_labels[:half]
        system.prepare(dataset)
        system.add_tasks(second)
        # Mixed submissions across original and grown tasks, crossing a
        # full-TI rerun boundary.
        for worker in ("w1", "w2"):
            for task in (first[0], second[0], second[-1]):
                system.submit(Answer(worker, task.task_id, 1))
        truths = system.finalize()
        assert set(truths) == {
            t.task_id for t in first + second
        }
