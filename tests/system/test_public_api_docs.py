"""The public surface listed in docs/api.md must be fully documented."""

import inspect

import pytest

from repro.datasets import make_dataset
from repro.datasets.base import CrowdDataset
from repro.platform import (
    AnswerJournal,
    AnswerTable,
    JournaledAnswerTable,
    SqliteAnswerTable,
    SqliteSystemDatabase,
    SqliteWorkerQualityStore,
    SystemDatabase,
)
from repro.system import (
    CampaignResult,
    DocsConfig,
    DocsSystem,
    IngestPipeline,
    IngestReport,
    run_campaign,
)

PUBLIC_CLASSES = [
    DocsSystem,
    DocsConfig,
    CampaignResult,
    IngestPipeline,
    IngestReport,
    SystemDatabase,
    AnswerTable,
    SqliteSystemDatabase,
    SqliteAnswerTable,
    SqliteWorkerQualityStore,
    AnswerJournal,
    JournaledAnswerTable,
    CrowdDataset,
]

PUBLIC_FUNCTIONS = [run_campaign, make_dataset]


@pytest.mark.parametrize(
    "cls", PUBLIC_CLASSES, ids=lambda c: c.__name__
)
def test_class_and_public_methods_documented(cls):
    assert inspect.getdoc(cls), f"{cls.__name__} lacks a docstring"
    undocumented = []
    for name, member in inspect.getmembers(cls):
        if name.startswith("_"):
            continue
        if callable(member) or isinstance(member, property):
            target = member.fget if isinstance(member, property) else member
            if not inspect.getdoc(target):
                undocumented.append(name)
    assert not undocumented, (
        f"{cls.__name__} has undocumented public members: {undocumented}"
    )


@pytest.mark.parametrize(
    "func", PUBLIC_FUNCTIONS, ids=lambda f: f.__name__
)
def test_function_documented(func):
    assert inspect.getdoc(func), f"{func.__name__} lacks a docstring"
