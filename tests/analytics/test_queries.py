"""Analytics plane unit contracts: registry, parameters, query plans.

The EXPLAIN QUERY PLAN regression tests pin the plane's whole point:
every touch of ``answers_archive`` / ``answers_log`` must be answered
from a covering index (``USING COVERING INDEX`` in the plan), never a
base-table scan — the zero-hydration guarantee at the SQLite level.
"""

import pytest

from repro.analytics import (
    QUERY_NAMES,
    UnknownAnalyticsQueryError,
    explain_query,
    run_query,
)
from repro.core.types import Answer, Task
from repro.errors import ValidationError
from repro.platform.journal import ensure_analytics_indexes
from repro.platform.sqlite_storage import SqliteSystemDatabase


@pytest.fixture()
def db(tmp_path):
    database = SqliteSystemDatabase(
        str(tmp_path / "plans.db"), journal_batch_size=4
    )
    database.insert_tasks(
        [
            Task(
                task_id=i,
                text=f"t{i}",
                num_choices=2,
                ground_truth=1 if i % 2 else None,
                true_domain=i % 2,
            )
            for i in range(6)
        ]
    )
    database.answers.bind_row_resolver(lambda task_id: task_id)
    for i in range(6):
        for j in range(3):
            database.answers.insert(
                Answer(f"w{j}", i, 1 + (i + j) % 2)
            )
    database.journal.flush()
    database.journal.truncate_through(8)  # split archive vs live
    yield database
    database.close()


class TestRegistry:
    def test_query_names_sorted_and_complete(self):
        assert QUERY_NAMES == (
            "convergence", "leaderboard", "spam", "worker-accuracy",
        )

    def test_unknown_query_names_alternatives(self, db):
        with pytest.raises(UnknownAnalyticsQueryError) as excinfo:
            run_query(db._conn, "nope")
        message = str(excinfo.value)
        assert "nope" in message
        assert "leaderboard" in message
        # KeyError.__str__ would wrap the message in quotes.
        assert not message.startswith("'")

    def test_unknown_query_is_validation_and_key_error(self):
        assert issubclass(UnknownAnalyticsQueryError, ValidationError)
        assert issubclass(UnknownAnalyticsQueryError, KeyError)


class TestParameters:
    def test_unknown_parameter_rejected(self, db):
        with pytest.raises(ValidationError, match="nope"):
            run_query(db._conn, "leaderboard", {"nope": 1})

    def test_non_integer_parameter_rejected(self, db):
        with pytest.raises(ValidationError, match="window"):
            run_query(db._conn, "worker-accuracy", {"window": "abc"})

    def test_below_minimum_rejected(self, db):
        with pytest.raises(ValidationError, match=">= 1"):
            run_query(db._conn, "leaderboard", {"limit": 0})
        with pytest.raises(ValidationError, match=">= 2"):
            run_query(db._conn, "spam", {"window": 1})

    def test_parse_qs_lists_accepted(self, db):
        direct = run_query(db._conn, "worker-accuracy", {"window": 5})
        listed = run_query(
            db._conn, "worker-accuracy", {"window": ["5"]}
        )
        assert direct == listed
        assert direct["params"] == {"window": 5}

    def test_spam_span_defaults_from_window(self, db):
        result = run_query(db._conn, "spam", {"window": 4})
        assert result["params"]["span"] == 6  # 2 * (window - 1)
        explicit = run_query(
            db._conn, "spam", {"window": 4, "span": 6}
        )
        assert result == explicit

    def test_convergence_takes_no_parameters(self, db):
        with pytest.raises(ValidationError, match="no parameter"):
            run_query(db._conn, "convergence", {"window": 3})


class TestQueryPlans:
    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_answer_tables_read_via_covering_indexes(self, db, name):
        uncovered = [
            line
            for line in explain_query(db._conn, name)
            if ("answers_archive" in line or "answers_log" in line)
            and "USING COVERING INDEX" not in line
        ]
        assert not uncovered, uncovered

    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_plans_name_the_analytics_indexes(self, db, name):
        plans = "\n".join(explain_query(db._conn, name))
        assert "idx_answers_archive_" in plans
        assert "idx_answers_log_" in plans


class TestIndexMigration:
    def test_reopen_creates_missing_indexes(self, tmp_path):
        """A pre-analytics file (indexes dropped) is migrated in place
        on the next open, and the plans recover."""
        path = str(tmp_path / "old.db")
        db = SqliteSystemDatabase(path, journal_batch_size=4)
        db.insert_tasks(
            [Task(task_id=0, text="t", num_choices=2, ground_truth=1)]
        )
        db.answers.bind_row_resolver(lambda task_id: task_id)
        db.answers.insert(Answer("w0", 0, 1))
        for name in (
            "idx_answers_archive_task",
            "idx_answers_archive_worker",
            "idx_answers_log_task",
            "idx_answers_log_worker",
        ):
            db._conn.execute(f"DROP INDEX {name}")
        db._conn.commit()
        db.close()

        reopened = SqliteSystemDatabase(path, journal_batch_size=4)
        try:
            assert not ensure_analytics_indexes(reopened._conn)
            for name in QUERY_NAMES:
                assert all(
                    "USING COVERING INDEX" in line
                    for line in explain_query(reopened._conn, name)
                    if "answers_archive" in line
                    or "answers_log" in line
                )
        finally:
            reopened.close()


class TestResultShape:
    def test_results_are_json_plain(self, db):
        import json

        for name in QUERY_NAMES:
            result = run_query(db._conn, name)
            assert set(result) == {"query", "params", "rows"}
            json.dumps(result)  # no numpy scalars, no objects

    def test_leaderboard_competition_ranking(self, db):
        rows = run_query(db._conn, "leaderboard")["rows"]
        assert [row["rank"] for row in rows] == sorted(
            row["rank"] for row in rows
        )
        for row in rows:
            assert row["accuracy"] == row["correct"] / row["graded"]
