"""SQL-pushdown analytics must be bit-identical to the Python reference.

The property: for ANY committed answer stream and ANY journal
truncation point — all answers archived, all live, or any split — every
registered query returns exactly what the retained naive reference
computes. The fixture drives the real platform layer (journaled answer
table, ``truncate_through`` archival), so the scope union the queries
range over is the genuine durable relation, not a mock.
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analytics import QUERY_NAMES, run_query
from repro.analytics.reference import run_reference
from repro.core.types import Answer, Task
from repro.platform.sqlite_storage import SqliteSystemDatabase

NUM_TASKS = 8
NUM_CHOICES = 3
WORKERS = [f"w{i}" for i in range(5)]

# hypothesis reuses the function-scoped tmp_path across examples, so
# database files need a per-example serial to stay fresh.
_serial = itertools.count()


def _make_tasks():
    tasks = []
    for i in range(NUM_TASKS):
        # A mix of graded and ungraded tasks across three domains,
        # with one domain-less task (the COALESCE(-1) rollup bucket).
        tasks.append(
            Task(
                task_id=i,
                text=f"task {i}",
                num_choices=NUM_CHOICES,
                ground_truth=(1 + i % NUM_CHOICES) if i % 3 else None,
                true_domain=(i % 3) if i != 7 else None,
            )
        )
    return tasks


@st.composite
def _answer_streams(draw):
    """A duplicate-free answer stream plus a truncation fraction."""
    pairs = draw(
        st.lists(
            st.tuples(
                st.sampled_from(WORKERS),
                st.integers(0, NUM_TASKS - 1),
            ),
            min_size=1,
            max_size=40,
            unique=True,
        )
    )
    answers = [
        Answer(worker, task_id, draw(st.integers(1, NUM_CHOICES)))
        for worker, task_id in pairs
    ]
    cut = draw(st.floats(0.0, 1.0))
    return answers, cut


def _build(path, answers, cut):
    """Write the stream through the journal, archiving a prefix."""
    db = SqliteSystemDatabase(path, journal_batch_size=4)
    db.insert_tasks(_make_tasks())
    db.answers.bind_row_resolver(lambda task_id: task_id)
    for answer in answers:
        db.answers.insert(answer)
    db.journal.flush()
    watermark = int(cut * len(answers)) - 1
    if watermark >= 0:
        db.journal.truncate_through(watermark)
    return db


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(stream=_answer_streams())
def test_sql_matches_reference_across_truncation(tmp_path, stream):
    answers, cut = stream
    db = _build(str(tmp_path / f"eq{next(_serial)}.db"), answers, cut)
    try:
        for name in QUERY_NAMES:
            assert run_query(db._conn, name) == run_reference(
                db._conn, name
            ), name
    finally:
        db.close()


@pytest.mark.parametrize(
    "cut", [0.0, 0.5, 1.0], ids=["all-live", "split", "all-archived"]
)
@pytest.mark.parametrize(
    "params_by_query",
    [
        {},
        {
            "worker-accuracy": {"window": 1},
            "leaderboard": {"limit": 2, "min_graded": 2},
            "spam": {"window": 2, "span": 100, "streak": 1},
        },
    ],
    ids=["defaults", "tight-params"],
)
def test_fixed_stream_boundaries(tmp_path, cut, params_by_query):
    """Deterministic spot checks at the three canonical splits, with
    default and non-default parameters."""
    answers = [
        Answer(WORKERS[(i + j) % len(WORKERS)], i % NUM_TASKS, 1 + (i * j) % NUM_CHOICES)
        for j in range(3)
        for i in range(j, NUM_TASKS, 1)
        if (i + j) % 4  # leave some tasks thin
    ]
    seen = set()
    answers = [
        a
        for a in answers
        if (a.worker_id, a.task_id) not in seen
        and not seen.add((a.worker_id, a.task_id))
    ]
    db = _build(str(tmp_path / "fixed.db"), answers, cut)
    try:
        for name in QUERY_NAMES:
            params = params_by_query.get(name)
            assert run_query(db._conn, name, params) == run_reference(
                db._conn, name, params
            ), name
    finally:
        db.close()
