"""Tests for the worker arrival process."""

import pytest

from repro.crowd.arrival import WorkerArrivalProcess
from repro.errors import ValidationError


class TestWorkerArrivalProcess:
    def test_yields_known_workers(self, small_pool):
        arrivals = WorkerArrivalProcess(small_pool, seed=0)
        seen = [next(arrivals) for _ in range(20)]
        assert set(seen) <= set(small_pool.worker_ids)

    def test_cap_enforced(self, small_pool):
        arrivals = WorkerArrivalProcess(
            small_pool, max_hits_per_worker=2, seed=0
        )
        drained = list(arrivals)
        assert len(drained) == 2 * len(small_pool)
        counts = arrivals.arrivals_so_far()
        assert all(count == 2 for count in counts.values())

    def test_unbounded_never_stops_early(self, small_pool):
        arrivals = WorkerArrivalProcess(small_pool, seed=0)
        for _ in range(5 * len(small_pool)):
            next(arrivals)

    def test_deterministic(self, small_pool):
        a = [
            next(WorkerArrivalProcess(small_pool, seed=3))
            for _ in range(1)
        ]
        b = [
            next(WorkerArrivalProcess(small_pool, seed=3))
            for _ in range(1)
        ]
        assert a == b

    def test_invalid_cap_rejected(self, small_pool):
        with pytest.raises(ValidationError):
            WorkerArrivalProcess(small_pool, max_hits_per_worker=0)
