"""Tests for the simulated worker pool."""

import numpy as np
import pytest

from repro.crowd.worker_pool import (
    WorkerPool,
    WorkerPoolConfig,
    WorkerProfile,
)
from repro.errors import ValidationError


class TestWorkerProfile:
    def test_quality_coerced_to_array(self):
        profile = WorkerProfile("w", [0.5, 0.6])
        assert isinstance(profile.quality, np.ndarray)

    def test_out_of_range_quality_rejected(self):
        with pytest.raises(ValidationError):
            WorkerProfile("w", [1.5, 0.5])

    def test_empty_quality_rejected(self):
        with pytest.raises(ValidationError):
            WorkerProfile("w", [])


class TestWorkerPoolConfig:
    def test_defaults_valid(self):
        WorkerPoolConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_workers": 0},
            {"num_domains": 0},
            {"expertise_domains": (0, 2)},
            {"base_quality": (0.8, 0.5)},
            {"spammer_fraction": 1.5},
            {"active_domains": ()},
            {"active_domains": (99,)},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValidationError):
            WorkerPoolConfig(**kwargs).validate()


class TestWorkerPoolGenerate:
    def test_size_and_ids(self):
        pool = WorkerPool.generate(
            WorkerPoolConfig(num_workers=5, num_domains=4, seed=1)
        )
        assert len(pool) == 5
        assert len(set(pool.worker_ids)) == 5

    def test_deterministic(self):
        cfg = WorkerPoolConfig(num_workers=5, num_domains=4, seed=2)
        a = WorkerPool.generate(cfg)
        b = WorkerPool.generate(cfg)
        for wid in a.worker_ids:
            np.testing.assert_allclose(
                a.true_quality(wid), b.true_quality(wid)
            )

    def test_expertise_restricted_to_active_domains(self):
        cfg = WorkerPoolConfig(
            num_workers=40,
            num_domains=10,
            active_domains=(2, 5),
            spammer_fraction=0.0,
            seed=3,
        )
        pool = WorkerPool.generate(cfg)
        base_hi = cfg.base_quality[1] + 0.05
        for profile in pool:
            boosted = np.flatnonzero(profile.quality > base_hi)
            assert set(boosted) <= {2, 5}

    def test_spammers_have_low_quality_everywhere(self):
        cfg = WorkerPoolConfig(
            num_workers=200,
            num_domains=4,
            spammer_fraction=1.0,
            seed=4,
        )
        pool = WorkerPool.generate(cfg)
        for profile in pool:
            assert profile.quality.max() <= cfg.spammer_quality[1] + 0.05

    def test_experts_exist(self):
        pool = WorkerPool.generate(
            WorkerPoolConfig(
                num_workers=100,
                num_domains=4,
                spammer_fraction=0.0,
                seed=5,
            )
        )
        peak = max(p.quality.max() for p in pool)
        assert peak > 0.8

    def test_unknown_worker_rejected(self, small_pool):
        with pytest.raises(ValidationError):
            small_pool.profile("nope")

    def test_true_quality_returns_copy(self, small_pool):
        wid = small_pool.worker_ids[0]
        q = small_pool.true_quality(wid)
        q[:] = 0.0
        assert small_pool.true_quality(wid).max() > 0.0


class TestWorkerPoolConstruction:
    def test_empty_pool_rejected(self):
        with pytest.raises(ValidationError):
            WorkerPool([])

    def test_duplicate_ids_rejected(self):
        profiles = [
            WorkerProfile("w", [0.5]),
            WorkerProfile("w", [0.6]),
        ]
        with pytest.raises(ValidationError):
            WorkerPool(profiles)

    def test_inconsistent_sizes_rejected(self):
        profiles = [
            WorkerProfile("a", [0.5]),
            WorkerProfile("b", [0.5, 0.6]),
        ]
        with pytest.raises(ValidationError):
            WorkerPool(profiles)
