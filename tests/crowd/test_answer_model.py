"""Tests for the simulated answer model."""

import numpy as np
import pytest

from repro.core.types import Task
from repro.crowd.answer_model import (
    DISTRACTOR_PULL,
    collect_answers,
    sample_answer,
)
from repro.crowd.worker_pool import WorkerPool, WorkerProfile
from repro.errors import ValidationError
from repro.utils.rng import make_rng


def _task(ell=2, truth=1, domain=0, distractor=None, behavior=None):
    return Task(
        task_id=0,
        text="t",
        num_choices=ell,
        ground_truth=truth,
        true_domain=domain,
        distractor=distractor,
        behavior_domains=behavior,
    )


class TestSampleAnswer:
    def test_perfect_worker_always_correct(self):
        worker = WorkerProfile("w", np.array([1.0, 1.0]))
        rng = make_rng(0)
        for _ in range(20):
            assert sample_answer(_task(), worker, rng) == 1

    def test_hopeless_worker_always_wrong(self):
        worker = WorkerProfile("w", np.array([0.0, 0.0]))
        rng = make_rng(0)
        for _ in range(20):
            assert sample_answer(_task(), worker, rng) == 2

    def test_accuracy_tracks_domain_quality(self):
        worker = WorkerProfile("w", np.array([0.9, 0.2]))
        rng = make_rng(1)
        hits_domain0 = np.mean(
            [
                sample_answer(_task(domain=0), worker, rng) == 1
                for _ in range(2000)
            ]
        )
        hits_domain1 = np.mean(
            [
                sample_answer(_task(domain=1), worker, rng) == 1
                for _ in range(2000)
            ]
        )
        assert hits_domain0 == pytest.approx(0.9, abs=0.03)
        assert hits_domain1 == pytest.approx(0.2, abs=0.03)

    def test_behavior_mixture_blends_domains(self):
        worker = WorkerProfile("w", np.array([1.0, 0.0]))
        behavior = np.array([0.5, 0.5])
        rng = make_rng(2)
        hits = np.mean(
            [
                sample_answer(
                    _task(behavior=behavior), worker, rng
                )
                == 1
                for _ in range(3000)
            ]
        )
        assert hits == pytest.approx(0.5, abs=0.03)

    def test_distractor_attracts_wrong_answers(self):
        worker = WorkerProfile("w", np.array([0.0]))
        task = _task(ell=4, truth=1, distractor=3, domain=0)
        task.behavior_domains = None
        rng = make_rng(3)
        wrongs = [sample_answer(task, worker, rng) for _ in range(3000)]
        share_distractor = np.mean([w == 3 for w in wrongs])
        expected = DISTRACTOR_PULL + (1 - DISTRACTOR_PULL) / 3
        assert share_distractor == pytest.approx(expected, abs=0.04)

    def test_missing_ground_truth_rejected(self):
        worker = WorkerProfile("w", np.array([0.5]))
        task = Task(task_id=0, text="t", num_choices=2)
        with pytest.raises(ValidationError):
            sample_answer(task, worker, make_rng(0))

    def test_domain_vector_fallback(self):
        worker = WorkerProfile("w", np.array([1.0, 0.0]))
        task = Task(
            task_id=0,
            text="t",
            num_choices=2,
            ground_truth=1,
            domain_vector=np.array([1.0, 0.0]),
        )
        assert sample_answer(task, worker, make_rng(0)) == 1


class TestCollectAnswers:
    def test_counts_and_distinct_workers(self, simple_tasks, small_pool):
        answers = collect_answers(
            simple_tasks, small_pool, answers_per_task=4, seed=0
        )
        assert len(answers) == 3 * 4
        for task in simple_tasks:
            workers = [
                a.worker_id for a in answers if a.task_id == task.task_id
            ]
            assert len(set(workers)) == 4

    def test_deterministic(self, simple_tasks, small_pool):
        a = collect_answers(simple_tasks, small_pool, 3, seed=1)
        b = collect_answers(simple_tasks, small_pool, 3, seed=1)
        assert a == b

    def test_pool_too_small_rejected(self, simple_tasks, small_pool):
        with pytest.raises(ValidationError):
            collect_answers(simple_tasks, small_pool, 99)

    def test_invalid_count_rejected(self, simple_tasks, small_pool):
        with pytest.raises(ValidationError):
            collect_answers(simple_tasks, small_pool, 0)
