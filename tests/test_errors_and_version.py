"""Tests for the error hierarchy and package metadata."""

import pytest

from repro import PAPER_REFERENCE, __version__
from repro.errors import (
    BudgetExhaustedError,
    ConfigurationError,
    ReproError,
    UnknownTaskError,
    UnknownWorkerError,
    ValidationError,
    WorkBudgetExceeded,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ValidationError,
            ConfigurationError,
            BudgetExhaustedError,
            UnknownWorkerError,
            UnknownTaskError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_validation_is_value_error(self):
        # Callers using plain `except ValueError` still catch it.
        assert issubclass(ValidationError, ValueError)

    def test_unknown_lookups_are_key_errors(self):
        assert issubclass(UnknownWorkerError, KeyError)
        assert issubclass(UnknownTaskError, KeyError)

    def test_work_budget_carries_counts(self):
        error = WorkBudgetExceeded(operations=100, limit=10)
        assert error.operations == 100
        assert error.limit == 10
        assert "100" in str(error)


class TestMetadata:
    def test_version_is_semver_like(self):
        parts = __version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_paper_reference_names_the_paper(self):
        assert "DOCS" in PAPER_REFERENCE
        assert "PVLDB" in PAPER_REFERENCE
