"""Tests for the assignment engines (Figure 8 competitors)."""

import numpy as np
import pytest

from repro.baselines.engines import (
    AskItEngine,
    DMaxEngine,
    ICrowdEngine,
    QascaEngine,
    RandomBaselineEngine,
)
from repro.core.types import Answer
from repro.crowd.worker_pool import WorkerPool, WorkerPoolConfig
from repro.datasets import make_dataset
from repro.errors import ValidationError
from repro.platform.amt_sim import PlatformSimulator


@pytest.fixture(scope="module")
def small_dataset():
    return make_dataset("4d", seed=11, tasks_per_domain=10)


@pytest.fixture(scope="module")
def pool(small_dataset):
    active = tuple(d.taxonomy_index for d in small_dataset.domains)
    return WorkerPool.generate(
        WorkerPoolConfig(
            num_workers=12,
            num_domains=small_dataset.taxonomy.size,
            active_domains=active,
            seed=12,
        )
    )


ALL_ENGINES = [
    RandomBaselineEngine,
    AskItEngine,
    ICrowdEngine,
    QascaEngine,
    DMaxEngine,
]


class TestEngineProtocol:
    @pytest.mark.parametrize("engine_cls", ALL_ENGINES)
    def test_full_campaign_runs(self, engine_cls, small_dataset, pool):
        dataset = make_dataset("4d", seed=11, tasks_per_domain=10)
        simulator = PlatformSimulator(
            dataset, pool, answers_per_task=3, hit_size=2, seed=13
        )
        report = simulator.run(engine_cls())
        assert report.total_answers == dataset.num_tasks * 3
        assert set(report.truths) == {t.task_id for t in dataset.tasks}
        assert 0.0 <= report.accuracy <= 1.0

    @pytest.mark.parametrize("engine_cls", ALL_ENGINES)
    def test_never_reassigns_answered_task(
        self, engine_cls, small_dataset
    ):
        engine = engine_cls()
        engine.prepare(small_dataset)
        if engine.golden_task_ids():
            engine.bootstrap("w", [])
        first = engine.assign("w", 3)
        for task_id in first:
            engine.submit(Answer("w", task_id, 1))
        second = engine.assign("w", 3)
        assert not set(first) & set(second)

    @pytest.mark.parametrize("engine_cls", ALL_ENGINES)
    def test_assign_respects_k(self, engine_cls, small_dataset):
        engine = engine_cls()
        engine.prepare(small_dataset)
        if engine.golden_task_ids():
            engine.bootstrap("w", [])
        assert len(engine.assign("w", 5)) == 5

    def test_unprepared_engine_rejected(self):
        engine = AskItEngine()
        with pytest.raises(ValidationError):
            engine.assign("w", 1)


class TestAskIt:
    def test_prefers_uncertain_tasks(self, small_dataset):
        engine = AskItEngine()
        engine.prepare(small_dataset)
        ids = [t.task_id for t in small_dataset.tasks]
        # Give task ids[0] a decisive answer set: it becomes confident.
        for worker in ("a", "b", "c", "d"):
            engine.submit(Answer(worker, ids[0], 1))
        chosen = engine.assign("fresh", len(ids) - 1)
        assert ids[0] not in chosen


class TestICrowdEngine:
    def test_equal_assignment_constraint(self, small_dataset, pool):
        dataset = make_dataset("4d", seed=11, tasks_per_domain=10)
        simulator = PlatformSimulator(
            dataset, pool, answers_per_task=4, hit_size=2, seed=14
        )
        report = simulator.run(ICrowdEngine())
        # Every task ends with (nearly) the same answer count.
        counts = {}
        for hit in report.hit_log.all():
            for tid in hit.task_ids:
                counts[tid] = counts.get(tid, 0) + 1
        spread = max(counts.values()) - min(counts.values())
        assert spread <= 1


class TestQasca:
    def test_benefit_prefers_uncertain(self, small_dataset):
        engine = QascaEngine()
        engine.prepare(small_dataset)
        engine.bootstrap("w", [])
        ids = [t.task_id for t in small_dataset.tasks]
        # Make ids[0] near-certain via several agreeing answers.
        for worker in ("a", "b", "c", "d", "e"):
            engine.submit(Answer(worker, ids[0], 1))
        chosen = engine.assign("w", 5)
        assert ids[0] not in chosen


class TestDMax:
    def test_domain_matching(self):
        dataset = make_dataset("4d", seed=15, tasks_per_domain=8)
        engine = DMaxEngine(golden_count=8)
        engine.prepare(dataset)
        # A worker perfect in Sports only should receive Sports tasks.
        sports = dataset.domains[0].taxonomy_index
        quality = np.full(dataset.taxonomy.size, 0.4)
        quality[sports] = 0.99
        engine._store.set(
            "expert",
            quality,
            np.full(dataset.taxonomy.size, 10.0),
        )
        chosen = engine.assign("expert", 5)
        labels = {dataset.label_of(tid) for tid in chosen}
        assert labels == {"NBA"}
