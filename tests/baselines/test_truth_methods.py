"""Tests for the truth-inference baselines (MV, ZC, DS, IC, FC)."""

import numpy as np
import pytest

from repro.baselines import (
    DawidSkene,
    FaitCrowdTruth,
    ICrowdTruth,
    MajorityVote,
    TRUTH_METHODS,
    ZenCrowd,
    make_truth_method,
)
from repro.baselines.base import GoldenContext
from repro.core.types import Answer, Task
from repro.errors import ValidationError


def make_world(
    num_tasks=120,
    seed=0,
    expert_quality=0.92,
    noise_quality=0.5,
    num_noise=3,
    ell=2,
):
    """Two experts + noise workers over two domains."""
    rng = np.random.default_rng(seed)
    tasks, answers = [], []
    workers = {"e1": expert_quality, "e2": expert_quality}
    for i in range(num_noise):
        workers[f"n{i}"] = noise_quality
    for tid in range(num_tasks):
        domain = tid % 2
        r = np.zeros(2)
        r[domain] = 1.0
        truth = int(rng.integers(1, ell + 1))
        tasks.append(
            Task(
                task_id=tid,
                text=f"t{tid}",
                num_choices=ell,
                domain_vector=r,
                ground_truth=truth,
                true_domain=domain,
            )
        )
        for worker, quality in workers.items():
            if rng.random() < quality:
                choice = truth
            else:
                wrong = [c for c in range(1, ell + 1) if c != truth]
                choice = int(rng.choice(wrong))
            answers.append(Answer(worker, tid, choice))
    return tasks, answers


def golden_for(tasks, count=20):
    chosen = tasks[:count]
    return GoldenContext(
        [t.task_id for t in chosen],
        {t.task_id: t.ground_truth for t in chosen},
    )


class TestRegistry:
    def test_all_methods_constructible(self):
        for name in TRUTH_METHODS:
            method = make_truth_method(name)
            assert method.name == name

    def test_unknown_rejected(self):
        with pytest.raises(ValidationError):
            make_truth_method("nope")


class TestMajorityVote:
    def test_simple_majority(self):
        tasks = [Task(task_id=0, text="t", num_choices=2)]
        answers = [
            Answer("a", 0, 1),
            Answer("b", 0, 2),
            Answer("c", 0, 2),
        ]
        assert MajorityVote().infer_truths(tasks, answers) == {0: 2}

    def test_tie_breaks_low(self):
        tasks = [Task(task_id=0, text="t", num_choices=3)]
        answers = [Answer("a", 0, 3), Answer("b", 0, 2)]
        assert MajorityVote().infer_truths(tasks, answers) == {0: 2}


class TestZenCrowd:
    def test_recovers_experts(self):
        tasks, answers = make_world()
        zc = ZenCrowd()
        accuracy = zc.accuracy(tasks, answers, golden_for(tasks))
        mv = MajorityVote().accuracy(tasks, answers)
        assert accuracy >= mv

    def test_golden_initialisation_used(self):
        tasks, answers = make_world(seed=1)
        with_golden = ZenCrowd(max_iterations=1).accuracy(
            tasks, answers, golden_for(tasks)
        )
        # One iteration with cold start differs from golden-informed.
        cold = ZenCrowd(max_iterations=1).accuracy(tasks, answers)
        assert with_golden != cold or with_golden > 0.5

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            ZenCrowd(max_iterations=0)
        with pytest.raises(ValidationError):
            ZenCrowd(default_reliability=1.0)


class TestDawidSkene:
    def test_beats_majority_with_spammers(self):
        tasks, answers = make_world(noise_quality=0.45, seed=2)
        ds = DawidSkene()
        accuracy = ds.accuracy(tasks, answers, golden_for(tasks))
        mv = MajorityVote().accuracy(tasks, answers)
        assert accuracy > mv

    def test_heterogeneous_ell_rejected(self):
        tasks = [
            Task(task_id=0, text="a", num_choices=2),
            Task(task_id=1, text="b", num_choices=3),
        ]
        with pytest.raises(ValidationError):
            DawidSkene().infer_truths(tasks, [Answer("w", 0, 1)])

    def test_multiclass(self):
        tasks, answers = make_world(ell=4, seed=3)
        accuracy = DawidSkene().accuracy(
            tasks, answers, golden_for(tasks)
        )
        assert accuracy > 0.7


class TestICrowd:
    def test_domain_weights_help(self):
        tasks, answers = make_world(seed=4)
        ic = ICrowdTruth()
        accuracy = ic.accuracy(tasks, answers, golden_for(tasks))
        assert accuracy > 0.7

    def test_requires_domains(self):
        tasks = [Task(task_id=0, text="t", num_choices=2)]
        with pytest.raises(ValidationError):
            ICrowdTruth().infer_truths(tasks, [Answer("w", 0, 1)])

    def test_explicit_domains_accepted(self):
        tasks = [Task(task_id=0, text="t", num_choices=2)]
        answers = [Answer("w", 0, 1)]
        truths = ICrowdTruth(task_domains={0: 7}).infer_truths(
            tasks, answers
        )
        assert truths == {0: 1}


class TestFaitCrowd:
    def test_topic_conditioned_inference(self):
        tasks, answers = make_world(seed=5)
        fc = FaitCrowdTruth()
        accuracy = fc.accuracy(tasks, answers, golden_for(tasks))
        assert accuracy > 0.75

    def test_fixed_topics_variant(self):
        tasks, answers = make_world(seed=6)
        fc = FaitCrowdTruth(joint_topics=False)
        accuracy = fc.accuracy(tasks, answers, golden_for(tasks))
        assert accuracy > 0.75

    def test_topic_drift_possible_with_misleading_text(self):
        """FaitCrowd's defining weakness: identical task texts across
        domains let the joint topic step merge them."""
        rng = np.random.default_rng(7)
        tasks, answers = [], []
        for tid in range(60):
            domain = tid % 2
            r = np.zeros(2)
            r[domain] = 1.0
            truth = int(rng.integers(1, 3))
            tasks.append(
                Task(
                    task_id=tid,
                    # Same words for both domains: no text signal.
                    text="compare the height of alpha and beta",
                    num_choices=2,
                    domain_vector=r,
                    ground_truth=truth,
                    true_domain=domain,
                )
            )
            for worker in ("a", "b", "c"):
                quality = 0.85 if worker == "a" else 0.55
                choice = (
                    truth if rng.random() < quality else 3 - truth
                )
                answers.append(Answer(worker, tid, choice))
        joint = FaitCrowdTruth(joint_topics=True)
        # Must run without error and still produce sane output; the
        # topics may legitimately collapse to one.
        truths = joint.infer_truths(tasks, answers)
        assert set(truths) == {t.task_id for t in tasks}

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            FaitCrowdTruth(max_iterations=0)


class TestCommonInterface:
    @pytest.mark.parametrize("name", list(TRUTH_METHODS))
    def test_all_methods_produce_full_truths(self, name):
        tasks, answers = make_world(num_tasks=40, seed=8)
        method = make_truth_method(name)
        truths = method.infer_truths(tasks, answers, golden_for(tasks, 10))
        assert set(truths) == {t.task_id for t in tasks}
        for task in tasks:
            assert 1 <= truths[task.task_id] <= task.num_choices

    def test_accuracy_excludes_golden_option(self):
        tasks, answers = make_world(num_tasks=40, seed=9)
        golden = golden_for(tasks, 10)
        mv = MajorityVote()
        with_golden = mv.accuracy(tasks, answers, golden)
        without_golden = mv.accuracy(
            tasks, answers, golden, exclude_golden=True
        )
        # Both are valid accuracies; the excluded variant scores fewer
        # tasks.
        assert 0.0 <= without_golden <= 1.0
        assert 0.0 <= with_golden <= 1.0
