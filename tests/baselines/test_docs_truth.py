"""Tests for the DocsTruth adapter (DOCS's TI behind TruthMethod)."""

import numpy as np
import pytest

from repro.baselines.base import GoldenContext
from repro.baselines.docs_truth import DocsTruth
from repro.core.types import Answer, Task
from repro.errors import ValidationError


def small_world(seed=0):
    rng = np.random.default_rng(seed)
    tasks, answers = [], []
    qualities = {
        "expert": np.array([0.9, 0.9]),
        "noise": np.array([0.5, 0.5]),
        "noise2": np.array([0.5, 0.5]),
    }
    for tid in range(40):
        domain = tid % 2
        r = np.zeros(2)
        r[domain] = 1.0
        truth = int(rng.integers(1, 3))
        tasks.append(
            Task(
                task_id=tid,
                text=f"t{tid}",
                num_choices=2,
                domain_vector=r,
                ground_truth=truth,
            )
        )
        for worker, quality in qualities.items():
            choice = (
                truth if rng.random() < quality[domain] else 3 - truth
            )
            answers.append(Answer(worker, tid, choice))
    return tasks, answers


class TestDocsTruth:
    def test_infers_all_tasks(self):
        tasks, answers = small_world()
        truths = DocsTruth().infer_truths(tasks, answers)
        assert set(truths) == {t.task_id for t in tasks}

    def test_golden_initialisation_flows_through(self):
        tasks, answers = small_world()
        golden = GoldenContext(
            [0, 1, 2, 3],
            {tid: tasks[tid].ground_truth for tid in range(4)},
        )
        accuracy = DocsTruth().accuracy(tasks, answers, golden)
        assert accuracy > 0.6

    def test_no_golden_still_works(self):
        tasks, answers = small_world()
        accuracy = DocsTruth().accuracy(tasks, answers, None)
        assert 0.0 <= accuracy <= 1.0

    def test_missing_domain_vectors_rejected_with_golden(self):
        tasks, answers = small_world()
        tasks[0].domain_vector = None
        golden = GoldenContext(
            [1], {1: tasks[1].ground_truth}
        )
        with pytest.raises(ValidationError):
            DocsTruth().infer_truths(tasks, answers, golden)

    def test_name(self):
        assert DocsTruth().name == "DOCS"
