"""The cross-campaign worker model (Section 4.2, Theorem 1).

DOCS maintains worker quality in the database *across requesters*: a
campaign handed a shared worker store merges its batch estimates into
it, and a later campaign recognises returning workers — they skip the
golden pre-test and are assigned with qualities seeded from the store
instead of the global default.
"""

import numpy as np
import pytest

from repro.core.quality_store import WorkerQualityStore
from repro.core.types import Answer
from repro.datasets import make_dataset
from repro.errors import ValidationError
from repro.platform.sqlite_storage import SqliteWorkerQualityStore
from repro.system import DocsConfig, DocsSystem

WORKERS = [f"w{i}" for i in range(4)]


@pytest.fixture()
def dataset():
    return make_dataset("4d", seed=31, tasks_per_domain=8)


@pytest.fixture()
def second_dataset():
    return make_dataset("4d", seed=77, tasks_per_domain=8)


def _config():
    return DocsConfig(golden_count=6, rerun_interval=15, hit_size=3)


def _drive(system, dataset, arrivals, start=0):
    for arrival in range(start, arrivals):
        worker = WORKERS[arrival % len(WORKERS)]
        if system.needs_bootstrap(worker):
            system.bootstrap(
                worker,
                [
                    Answer(
                        worker, tid, dataset.task_by_id(tid).ground_truth
                    )
                    for tid in system.golden_task_ids()
                ],
            )
        for task_id in system.assign(worker, 2):
            ell = dataset.task_by_id(task_id).num_choices
            choice = 1 + (task_id * 3 + arrival) % ell
            system.submit(Answer(worker, task_id, choice))


def _store_factory(kind, m, tmp_path):
    if kind == "memory":
        return WorkerQualityStore(m)
    return SqliteWorkerQualityStore(m, path=str(tmp_path / "workers.db"))


class TestCrossCampaignSharing:
    @pytest.mark.parametrize("kind", ["memory", "sqlite"])
    def test_second_campaign_assigns_with_merged_qualities(
        self, dataset, second_dataset, tmp_path, kind
    ):
        """The acceptance-criteria scenario: campaign 1 populates the
        shared store; campaign 2 recognises its workers, skips their
        pre-test, and assigns using the merged qualities."""
        shared = _store_factory(kind, dataset.taxonomy.size, tmp_path)

        first = DocsSystem(_config(), worker_store=shared)
        first.prepare(dataset)
        _drive(first, dataset, 20)
        first.finalize()

        known = set(shared.known_workers())
        assert set(WORKERS) <= known
        for worker in WORKERS:
            stats = shared.get(worker)
            assert np.all(np.isfinite(stats.quality))
            assert np.all(stats.weight >= 0)
            assert np.any(stats.weight > 0)

        second = DocsSystem(_config(), worker_store=shared)
        second.prepare(second_dataset)
        returning = WORKERS[0]
        # Known workers skip the golden pre-test...
        assert not second.needs_bootstrap(returning)
        expected = shared.get(returning)
        hit = second.assign(returning, 3)
        assert hit
        # ...and enter the campaign seeded with the shared statistics,
        # so assignment ran on the merged qualities, not the default.
        seeded = second.quality_store.get(returning)
        np.testing.assert_array_equal(seeded.quality, expected.quality)
        np.testing.assert_array_equal(seeded.weight, expected.weight)
        assert not np.allclose(
            second.quality_store.blended_quality(returning),
            np.full(dataset.taxonomy.size, _config().default_quality),
        )
        # A genuinely new worker still takes the pre-test.
        assert second.needs_bootstrap("stranger")

    def test_exports_telescope_to_one_batch(self, dataset):
        """Theorem 1: merging per-rerun deltas must equal merging the
        campaign's final estimate once — golden evidence plus the final
        full-TI batch."""
        shared = WorkerQualityStore(dataset.taxonomy.size)
        system = DocsSystem(_config(), worker_store=shared)
        system.prepare(dataset)

        worker = WORKERS[0]
        golden_answers = [
            Answer(worker, tid, dataset.task_by_id(tid).ground_truth)
            for tid in system.golden_task_ids()
        ]
        system.bootstrap(worker, golden_answers)
        golden = system.quality_store.get(worker)
        golden_q, golden_u = golden.quality.copy(), golden.weight.copy()

        _drive(system, dataset, 24)  # crosses several rerun boundaries
        system.finalize()

        # After finalize the campaign store holds exactly the final
        # full-TI (log-only) batch estimate for this worker.
        log_stats = system.quality_store.get(worker)
        log_q, log_u = log_stats.quality, log_stats.weight

        total_u = golden_u + log_u
        expected_q = np.full_like(total_u, np.nan)
        mask = total_u > 0
        expected_q[mask] = (
            golden_q[mask] * golden_u[mask] + log_q[mask] * log_u[mask]
        ) / total_u[mask]

        merged = shared.get(worker)
        np.testing.assert_allclose(merged.weight, total_u, atol=1e-9)
        np.testing.assert_allclose(
            merged.quality[mask], expected_q[mask], atol=1e-9
        )

    def test_resume_does_not_re_export(self, dataset, tmp_path):
        """Replaying a journaled campaign must not merge the same
        evidence into the shared store a second time."""
        shared = WorkerQualityStore(dataset.taxonomy.size)
        path = str(tmp_path / "campaign.db")
        system = DocsSystem(
            _config(), storage="sqlite", path=path, worker_store=shared
        )
        system.prepare(dataset)
        _drive(system, dataset, 20)
        system.close()
        before = {
            worker: shared.get(worker) for worker in shared.known_workers()
        }

        resumed = DocsSystem.resume(
            path, config=_config(), worker_store=shared
        )
        for worker, stats in before.items():
            after = shared.get(worker)
            np.testing.assert_array_equal(after.quality, stats.quality)
            np.testing.assert_array_equal(after.weight, stats.weight)
        # New evidence after the resume still exports.
        _drive(resumed, dataset, 40, start=20)
        resumed.finalize()
        grown = any(
            np.any(
                shared.get(worker).weight > before[worker].weight + 1e-12
            )
            for worker in before
        )
        assert grown
        resumed.close()

    def test_mismatched_taxonomy_rejected(self, dataset):
        shared = WorkerQualityStore(dataset.taxonomy.size + 3)
        system = DocsSystem(_config(), worker_store=shared)
        with pytest.raises(ValidationError, match="domains"):
            system.prepare(dataset)
        # The failed prepare leaves the system retryable without a store
        # mismatch.
        retry = DocsSystem(_config())
        retry.prepare(dataset)

    def test_attach_worker_store_after_resume(self, dataset, tmp_path):
        path = str(tmp_path / "attach.db")
        system = DocsSystem(_config(), storage="sqlite", path=path)
        system.prepare(dataset)
        _drive(system, dataset, 12)
        system.close()

        shared = WorkerQualityStore(dataset.taxonomy.size)
        resumed = DocsSystem.resume(path, config=_config())
        resumed.attach_worker_store(shared)
        with pytest.raises(ValidationError, match="already attached"):
            resumed.attach_worker_store(shared)
        _drive(resumed, dataset, 30, start=12)
        resumed.finalize()
        assert list(shared.known_workers())
        resumed.close()

        bad = WorkerQualityStore(dataset.taxonomy.size + 1)
        fresh = DocsSystem.resume(path, config=_config())
        with pytest.raises(ValidationError, match="domains"):
            fresh.attach_worker_store(bad)
        fresh.close()


class TestExportGuards:
    def test_attach_fresh_store_never_stores_out_of_range_quality(
        self, dataset, tmp_path
    ):
        """Regression: baselines advance at every re-run even without a
        store; attaching a fresh store afterwards used to export a
        revision-only delta whose mass/weight ratio landed outside
        [0, 1] (e.g. quality -1.5). The first export for a worker the
        store does not know must ship the full cumulative estimate."""
        path = str(tmp_path / "attach_guard.db")
        system = DocsSystem(_config(), storage="sqlite", path=path)
        system.prepare(dataset)
        _drive(system, dataset, 20)  # crosses re-run boundaries
        assert system._exported_log  # baselines advanced, no store yet

        shared = WorkerQualityStore(dataset.taxonomy.size)
        system.attach_worker_store(shared)
        _drive(system, dataset, 32, start=20)
        system.finalize()
        system.close()

        assert list(shared.known_workers())
        for worker in shared.known_workers():
            stats = shared.get(worker)
            assert np.all(stats.quality >= 0.0), (worker, stats.quality)
            assert np.all(stats.quality <= 1.0), (worker, stats.quality)
            assert np.all(stats.weight >= 0.0)
            assert np.all(np.isfinite(stats.quality))

    @pytest.mark.parametrize("kind", ["memory", "sqlite"])
    def test_folded_quality_clamped(self, tmp_path, kind):
        """A malformed revision delta (no base mass in the store) may
        imply an out-of-range quality; the fold clamps it."""
        store = _store_factory(kind, 2, tmp_path)
        store.apply_batch_delta(
            "w", np.array([-3.0, 5.0]), np.array([2.0, 2.0])
        )
        stats = store.get("w")
        np.testing.assert_allclose(stats.quality, [0.0, 1.0])
        np.testing.assert_allclose(stats.weight, [2.0, 2.0])

    def test_concurrent_sqlite_exports_do_not_lose_updates(
        self, tmp_path
    ):
        """Two connections to one shared file interleave exports; the
        in-SQL fold must accumulate both (a fetch-compute-set round
        trip would lose the first write)."""
        path = str(tmp_path / "workers.db")
        first = SqliteWorkerQualityStore(2, path=path)
        second = SqliteWorkerQualityStore(2, path=path)
        for _ in range(5):
            first.apply_batch_delta(
                "w", np.array([0.8, 0.0]), np.array([1.0, 0.0])
            )
            second.apply_batch_delta(
                "w", np.array([0.4, 0.0]), np.array([1.0, 0.0])
            )
        stats = first.get("w")
        assert stats.weight[0] == pytest.approx(10.0)
        assert stats.quality[0] == pytest.approx(0.6)
        first.close()
        second.close()


class TestUpsertContention:
    """The single-statement UPSERT export path under contention: two
    live campaigns interleave exports into one shared file through
    separate connections, and every fold must land exactly."""

    @staticmethod
    def _drive_named(system, dataset, workers, arrivals, boot_stats,
                     start=0):
        """_drive with a custom worker set, capturing each worker's
        campaign stats right after the golden bootstrap (the mass the
        bootstrap exports into the shared store)."""
        for arrival in range(start, arrivals):
            worker = workers[arrival % len(workers)]
            if system.needs_bootstrap(worker):
                system.bootstrap(
                    worker,
                    [
                        Answer(
                            worker, tid,
                            dataset.task_by_id(tid).ground_truth,
                        )
                        for tid in system.golden_task_ids()
                    ],
                )
                stats = system.quality_store.get(worker)
                boot_stats[worker] = (
                    stats.quality.copy(), stats.weight.copy()
                )
            for task_id in system.assign(worker, 2):
                ell = dataset.task_by_id(task_id).num_choices
                choice = 1 + (task_id * 3 + arrival) % ell
                system.submit(Answer(worker, task_id, choice))

    def test_two_interleaved_campaigns_fold_exactly(
        self, dataset, second_dataset, tmp_path
    ):
        """Disjoint worker sets make the expectation exact — each
        worker's shared-store row must equal their bootstrap export
        plus their campaign's final full-TI estimate (the Theorem-1
        deltas telescope) — while the two campaigns' interleaved
        transactions contend on the same SQLite file."""
        path = str(tmp_path / "contended.db")
        m = dataset.taxonomy.size
        store_a = SqliteWorkerQualityStore(m, path=path)
        store_b = SqliteWorkerQualityStore(m, path=path)
        sys_a = DocsSystem(_config(), worker_store=store_a)
        sys_b = DocsSystem(_config(), worker_store=store_b)
        sys_a.prepare(dataset)
        sys_b.prepare(second_dataset)
        workers_a = [f"a{i}" for i in range(3)]
        workers_b = [f"b{i}" for i in range(3)]
        boot_stats = {}
        # Interleave arrival-by-arrival: rerun-boundary exports from
        # both campaigns hit the shared file in alternation.
        for arrival in range(30):
            self._drive_named(
                sys_a, dataset, workers_a, arrival + 1, boot_stats,
                start=arrival,
            )
            self._drive_named(
                sys_b, second_dataset, workers_b, arrival + 1,
                boot_stats, start=arrival,
            )
        assert sys_a.finalize() and sys_b.finalize()

        for system, workers in (
            (sys_a, workers_a), (sys_b, workers_b),
        ):
            for worker in workers:
                boot_q, boot_u = boot_stats[worker]
                final_q, final_u = system._exported_log[worker]
                expected_mass = boot_q * boot_u + final_q * final_u
                expected_u = boot_u + final_u
                merged = store_a.get(worker)
                np.testing.assert_allclose(
                    merged.weight, expected_u, atol=1e-9
                )
                positive = expected_u > 0
                np.testing.assert_allclose(
                    merged.quality[positive],
                    np.clip(
                        expected_mass[positive] / expected_u[positive],
                        0.0, 1.0,
                    ),
                    atol=1e-9,
                )
        store_a.close()
        store_b.close()
