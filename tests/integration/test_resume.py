"""Kill-and-resume: a checkpointed campaign must resume bit-identically.

The acceptance bar for the durable serving plane: a campaign that is
checkpointed mid-run, "killed" (the process abandons the system without
closing it), and rebuilt with :meth:`DocsSystem.resume` must produce
exactly the same inference state, assignments, and final truths as a
campaign that never stopped.
"""

import sqlite3

import numpy as np
import pytest

from repro.core.types import Answer, Task
from repro.datasets import make_dataset
from repro.errors import JournalCorruptionError, ValidationError
from repro.system import DocsConfig, DocsSystem

WORKERS = [f"w{i}" for i in range(6)]


@pytest.fixture()
def dataset():
    return make_dataset("4d", seed=31, tasks_per_domain=8)


def _config():
    return DocsConfig(
        golden_count=6,
        rerun_interval=20,
        hit_size=3,
        journal_batch_size=8,
    )


def _golden_answers(system, dataset, worker):
    return [
        Answer(worker, tid, dataset.task_by_id(tid).ground_truth)
        for tid in system.golden_task_ids()
    ]


def _drive(system, dataset, arrivals, start=0):
    """A deterministic campaign script: round-robin workers, 2-task
    HITs, arithmetic answer choices. Identical system state implies
    identical behaviour, so two runs of the same arrival range agree."""
    for arrival in range(start, arrivals):
        worker = WORKERS[arrival % len(WORKERS)]
        if system.needs_bootstrap(worker):
            system.bootstrap(
                worker, _golden_answers(system, dataset, worker)
            )
        for task_id in system.assign(worker, 2):
            ell = dataset.task_by_id(task_id).num_choices
            choice = 1 + (task_id * 3 + arrival) % ell
            system.submit(Answer(worker, task_id, choice))


def _fingerprint(system):
    """Every piece of hot state a resume must reproduce."""
    states = {
        tid: (
            system._incremental.state(tid).s.copy(),
            system._incremental.state(tid).M.copy(),
        )
        for tid in system.database.task_ids()
    }
    qualities = {
        w: system.quality_store.get(w)
        for w in sorted(system.quality_store.known_workers())
    }
    return states, qualities


def _assert_same_state(left, right):
    l_states, l_quals = _fingerprint(left)
    r_states, r_quals = _fingerprint(right)
    assert set(l_states) == set(r_states)
    for tid in l_states:
        assert np.array_equal(l_states[tid][0], r_states[tid][0]), tid
        assert np.array_equal(l_states[tid][1], r_states[tid][1]), tid
    assert set(l_quals) == set(r_quals)
    for w in l_quals:
        assert np.array_equal(l_quals[w].quality, r_quals[w].quality), w
        assert np.array_equal(l_quals[w].weight, r_quals[w].weight), w
    assert len(left._log) == len(right._log)
    assert left._submissions_since_rerun == right._submissions_since_rerun
    assert left._bootstrapped == right._bootstrapped


class TestKillAndResume:
    def test_resumed_campaign_identical_to_uninterrupted(
        self, dataset, tmp_path
    ):
        total, kill_at = 36, 17

        straight = DocsSystem(
            _config(), storage="sqlite", path=str(tmp_path / "a.db")
        )
        straight.prepare(dataset)
        _drive(straight, dataset, total)

        crash_path = str(tmp_path / "b.db")
        crashed = DocsSystem(
            _config(), storage="sqlite", path=crash_path
        )
        crashed.prepare(dataset)
        _drive(crashed, dataset, kill_at)
        crashed.checkpoint()
        # Simulated kill: the object is abandoned, never closed.

        resumed = DocsSystem.resume(crash_path, config=_config())
        _drive(resumed, dataset, total, start=kill_at)

        _assert_same_state(straight, resumed)
        # Identical next assignments for every worker...
        for worker in WORKERS:
            assert straight.assign(worker, 3) == resumed.assign(worker, 3)
        # ...and identical final inference.
        assert straight.finalize() == resumed.finalize()
        straight.close()
        resumed.close()

    def test_unflushed_tail_is_lost_not_torn(self, dataset, tmp_path):
        """Answers after the last flush are absent after a crash, but
        the journal stays consistent and resume matches the truncated
        run exactly."""
        config = DocsConfig(
            golden_count=6,
            rerun_interval=20,
            hit_size=3,
            journal_batch_size=500,  # nothing auto-flushes
        )
        reference = DocsSystem(
            config, storage="sqlite", path=str(tmp_path / "ref.db")
        )
        reference.prepare(dataset)
        _drive(reference, dataset, 10)
        reference.checkpoint()

        crash_path = str(tmp_path / "crash.db")
        crashed = DocsSystem(config, storage="sqlite", path=crash_path)
        crashed.prepare(dataset)
        _drive(crashed, dataset, 10)
        crashed.checkpoint()
        _drive(crashed, dataset, 14, start=10)  # unflushed tail
        assert crashed.database.journal.pending > 0
        # Abandoned without close: the tail never reaches the file.

        resumed = DocsSystem.resume(crash_path, config=config)
        _assert_same_state(reference, resumed)
        reference.close()
        resumed.close()

    def test_resume_continues_journal(self, dataset, tmp_path):
        path = str(tmp_path / "cont.db")
        system = DocsSystem(_config(), storage="sqlite", path=path)
        system.prepare(dataset)
        _drive(system, dataset, 8)
        system.close()

        resumed = DocsSystem.resume(path, config=_config())
        _drive(resumed, dataset, 16, start=8)
        resumed.close()

        again = DocsSystem.resume(path, config=_config())
        again.database.journal.validate()
        assert len(again.database.answers) == len(resumed.database.answers)
        again.close()


class TestResumeEdgeCases:
    def test_resume_from_empty_journal(self, dataset, tmp_path):
        """A prepared-but-unanswered campaign resumes to a fresh state."""
        path = str(tmp_path / "empty.db")
        system = DocsSystem(_config(), storage="sqlite", path=path)
        system.prepare(dataset)
        system.close()

        fresh = DocsSystem(_config(), storage="memory")
        fresh.prepare(make_dataset("4d", seed=31, tasks_per_domain=8))

        resumed = DocsSystem.resume(path, config=_config())
        assert len(resumed.database.answers) == 0
        assert len(resumed._log) == 0
        assert resumed.golden_task_ids() == fresh.golden_task_ids()
        for system_ in (resumed, fresh):
            system_.bootstrap(
                "w0", _golden_answers(system_, dataset, "w0")
            )
        assert resumed.assign("w0", 4) == fresh.assign("w0", 4)
        resumed.close()

    def test_resume_without_campaign_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="nothing to resume"):
            DocsSystem.resume(str(tmp_path / "void.db"))

    def test_prepare_on_existing_campaign_names_resume(
        self, dataset, tmp_path
    ):
        path = str(tmp_path / "busy.db")
        system = DocsSystem(_config(), storage="sqlite", path=path)
        system.prepare(dataset)
        system.close()
        second = DocsSystem(_config(), storage="sqlite", path=path)
        with pytest.raises(ValidationError, match="resume"):
            second.prepare(dataset)

    def test_corrupt_final_batch_rejected(self, dataset, tmp_path):
        path = str(tmp_path / "corrupt.db")
        system = DocsSystem(_config(), storage="sqlite", path=path)
        system.prepare(dataset)
        _drive(system, dataset, 10)
        system.close()
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE answers_log SET choice = ((choice) % 2) + 1 "
            "WHERE seq = (SELECT MAX(seq) FROM answers_log)"
        )
        conn.commit()
        conn.close()
        with pytest.raises(JournalCorruptionError, match="checksum"):
            DocsSystem.resume(path, config=_config())

    def test_partial_final_batch_rejected(self, dataset, tmp_path):
        path = str(tmp_path / "torn.db")
        system = DocsSystem(_config(), storage="sqlite", path=path)
        system.prepare(dataset)
        _drive(system, dataset, 10)
        system.close()
        conn = sqlite3.connect(path)
        # Simulate a torn write: drop the final batch's record but keep
        # (some of) its rows.
        conn.execute(
            "DELETE FROM journal_batches WHERE batch = "
            "(SELECT MAX(batch) FROM journal_batches)"
        )
        conn.commit()
        conn.close()
        with pytest.raises(JournalCorruptionError, match="partial"):
            DocsSystem.resume(path, config=_config())

    def test_sqlite_requires_path(self):
        with pytest.raises(ValidationError, match="path"):
            DocsSystem(storage="sqlite")

    def test_unknown_storage_mode(self):
        with pytest.raises(ValidationError, match="storage"):
            DocsSystem(storage="redis")


class TestIngestRollback:
    def test_rejected_growth_batch_leaves_file_resumable(
        self, dataset, tmp_path
    ):
        """A growth batch rejected at the pipeline boundary (bad
        precomputed vector) must leave no orphan task in the durable
        catalogue — an orphan would shift arena rows and break resume."""
        path = str(tmp_path / "rollback.db")
        system = DocsSystem(_config(), storage="sqlite", path=path)
        system.prepare(dataset)
        _drive(system, dataset, 10)
        tasks_before = len(system.database)
        bad = Task(
            task_id=20_000,
            text="bad vector",
            num_choices=2,
            domain_vector=np.array([0.5, 0.5]),  # wrong dimension
        )
        with pytest.raises(ValidationError, match="domain_vector"):
            system.add_tasks([bad])
        assert len(system.database) == tasks_before
        assert 20_000 not in system._incremental.arena
        system.close()

        resumed = DocsSystem.resume(path, config=_config())
        assert len(resumed.database) == tasks_before
        resumed.close()

    def test_remove_tasks_rolls_back_catalogue(self, dataset, tmp_path):
        from repro.platform import SqliteSystemDatabase, SystemDatabase

        for db in (
            SystemDatabase(),
            SqliteSystemDatabase(str(tmp_path / "rb.db")),
        ):
            db.add_tasks(dataset.tasks[:4])
            db.remove_tasks([t.task_id for t in dataset.tasks[2:4]])
            db.remove_tasks([999_999])  # unknown ids are ignored
            assert db.task_ids() == [
                t.task_id for t in dataset.tasks[:2]
            ]


class TestCorruptionRemediation:
    def test_documented_remediation_actually_recovers(
        self, dataset, tmp_path
    ):
        """Following the JournalCorruptionError instructions (drop the
        bad batch from BOTH journal tables) must yield a journal that
        validates, resumes, and accepts new flushes without id reuse."""
        path = str(tmp_path / "remedy.db")
        system = DocsSystem(_config(), storage="sqlite", path=path)
        system.prepare(dataset)
        _drive(system, dataset, 12)
        system.close()

        conn = sqlite3.connect(path)
        (bad_batch,) = conn.execute(
            "SELECT MAX(batch) FROM journal_batches"
        ).fetchone()
        conn.execute(
            "UPDATE answers_log SET choice = ((choice) % 2) + 1 "
            "WHERE batch = ?", (bad_batch,)
        )
        conn.commit()
        with pytest.raises(JournalCorruptionError):
            DocsSystem.resume(path, config=_config())
        # The documented remediation: delete the batch from both tables.
        conn.execute(
            "DELETE FROM answers_log WHERE batch = ?", (bad_batch,)
        )
        conn.execute(
            "DELETE FROM journal_batches WHERE batch = ?", (bad_batch,)
        )
        conn.commit()
        conn.close()

        resumed = DocsSystem.resume(path, config=_config())
        _drive(resumed, dataset, 18, start=12)  # continues + re-flushes
        resumed.close()
        reopened = DocsSystem.resume(path, config=_config())
        reopened.database.journal.validate()
        reopened.close()


class TestResumeLiveGrowth:
    def test_add_tasks_after_resume_with_kb(self, dataset, tmp_path):
        path = str(tmp_path / "grow.db")
        system = DocsSystem(_config(), storage="sqlite", path=path)
        system.prepare(dataset)
        _drive(system, dataset, 8)
        system.close()

        resumed = DocsSystem.resume(
            path, config=_config(), kb=dataset.kb
        )
        new_task = Task(
            task_id=10_000,
            text=dataset.tasks[0].text,
            num_choices=2,
        )
        report = resumed.add_tasks([new_task])
        assert report.tasks == 1
        assert new_task.domain_vector is not None
        assert 10_000 in resumed._incremental.arena
        resumed.close()

        # The grown task is part of the durable campaign too.
        regrown = DocsSystem.resume(path, config=_config())
        assert 10_000 in regrown._incremental.arena
        regrown.close()

    def test_add_tasks_after_resume_without_kb_needs_vectors(
        self, dataset, tmp_path
    ):
        path = str(tmp_path / "nolinker.db")
        system = DocsSystem(_config(), storage="sqlite", path=path)
        system.prepare(dataset)
        system.close()

        resumed = DocsSystem.resume(path, config=_config())
        bare = Task(task_id=10_001, text="unlinked", num_choices=2)
        with pytest.raises(ValidationError, match="linker"):
            resumed.add_tasks([bare])
        m = dataset.taxonomy.size
        vectored = Task(
            task_id=10_002,
            text="vectored",
            num_choices=2,
            domain_vector=np.full(m, 1.0 / m),
        )
        assert resumed.add_tasks([vectored]).tasks == 1
        resumed.close()
