"""Graceful degradation: durable-write outages must not take down
serving, and recovery must lose zero accepted answers.

The outage is simulated by arming ``journal.flush.pre-commit`` (or the
shared store's ``worker_store.apply_delta``) with a *persistent*
``database is locked`` — the transient error the retry policy
recognises, fired on every attempt until disarmed, i.e. an outage that
outlives the backoff budget. The campaign must:

- drop to an explicit ``degraded`` mode (``durability_status()``),
- keep serving assignments and accepting submits from memory,
- buffer every accepted answer in the journal's pending queue and
  every shared-store delta in the export backlog,
- drain everything on the first successful ``checkpoint()`` — verified
  end-to-end by killing and resuming the campaign afterwards.
"""

import sqlite3

import numpy as np
import pytest

from repro.core.types import Answer
from repro.datasets import make_dataset
from repro.platform import faults
from repro.platform.sqlite_storage import SqliteWorkerQualityStore
from repro.system import DocsConfig, DocsSystem

WORKERS = [f"w{i}" for i in range(4)]


@pytest.fixture()
def dataset():
    return make_dataset("4d", seed=31, tasks_per_domain=8)


def _config(**overrides):
    base = dict(
        golden_count=6,
        rerun_interval=50,
        hit_size=3,
        journal_batch_size=4,
        snapshot_every_batches=0,
        commit_retry_attempts=3,
        commit_retry_base_delay=0.0,
    )
    base.update(overrides)
    return DocsConfig(**base)


def _golden_answers(system, dataset, worker):
    return [
        Answer(worker, tid, dataset.task_by_id(tid).ground_truth)
        for tid in system.golden_task_ids()
    ]


def _drive(system, dataset, arrivals, start=0):
    accepted = 0
    for arrival in range(start, arrivals):
        worker = WORKERS[arrival % len(WORKERS)]
        if system.needs_bootstrap(worker):
            system.bootstrap(
                worker, _golden_answers(system, dataset, worker)
            )
        for task_id in system.assign(worker, 2):
            ell = dataset.task_by_id(task_id).num_choices
            choice = 1 + (task_id * 3 + arrival) % ell
            system.submit(Answer(worker, task_id, choice))
            accepted += 1
    return accepted


class TestDegradedServing:
    def test_outage_degrades_and_serving_continues(
        self, dataset, tmp_path
    ):
        path = str(tmp_path / "campaign.db")
        system = DocsSystem(_config(), storage="sqlite", path=path)
        system.prepare(dataset)
        _drive(system, dataset, 4)
        system.checkpoint()
        assert system.durability_status()["mode"] == "durable"

        with faults.injected() as injector:
            # A real outage hits every durable write: the journal's
            # batch flushes AND checkpoint's snapshot transaction
            # (which embeds its flush and has its own fault point).
            injector.arm(
                "journal.flush.pre-commit", "locked", times=-1
            )
            injector.arm(
                "snapshot.write.post-crc", "locked", times=-1
            )
            # Keep driving through the outage: every flush attempt
            # fails after its retry budget, yet serving never stops.
            _drive(system, dataset, 10, start=4)
            status = system.durability_status()
            assert status["mode"] == "degraded"
            assert status["degraded"]
            assert "locked" in status["reason"]
            assert status["buffered_events"] > 0
            # Reads and assignment still serve from memory.
            assert system.assign(WORKERS[0], 2)

            # checkpoint() during the outage surfaces the failure and
            # stays degraded.
            with pytest.raises(sqlite3.OperationalError):
                system.checkpoint()
            assert system.durability_status()["mode"] == "degraded"

        # Outage over: one checkpoint drains the backlog.
        system.checkpoint()
        status = system.durability_status()
        assert status["mode"] == "durable"
        assert status["reason"] is None
        assert status["buffered_events"] == 0

    def test_zero_accepted_answers_lost_after_recovery(
        self, dataset, tmp_path
    ):
        path = str(tmp_path / "campaign.db")
        system = DocsSystem(_config(), storage="sqlite", path=path)
        system.prepare(dataset)
        with faults.injected() as injector:
            injector.arm(
                "journal.flush.pre-commit", "locked", times=-1
            )
            _drive(system, dataset, 12)
        accepted = len(system.database.answers.all())
        assert system.durability_status()["mode"] == "degraded"

        system.checkpoint()  # outage over: everything commits
        # Simulated kill + resume: every accepted answer survived.
        resumed = DocsSystem.resume(path, config=_config())
        assert len(resumed.database.answers.all()) == accepted
        assert resumed._bootstrapped == system._bootstrapped
        resumed.close()

    def test_degraded_mode_buffers_are_the_crash_window(
        self, dataset, tmp_path
    ):
        """Without a successful checkpoint the buffered events ARE
        lost on a kill — degradation defers durability, it does not
        fake it. The resumed prefix is exactly the pre-outage state."""
        path = str(tmp_path / "campaign.db")
        system = DocsSystem(_config(), storage="sqlite", path=path)
        system.prepare(dataset)
        _drive(system, dataset, 4)
        system.checkpoint()
        durable_count = len(system.database.answers.all())

        with faults.injected() as injector:
            injector.arm(
                "journal.flush.pre-commit", "locked", times=-1
            )
            _drive(system, dataset, 10, start=4)
            assert system.durability_status()["mode"] == "degraded"
            # Killed mid-outage: no checkpoint ever succeeded.

        resumed = DocsSystem.resume(path, config=_config())
        assert len(resumed.database.answers.all()) == durable_count
        resumed.close()


class TestSharedStoreBacklog:
    def test_export_backlog_drains_on_checkpoint(
        self, dataset, tmp_path
    ):
        m = dataset.taxonomy.size
        store = SqliteWorkerQualityStore(
            m, path=str(tmp_path / "store.db")
        )
        system = DocsSystem(
            _config(), storage="sqlite",
            path=str(tmp_path / "campaign.db"), worker_store=store,
        )
        system.prepare(dataset)
        worker = WORKERS[0]
        golden = _golden_answers(system, dataset, worker)

        with faults.injected() as injector:
            injector.arm("worker_store.apply_delta", "locked", times=-1)
            system.bootstrap(worker, golden)
            status = system.durability_status()
            assert status["mode"] == "degraded"
            assert status["queued_exports"] == 1
            assert worker not in store  # nothing half-merged

        system.checkpoint()
        status = system.durability_status()
        assert status["mode"] == "durable"
        assert status["queued_exports"] == 0

        # The drained delta matches a fault-free control campaign's
        # export exactly.
        control_store = SqliteWorkerQualityStore(
            m, path=str(tmp_path / "control-store.db")
        )
        control = DocsSystem(
            _config(), storage="sqlite", path=":memory:",
            worker_store=control_store,
        )
        control.prepare(dataset)
        control.bootstrap(worker, golden)
        got, want = store.get(worker), control_store.get(worker)
        assert np.allclose(got.quality, want.quality)
        assert np.allclose(got.weight, want.weight)
        control.close()
        system.close()
        store.close()
        control_store.close()

    def test_flush_outage_queues_exports_durable_first(
        self, dataset, tmp_path
    ):
        """While the campaign journal cannot flush, bootstrap evidence
        must NOT reach the shared store (durable-first): it queues."""
        m = dataset.taxonomy.size
        store = SqliteWorkerQualityStore(
            m, path=str(tmp_path / "store.db")
        )
        system = DocsSystem(
            _config(journal_batch_size=64), storage="sqlite",
            path=str(tmp_path / "campaign.db"), worker_store=store,
        )
        system.prepare(dataset)
        worker = WORKERS[0]

        with faults.injected() as injector:
            injector.arm(
                "journal.flush.pre-commit", "locked", times=-1
            )
            system.bootstrap(
                worker, _golden_answers(system, dataset, worker)
            )
            status = system.durability_status()
            assert status["mode"] == "degraded"
            assert status["queued_exports"] == 1
            assert worker not in store

        system.checkpoint()
        assert worker in store
        system.close()
        store.close()
