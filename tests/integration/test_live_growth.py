"""Live task growth vs preparing the union up front.

The acceptance property of the ingest plane: a campaign that prepares
half the tasks, serves answers mid-run, grows the pool with
``add_tasks``, and keeps serving must end with inference results
identical to a system that was prepared with the full union from the
start and fed the same answer stream.
"""

import numpy as np
import pytest

from repro.core.types import Answer
from repro.datasets import make_dataset
from repro.errors import ValidationError
from repro.system import DocsConfig, DocsSystem


def _fresh_halves(seed=41, tasks_per_domain=8):
    dataset = make_dataset("4d", seed=seed, tasks_per_domain=tasks_per_domain)
    half = len(dataset.tasks) // 2
    return dataset, dataset.tasks[:half], dataset.tasks[half:]


def _config():
    return DocsConfig(golden_count=0, rerun_interval=7, hit_size=3)


class TestGrowthEquivalence:
    def test_mid_run_growth_matches_union_prepare(self):
        # --- grown system: prepare A, serve, add B, serve more.
        dataset, first, second = _fresh_halves()
        dataset.tasks = list(first)
        dataset.task_labels = dataset.task_labels[: len(first)]
        grown = DocsSystem(_config())
        grown.prepare(dataset)

        rng = np.random.default_rng(5)
        answers = []

        def serve(system, workers, rounds):
            for _ in range(rounds):
                for worker in workers:
                    for task_id in system.assign(worker):
                        ell = system.database.task(task_id).num_choices
                        answer = Answer(
                            worker, task_id, int(rng.integers(1, ell + 1))
                        )
                        system.submit(answer)
                        answers.append(answer)

        serve(grown, ("w1", "w2", "w3"), rounds=2)
        grown.add_tasks(second)
        serve(grown, ("w4", "w5", "w6"), rounds=2)
        grown_truths = grown.finalize()

        # --- union system: everything prepared up front, same answers.
        union_dataset = make_dataset("4d", seed=41, tasks_per_domain=8)
        union = DocsSystem(_config())
        union.prepare(union_dataset)
        for answer in answers:
            union.submit(answer)
        union_truths = union.finalize()

        assert grown_truths == union_truths
        # The probabilistic state agrees too, not just the argmax.
        for task_id in grown_truths:
            np.testing.assert_allclose(
                grown._incremental.state(task_id).s,
                union._incremental.state(task_id).s,
                atol=1e-9,
            )
        # Worker models converge to the same place.
        for worker in ("w1", "w4"):
            np.testing.assert_allclose(
                grown.quality_store.quality_or_default(worker),
                union.quality_store.quality_or_default(worker),
                atol=1e-9,
            )

    def test_grown_tasks_reach_assignment_immediately(self):
        dataset, first, second = _fresh_halves(seed=43)
        dataset.tasks = list(first)
        dataset.task_labels = dataset.task_labels[: len(first)]
        system = DocsSystem(_config())
        system.prepare(dataset)
        # Exhaust the original pool for one worker.
        for task in first:
            system.submit(Answer("w", task.task_id, 1))
        assert system.assign("w", k=5) == []
        system.add_tasks(second)
        hit = system.assign("w", k=5)
        assert hit
        assert set(hit) <= {t.task_id for t in second}

    def test_growth_batches_are_atomic(self):
        dataset, first, second = _fresh_halves(seed=47)
        dataset.tasks = list(first)
        dataset.task_labels = dataset.task_labels[: len(first)]
        system = DocsSystem(_config())
        system.prepare(dataset)
        bad_batch = list(second) + [first[0]]
        with pytest.raises(ValidationError):
            system.add_tasks(bad_batch)
        # Nothing from the rejected batch leaked into the pool.
        assert len(system.database) == len(first)
        assert system.assign("w", k=100) == [
            t for t in system.assign("w", k=100)
        ]
        pool = {t.task_id for t in first}
        assert set(system.assign("w", k=100)) <= pool
