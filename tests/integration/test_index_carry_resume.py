"""Index-carrying snapshots: O(snapshot + tail) resume, same answers.

Two campaigns run the identical script against truncated journals —
one snapshotting with ``snapshot_carry_index=True`` (the v2 format
that serialises the answer-log index columns), one with ``False``
(the pre-v2 layout, standing in for snapshots written before the
feature existed). Resume must pick ``index-carry`` for the first and
fall back to the ``archive-scan`` path for the second, and the two
resumed systems must be bit-identical — to each other and to a
campaign that never stopped.
"""

import numpy as np
import pytest

from repro.core.types import Answer
from repro.datasets import make_dataset
from repro.system import DocsConfig, DocsSystem

WORKERS = [f"w{i}" for i in range(6)]


@pytest.fixture()
def dataset():
    return make_dataset("4d", seed=47, tasks_per_domain=8)


def _config(carry=True):
    return DocsConfig(
        golden_count=6,
        rerun_interval=20,
        hit_size=3,
        journal_batch_size=8,
        truncate_journal=True,
        snapshot_carry_index=carry,
    )


def _golden_answers(system, dataset, worker):
    return [
        Answer(worker, tid, dataset.task_by_id(tid).ground_truth)
        for tid in system.golden_task_ids()
    ]


def _drive(system, dataset, arrivals, start=0):
    for arrival in range(start, arrivals):
        worker = WORKERS[arrival % len(WORKERS)]
        if system.needs_bootstrap(worker):
            system.bootstrap(
                worker, _golden_answers(system, dataset, worker)
            )
        for task_id in system.assign(worker, 2):
            ell = dataset.task_by_id(task_id).num_choices
            choice = 1 + (task_id * 3 + arrival) % ell
            system.submit(Answer(worker, task_id, choice))


def _fingerprint(system):
    states = {
        tid: (
            system._incremental.state(tid).s.copy(),
            system._incremental.state(tid).M.copy(),
        )
        for tid in system.database.task_ids()
    }
    qualities = {
        w: system.quality_store.get(w)
        for w in sorted(system.quality_store.known_workers())
    }
    return states, qualities


def _assert_same_state(left, right):
    l_states, l_quals = _fingerprint(left)
    r_states, r_quals = _fingerprint(right)
    assert set(l_states) == set(r_states)
    for tid in l_states:
        assert np.array_equal(l_states[tid][0], r_states[tid][0]), tid
        assert np.array_equal(l_states[tid][1], r_states[tid][1]), tid
    assert set(l_quals) == set(r_quals)
    for w in l_quals:
        assert np.array_equal(l_quals[w].quality, r_quals[w].quality), w
        assert np.array_equal(l_quals[w].weight, r_quals[w].weight), w
    assert len(left._log) == len(right._log)


def _killed_campaign(path, dataset, carry, kill_at, tail):
    """Checkpoint (snapshot + journal truncation), keep serving a
    tail, then abandon the system without closing it."""
    system = DocsSystem(_config(carry), storage="sqlite", path=path)
    system.prepare(dataset)
    _drive(system, dataset, kill_at)
    system.checkpoint()
    archived = system.database._conn.execute(
        "SELECT COUNT(*) FROM answers_archive"
    ).fetchone()[0]
    assert archived > 0, "campaign too short to archive anything"
    _drive(system, dataset, kill_at + tail, start=kill_at)
    system.database.journal.flush()
    return archived


class TestIndexCarryResume:
    KILL_AT, TAIL, TOTAL = 17, 7, 36

    @pytest.fixture()
    def resumed_pair(self, dataset, tmp_path):
        """The same killed campaign resumed through both restore
        paths. Both files are resumed with the *default* (carry=True)
        config: the restore path is a property of the snapshot in the
        file, so the carry=False file exercises the old-snapshot
        fallback even under new configuration."""
        paths = {}
        for carry in (True, False):
            path = str(tmp_path / f"carry_{carry}.db")
            _killed_campaign(
                path, dataset, carry, self.KILL_AT, self.TAIL
            )
            paths[carry] = path
        return {
            carry: DocsSystem.resume(path, config=_config(True))
            for carry, path in paths.items()
        }

    def test_restore_paths_reported(self, resumed_pair):
        carry_info = resumed_pair[True].resume_info
        scan_info = resumed_pair[False].resume_info
        assert carry_info["restore_path"] == "index-carry"
        assert scan_info["restore_path"] == "archive-scan"
        for info in (carry_info, scan_info):
            assert info["snapshot_seq"] is not None
            assert info["tail_entries"] > 0

    def test_restore_paths_bit_identical(self, resumed_pair):
        _assert_same_state(resumed_pair[True], resumed_pair[False])
        # The lazily-hydrated answer views agree too.
        left, right = resumed_pair[True], resumed_pair[False]
        for tid in left.database.task_ids():
            assert left.database.answers.for_task(
                tid
            ) == right.database.answers.for_task(tid), tid

    def test_resumed_equals_uninterrupted(
        self, dataset, tmp_path, resumed_pair
    ):
        straight = DocsSystem(
            _config(True),
            storage="sqlite",
            path=str(tmp_path / "straight.db"),
        )
        straight.prepare(dataset)
        _drive(straight, dataset, self.TOTAL)

        for system in resumed_pair.values():
            _drive(
                system,
                dataset,
                self.TOTAL,
                start=self.KILL_AT + self.TAIL,
            )
            _assert_same_state(straight, system)
            assert straight.current_truths() == system.current_truths()

    def test_analytics_agree_across_restore_paths(self, resumed_pair):
        from repro.analytics import QUERY_NAMES

        left, right = resumed_pair[True], resumed_pair[False]
        for name in QUERY_NAMES:
            assert left.analytics(name) == right.analytics(name), name
