"""Lock contention on shared durable files is retried, never fatal.

Two scenarios:

- **Interleaved campaigns, injected contention** — two campaigns
  export into one shared worker store; the store's delta transaction
  is armed to fail with ``database is locked`` on the first attempts.
  The retry policy must absorb the contention and both campaigns'
  evidence must land exactly once.
- **Real two-process contention** — a subprocess holds a write
  transaction (``BEGIN IMMEDIATE``) on the campaign file while the
  main process checkpoints with ``busy_timeout_ms=0`` (SQLite's own
  spin-wait disabled), forcing the Python-level backoff loop to do the
  work.
"""

import sqlite3
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core.types import Answer
from repro.datasets import make_dataset
from repro.platform import faults
from repro.platform.retry import RetryPolicy
from repro.platform.sqlite_storage import SqliteWorkerQualityStore
from repro.system import DocsConfig, DocsSystem

WORKERS = [f"w{i}" for i in range(4)]


@pytest.fixture()
def dataset():
    return make_dataset("4d", seed=31, tasks_per_domain=8)


def _config(**overrides):
    base = dict(
        golden_count=6,
        rerun_interval=50,
        hit_size=3,
        journal_batch_size=8,
        snapshot_every_batches=0,
        commit_retry_attempts=8,
        commit_retry_base_delay=0.05,
    )
    base.update(overrides)
    return DocsConfig(**base)


def _golden_answers(system, dataset, worker):
    return [
        Answer(worker, tid, dataset.task_by_id(tid).ground_truth)
        for tid in system.golden_task_ids()
    ]


class TestInterleavedCampaignContention:
    def test_store_deltas_survive_injected_lock_storm(
        self, dataset, tmp_path
    ):
        """Two campaigns bootstrap the same worker into one shared
        store while its delta transaction hits ``database is locked``
        on the first attempts. The retries must fold both campaigns'
        evidence without loss or double count."""
        m = dataset.taxonomy.size
        fast_retry = RetryPolicy(
            attempts=5, base_delay=0.0, max_delay=0.0, jitter=0.0
        )
        store = SqliteWorkerQualityStore(
            m, path=str(tmp_path / "store.db"), retry=fast_retry
        )
        worker = "shared-worker"

        systems = []
        for name in ("a", "b"):
            system = DocsSystem(
                _config(), storage="sqlite",
                path=str(tmp_path / f"{name}.db"), worker_store=store,
            )
            system.prepare(dataset)
            systems.append(system)

        with faults.injected() as injector:
            # Campaign A's export: first two transaction attempts see
            # the lock, the third commits.
            injector.arm("worker_store.apply_delta", "locked", times=2)
            systems[0].bootstrap(
                worker, _golden_answers(systems[0], dataset, worker)
            )
            assert injector.triggered("worker_store.apply_delta") == 2
            assert systems[0].durability_status()["mode"] == "durable"
            # Campaign B interleaves with its own lock storm. B sees
            # the worker in the store now, so it skips the golden
            # pre-test and exports at its first full-TI boundary
            # instead; force one via finalize().
            injector.arm("worker_store.apply_delta", "locked", times=2)
            for task_id in systems[1].assign(worker, 2):
                ell = dataset.task_by_id(task_id).num_choices
                systems[1].submit(
                    Answer(worker, task_id, 1 + task_id % ell)
                )
            systems[1].finalize()
        assert worker in store

        # The fold result equals a contention-free control sequence.
        control_store = SqliteWorkerQualityStore(
            m, path=str(tmp_path / "control.db")
        )
        controls = []
        for name in ("ca", "cb"):
            control = DocsSystem(
                _config(), storage="sqlite", path=":memory:",
                worker_store=control_store,
            )
            control.prepare(dataset)
            controls.append(control)
        controls[0].bootstrap(
            worker, _golden_answers(controls[0], dataset, worker)
        )
        for task_id in controls[1].assign(worker, 2):
            ell = dataset.task_by_id(task_id).num_choices
            controls[1].submit(Answer(worker, task_id, 1 + task_id % ell))
        controls[1].finalize()

        got, want = store.get(worker), control_store.get(worker)
        assert np.allclose(got.quality, want.quality)
        assert np.allclose(got.weight, want.weight)
        for system in systems + controls:
            system.close()
        store.close()
        control_store.close()


#: Holds a write lock on the given database for --hold seconds.
_LOCK_HOLDER = """
import sqlite3, sys, time
path, hold = sys.argv[1], float(sys.argv[2])
conn = sqlite3.connect(path)
conn.execute("BEGIN IMMEDIATE")
print("locked", flush=True)
time.sleep(hold)
conn.rollback()
conn.close()
print("released", flush=True)
"""


class TestTwoProcessContention:
    def test_checkpoint_outlasts_a_foreign_write_lock(
        self, dataset, tmp_path
    ):
        path = str(tmp_path / "campaign.db")
        # busy_timeout_ms=0 disables SQLite's own spin-wait: every
        # lock collision surfaces immediately and only the Python
        # retry loop can save the commit.
        config = _config(busy_timeout_ms=0)
        system = DocsSystem(config, storage="sqlite", path=path)
        system.prepare(dataset)
        worker = WORKERS[0]
        system.bootstrap(
            worker, _golden_answers(system, dataset, worker)
        )
        for task_id in system.assign(worker, 2):
            ell = dataset.task_by_id(task_id).num_choices
            system.submit(Answer(worker, task_id, 1 + task_id % ell))

        holder = subprocess.Popen(
            [sys.executable, "-c", _LOCK_HOLDER, path, "0.6"],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            assert holder.stdout.readline().strip() == "locked"
            started = time.monotonic()
            flushed = system.checkpoint()  # must retry through the lock
            elapsed = time.monotonic() - started
        finally:
            holder.wait(timeout=30)
        assert flushed > 0
        # The checkpoint really did wait out the foreign lock rather
        # than sneaking in before it was taken.
        assert elapsed > 0.05
        assert system.durability_status()["mode"] == "durable"
        system.close()

        resumed = DocsSystem.resume(path, config=config)
        assert len(resumed.database.answers.all()) == 2
        resumed.close()
