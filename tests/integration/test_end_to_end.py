"""Cross-module integration tests: the paper's claims at small scale."""

import numpy as np
import pytest

from repro.baselines import make_truth_method
from repro.baselines.engines import RandomBaselineEngine
from repro.crowd.worker_pool import WorkerPool, WorkerPoolConfig
from repro.experiments import build_context
from repro.experiments.fig5 import run_ti_comparison
from repro.platform.amt_sim import PlatformSimulator
from repro.system import DocsConfig, DocsSystem


@pytest.fixture(scope="module")
def contexts():
    """Scaled-down Item and 4D contexts shared across claims."""
    return {
        name: build_context(
            name,
            seed=61,
            answers_per_task=8,
            golden_count=12,
            pool_size=25,
            dataset_overrides={"tasks_per_domain": 25},
        )
        for name in ("item", "4d")
    }


class TestHeadlineClaims:
    def test_docs_ti_beats_majority_vote(self, contexts):
        """The core Figure 5 ordering at reduced scale."""
        for context in contexts.values():
            result = run_ti_comparison(context, methods=("MV", "DOCS"))
            assert result.accuracy["DOCS"] > result.accuracy["MV"]

    def test_domain_blind_below_docs(self, contexts):
        # At this reduced scale seed noise can move single methods a few
        # points; the full-scale benchmark (benchmarks/fig5) checks the
        # strict ordering. Here: DOCS must be competitive with the
        # domain-blind EMs within noise.
        result = run_ti_comparison(
            contexts["4d"], methods=("ZC", "DS", "DOCS")
        )
        assert result.accuracy["DOCS"] >= result.accuracy["ZC"] - 5.0
        assert result.accuracy["DOCS"] >= result.accuracy["DS"] - 5.0

    def test_dve_detects_domains_on_lookalike_templates(self, contexts):
        """4D's cross-domain lookalikes must not fool the KB linker."""
        context = contexts["4d"]
        correct = sum(
            int(np.argmax(t.domain_vector)) == t.true_domain
            for t in context.dataset.tasks
        )
        assert correct / context.dataset.num_tasks > 0.85

    def test_end_to_end_docs_above_random(self, contexts):
        context = contexts["item"]
        docs_sim = PlatformSimulator(
            context.dataset,
            context.pool,
            answers_per_task=6,
            hit_size=3,
            seed=62,
        )
        docs = docs_sim.run(
            DocsSystem(DocsConfig(golden_count=12, rerun_interval=60))
        )
        base_sim = PlatformSimulator(
            context.dataset,
            context.pool,
            answers_per_task=6,
            hit_size=3,
            seed=62,
        )
        baseline = base_sim.run(RandomBaselineEngine(seed=63))
        assert docs.accuracy >= baseline.accuracy


class TestWorkerModelPersistence:
    def test_quality_survives_between_campaigns(self, contexts):
        """Section 4.2: workers' qualities are maintained across
        requesters via Theorem 1 — a second campaign can start from the
        first campaign's estimates."""
        context = contexts["item"]
        system = DocsSystem(DocsConfig(golden_count=12, rerun_interval=60))
        simulator = PlatformSimulator(
            context.dataset,
            context.pool,
            answers_per_task=4,
            hit_size=3,
            seed=64,
        )
        simulator.run(system)
        store = system.quality_store
        known = list(store.known_workers())
        assert known
        # Qualities are in range and weights positive for active workers.
        for worker_id in known:
            stats = store.get(worker_id)
            assert np.all(stats.quality >= 0.0)
            assert np.all(stats.quality <= 1.0)
            assert stats.weight.sum() > 0


class TestAnswerBookkeeping:
    def test_no_worker_answers_twice(self, contexts):
        context = contexts["item"]
        system = DocsSystem(DocsConfig(golden_count=0, rerun_interval=50))
        simulator = PlatformSimulator(
            context.dataset,
            context.pool,
            answers_per_task=4,
            hit_size=3,
            seed=65,
        )
        report = simulator.run(system)
        seen = set()
        for answer in system.database.answers.all():
            key = (answer.worker_id, answer.task_id)
            assert key not in seen
            seen.add(key)
        assert len(seen) == report.total_answers
