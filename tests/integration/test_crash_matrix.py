"""Crash-safety matrix: kill a live campaign at every fault point.

Every named fault point in :mod:`repro.platform.faults` gets a matrix
entry: a campaign is driven with ``journal_batch_size=1`` (one committed
batch per event-producing operation), killed by an injected
:class:`~repro.platform.faults.CrashPoint` at the armed instant, and
rebuilt with :meth:`DocsSystem.resume`. The oracle:

1. the committed event count read from the crashed file must land on an
   *operation boundary* (a bootstrap's answers + marker commit as one
   batch; each submit as another) — a mid-operation count means a torn
   batch, which the journal's atomicity forbids;
2. a reference campaign driven through exactly that operation prefix —
   same deterministic script, no faults — must fingerprint
   bit-identically to the resumed system: a crash loses at most the
   in-flight (uncommitted) operation, never a committed one;
3. the resumed campaign keeps serving (assignments come back).

``journal.flush.pre-commit`` additionally pins the committed count to
exactly the pre-crash boundary (the in-flight batch rolled back);
``journal.flush.post-commit`` pins it one operation later (the batch
committed before the kill).
"""

import sqlite3

import numpy as np
import pytest

from repro.core.types import Answer
from repro.datasets import make_dataset
from repro.platform import faults
from repro.platform.faults import FAULT_POINTS, CrashPoint
from repro.platform.sqlite_storage import SqliteWorkerQualityStore
from repro.system import DocsConfig, DocsSystem

WORKERS = [f"w{i}" for i in range(6)]
ARRIVALS = 30

#: skip = how many hits pass before the kill, placing the crash
#: mid-campaign. expect_ops: exact committed-operation count, when the
#: point's semantics pin it (None = derive from the file alone).
MATRIX = {
    "journal.flush.pre-commit": {"skip": 20, "expect_ops": 20},
    "journal.flush.post-commit": {"skip": 20, "expect_ops": 21},
    "snapshot.write.post-crc": {"skip": 1, "expect_ops": None},
    "snapshot.write.mid-transaction": {"skip": 1, "expect_ops": None},
    "snapshot.write.post-commit": {"skip": 1, "expect_ops": None},
}

#: Points whose crash semantics need a dedicated scenario instead of
#: the kill-mid-campaign template. The ``parallel.*`` points fire in
#: forked children and degrade, not crash — their scenarios live in
#: ``tests/system/test_parallel.py``.
DEDICATED = {
    "db.connect",
    "worker_store.apply_delta",
    "parallel.worker.serve",
    "parallel.rerun.shard",
    "parallel.link.worker",
}


def test_matrix_covers_every_fault_point():
    """Adding a fault point without a crash test must fail loudly."""
    assert set(MATRIX) | DEDICATED == set(FAULT_POINTS)


@pytest.fixture()
def dataset():
    return make_dataset("4d", seed=31, tasks_per_domain=8)


def _config():
    return DocsConfig(
        golden_count=6,
        rerun_interval=20,
        hit_size=3,
        journal_batch_size=1,
        snapshot_every_batches=6,
        commit_retry_attempts=2,
        commit_retry_base_delay=0.0,
    )


def _golden_answers(system, dataset, worker):
    return [
        Answer(worker, tid, dataset.task_by_id(tid).ground_truth)
        for tid in system.golden_task_ids()
    ]


def _drive_ops(system, dataset, arrivals, stop_after_events=None):
    """The deterministic campaign script, one journal-visible operation
    at a time.

    Returns ``(events, ops)``: total journal events produced and the
    number of operations performed. With ``stop_after_events`` the
    drive stops at the first operation boundary at or past the target —
    the caller asserts the boundary landed *exactly* on it.
    """
    events = 0
    ops = 0
    for arrival in range(arrivals):
        worker = WORKERS[arrival % len(WORKERS)]
        if system.needs_bootstrap(worker):
            golden = _golden_answers(system, dataset, worker)
            system.bootstrap(worker, golden)
            events += len(golden) + 1  # answers + completion marker
            ops += 1
            if stop_after_events is not None and (
                events >= stop_after_events
            ):
                return events, ops
        for task_id in system.assign(worker, 2):
            ell = dataset.task_by_id(task_id).num_choices
            choice = 1 + (task_id * 3 + arrival) % ell
            system.submit(Answer(worker, task_id, choice))
            events += 1
            ops += 1
            if stop_after_events is not None and (
                events >= stop_after_events
            ):
                return events, ops
    return events, ops


def _committed_events(path):
    """Journal events durable in the (crashed) campaign file."""
    conn = sqlite3.connect(path)
    try:
        (live,) = conn.execute(
            "SELECT COUNT(*) FROM answers_log"
        ).fetchone()
        (archived,) = conn.execute(
            "SELECT COUNT(*) FROM answers_archive"
        ).fetchone()
        return int(live) + int(archived)
    finally:
        conn.close()


def _fingerprint(system):
    states = {
        tid: (
            system._incremental.state(tid).s.copy(),
            system._incremental.state(tid).M.copy(),
        )
        for tid in system.database.task_ids()
    }
    qualities = {
        w: system.quality_store.get(w)
        for w in sorted(system.quality_store.known_workers())
    }
    return states, qualities


def _assert_same_state(left, right):
    l_states, l_quals = _fingerprint(left)
    r_states, r_quals = _fingerprint(right)
    assert set(l_states) == set(r_states)
    for tid in l_states:
        assert np.array_equal(l_states[tid][0], r_states[tid][0]), tid
        assert np.array_equal(l_states[tid][1], r_states[tid][1]), tid
    assert set(l_quals) == set(r_quals)
    for w in l_quals:
        assert np.array_equal(l_quals[w].quality, r_quals[w].quality), w
        assert np.array_equal(l_quals[w].weight, r_quals[w].weight), w
    assert len(left._log) == len(right._log)
    assert (
        left._submissions_since_rerun == right._submissions_since_rerun
    )
    assert left._bootstrapped == right._bootstrapped


class TestCrashMatrix:
    @pytest.mark.parametrize("point", sorted(MATRIX))
    def test_kill_at_fault_point_then_resume(
        self, point, dataset, tmp_path
    ):
        entry = MATRIX[point]
        crash_path = str(tmp_path / "crash.db")

        victim = DocsSystem(
            _config(), storage="sqlite", path=crash_path
        )
        with faults.injected() as injector:
            victim.prepare(dataset)
            injector.arm(point, "crash", skip=entry["skip"])
            with pytest.raises(CrashPoint):
                _drive_ops(victim, dataset, ARRIVALS)
            assert injector.triggered(point) == 1
        # Simulated kill: the victim is abandoned, never closed.

        committed = _committed_events(crash_path)
        assert committed > 0, "the kill fired before any durable work"

        # Oracle 2: a fault-free reference driven to exactly the
        # committed prefix...
        reference = DocsSystem(
            _config(), storage="sqlite", path=":memory:"
        )
        reference.prepare(dataset)
        ref_events, ref_ops = _drive_ops(
            reference, dataset, ARRIVALS, stop_after_events=committed
        )
        # ...Oracle 1: which must land exactly on an operation
        # boundary, or the crash tore a batch.
        assert ref_events == committed, (
            f"committed event count {committed} is not an operation "
            f"boundary (nearest boundary past it: {ref_events})"
        )
        if entry["expect_ops"] is not None:
            assert ref_ops == entry["expect_ops"]

        resumed = DocsSystem.resume(crash_path, config=_config())
        _assert_same_state(reference, resumed)

        # Oracle 3: the resumed campaign serves.
        picks = resumed.assign(WORKERS[0], 2)
        assert picks == reference.assign(WORKERS[0], 2)
        resumed.close()
        reference.close()


class TestDbConnectCrash:
    def test_crash_on_connect_leaves_file_resumable(
        self, dataset, tmp_path
    ):
        path = str(tmp_path / "campaign.db")
        system = DocsSystem(_config(), storage="sqlite", path=path)
        system.prepare(dataset)
        _drive_ops(system, dataset, 8)
        system.checkpoint()
        # Abandoned (killed) with a healthy file on disk.

        with faults.injected() as injector:
            injector.arm("db.connect", "crash")
            with pytest.raises(CrashPoint):
                DocsSystem.resume(path, config=_config())
        # The kill hit before the connection opened: nothing changed,
        # a later resume succeeds against the intact file.
        resumed = DocsSystem.resume(path, config=_config())
        _assert_same_state(system, resumed)
        resumed.close()


class TestWorkerStoreCrash:
    def test_crash_in_shared_export_undercounts_never_corrupts(
        self, dataset, tmp_path
    ):
        """Durable-first export: a kill inside the shared store's delta
        transaction loses that one delta (bounded under-count) but the
        campaign file already holds the flushed evidence, and both
        files stay consistent."""
        store_path = str(tmp_path / "store.db")
        campaign_path = str(tmp_path / "campaign.db")
        m = dataset.taxonomy.size
        store = SqliteWorkerQualityStore(m, path=store_path)
        victim = DocsSystem(
            _config(), storage="sqlite", path=campaign_path,
            worker_store=store,
        )
        with faults.injected() as injector:
            victim.prepare(dataset)
            # The first bootstrap's golden-evidence export dies inside
            # the store transaction.
            injector.arm("worker_store.apply_delta", "crash")
            with pytest.raises(CrashPoint):
                _drive_ops(victim, dataset, ARRIVALS)
            assert injector.triggered("worker_store.apply_delta") == 1
        store.close()
        # Both processes die. The store rolled its transaction back:
        # the worker is absent, not half-written.
        store2 = SqliteWorkerQualityStore(m, path=store_path)
        assert WORKERS[0] not in store2

        # The campaign file is consistent and resumable — the bootstrap
        # was flushed before the export was attempted.
        resumed = DocsSystem.resume(
            campaign_path, config=_config(), worker_store=store2
        )
        assert WORKERS[0] in resumed._bootstrapped
        assert resumed.assign(WORKERS[0], 2)
        resumed.close()
        store2.close()
