"""Compacted snapshots: resume loads an image, replays only the tail.

The acceptance bar for the snapshot plane: kill-and-resume from a
snapshot plus a journal tail must reproduce the hot state bit-for-bit
(exactly like full replay does), corrupt or stale snapshots must fall
back to full replay rather than fail, and only the newest snapshot is
ever kept in the file (compaction).
"""

import sqlite3

import numpy as np
import pytest

from repro.core.types import Answer
from repro.datasets import make_dataset
from repro.system import DocsConfig, DocsSystem

WORKERS = [f"w{i}" for i in range(6)]


@pytest.fixture()
def dataset():
    return make_dataset("4d", seed=31, tasks_per_domain=8)


def _config(**overrides):
    base = dict(
        golden_count=6,
        rerun_interval=20,
        hit_size=3,
        journal_batch_size=8,
        snapshot_every_batches=0,  # manual snapshots unless overridden
    )
    base.update(overrides)
    return DocsConfig(**base)


def _drive(system, dataset, arrivals, start=0):
    for arrival in range(start, arrivals):
        worker = WORKERS[arrival % len(WORKERS)]
        if system.needs_bootstrap(worker):
            system.bootstrap(
                worker,
                [
                    Answer(
                        worker, tid, dataset.task_by_id(tid).ground_truth
                    )
                    for tid in system.golden_task_ids()
                ],
            )
        for task_id in system.assign(worker, 2):
            ell = dataset.task_by_id(task_id).num_choices
            choice = 1 + (task_id * 3 + arrival) % ell
            system.submit(Answer(worker, task_id, choice))


def _assert_same_state(left, right):
    for tid in left.database.task_ids():
        l_state = left._incremental.state(tid)
        r_state = right._incremental.state(tid)
        assert np.array_equal(l_state.s, r_state.s), tid
        assert np.array_equal(l_state.M, r_state.M), tid
        assert np.array_equal(
            l_state.log_numerators, r_state.log_numerators
        ), tid
    l_workers = sorted(left.quality_store.known_workers())
    assert l_workers == sorted(right.quality_store.known_workers())
    for worker in l_workers:
        l_stats = left.quality_store.get(worker)
        r_stats = right.quality_store.get(worker)
        assert np.array_equal(l_stats.quality, r_stats.quality), worker
        assert np.array_equal(l_stats.weight, r_stats.weight), worker
    assert len(left._log) == len(right._log)
    assert left._submissions_since_rerun == right._submissions_since_rerun
    assert left._bootstrapped == right._bootstrapped


def _snapshot_counts(path):
    conn = sqlite3.connect(path)
    counts = tuple(
        conn.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
        for table in ("snapshot_meta", "snapshot_groups",
                      "snapshot_workers")
    )
    conn.close()
    return counts


class TestSnapshotResume:
    def test_snapshot_plus_tail_is_bit_identical(self, dataset, tmp_path):
        """Snapshot mid-campaign, keep going, flush the tail without a
        newer snapshot, kill — resume must equal the straight-through
        run exactly and report the snapshot + tail split."""
        total, snap_at = 36, 17
        straight = DocsSystem(
            _config(), storage="sqlite", path=str(tmp_path / "a.db")
        )
        straight.prepare(dataset)
        _drive(straight, dataset, total)

        crash_path = str(tmp_path / "b.db")
        crashed = DocsSystem(_config(), storage="sqlite", path=crash_path)
        crashed.prepare(dataset)
        _drive(crashed, dataset, snap_at)
        crashed.snapshot()
        _drive(crashed, dataset, total, start=snap_at)
        # Make the tail durable WITHOUT a newer snapshot, then "kill".
        crashed.database.journal.flush()

        resumed = DocsSystem.resume(crash_path, config=_config())
        assert resumed.resume_info["snapshot_seq"] is not None
        assert resumed.resume_info["tail_entries"] > 0

        _assert_same_state(straight, resumed)
        for worker in WORKERS:
            assert straight.assign(worker, 3) == resumed.assign(worker, 3)
        assert straight.finalize() == resumed.finalize()
        straight.close()
        resumed.close()

    def test_snapshot_resume_matches_full_replay(self, dataset, tmp_path):
        """The same file resumed with and without its snapshot must
        produce identical hot state — the snapshot is purely a
        shortcut."""
        path = str(tmp_path / "both.db")
        system = DocsSystem(_config(), storage="sqlite", path=path)
        system.prepare(dataset)
        _drive(system, dataset, 24)
        system.close()

        fast = DocsSystem.resume(path, config=_config())
        assert fast.resume_info["snapshot_seq"] is not None
        assert fast.resume_info["tail_entries"] == 0
        fast.close()

        conn = sqlite3.connect(path)
        conn.execute("DELETE FROM snapshot_meta")
        conn.commit()
        conn.close()
        slow = DocsSystem.resume(path, config=_config())
        assert slow.resume_info["snapshot_seq"] is None
        assert slow.resume_info["tail_entries"] > 0

        fast = DocsSystem.resume(path, config=_config())
        _assert_same_state(slow, fast)
        for worker in WORKERS:
            assert slow.assign(worker, 3) == fast.assign(worker, 3)
        slow.close()
        fast.close()

    def test_auto_snapshot_triggers_every_n_batches(
        self, dataset, tmp_path
    ):
        path = str(tmp_path / "auto.db")
        system = DocsSystem(
            _config(snapshot_every_batches=2),
            storage="sqlite",
            path=path,
        )
        system.prepare(dataset)
        assert _snapshot_counts(path)[0] == 0
        _drive(system, dataset, 20)  # many 8-event batches flush
        assert system.database.journal.flushed_batches >= 2
        meta, groups, workers = _snapshot_counts(path)
        assert meta == 1  # compaction: only the newest image survives
        assert groups >= 1 and workers >= 1
        # The campaign keeps running after auto-snapshots.
        _drive(system, dataset, 24, start=20)
        system.close()
        resumed = DocsSystem.resume(
            path, config=_config(snapshot_every_batches=2)
        )
        assert resumed.resume_info["snapshot_seq"] is not None
        resumed.close()

    def test_live_growth_after_snapshot_resumes(self, dataset, tmp_path):
        """Tasks added after the snapshot keep fresh state on resume;
        their post-snapshot answers replay through the tail."""
        from repro.core.types import Task

        path = str(tmp_path / "grow.db")
        system = DocsSystem(_config(), storage="sqlite", path=path)
        system.prepare(dataset)
        _drive(system, dataset, 12)
        system.snapshot()
        m = dataset.taxonomy.size
        new_task = Task(
            task_id=10_000,
            text="post-snapshot growth",
            num_choices=2,
            domain_vector=np.full(m, 1.0 / m),
        )
        system.add_tasks([new_task])
        system.submit(Answer("w0", 10_000, 1))
        system.database.journal.flush()

        resumed = DocsSystem.resume(path, config=_config())
        assert resumed.resume_info["snapshot_seq"] is not None
        assert 10_000 in resumed._incremental.arena
        _assert_same_state(system, resumed)
        system.close()
        resumed.close()


class TestSnapshotFallback:
    def _campaign(self, dataset, path, arrivals=24):
        system = DocsSystem(_config(), storage="sqlite", path=path)
        system.prepare(dataset)
        _drive(system, dataset, arrivals)
        system.close()

    def test_corrupt_snapshot_blob_falls_back(self, dataset, tmp_path):
        path = str(tmp_path / "corrupt.db")
        self._campaign(dataset, path)
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE snapshot_groups SET S = zeroblob(16)"
        )
        conn.commit()
        conn.close()

        reference = DocsSystem.resume(
            str(tmp_path / "corrupt.db"), config=_config()
        )
        assert reference.resume_info["snapshot_seq"] is None
        assert reference.resume_info["tail_entries"] > 0
        # Full replay still reproduces a serving-ready system.
        assert reference.assign("w0", 3)
        reference.close()

    def test_corrupt_snapshot_checksum_falls_back(
        self, dataset, tmp_path
    ):
        path = str(tmp_path / "sum.db")
        self._campaign(dataset, path)
        conn = sqlite3.connect(path)
        conn.execute("UPDATE snapshot_meta SET rerun_cursor = 999")
        conn.commit()
        conn.close()
        resumed = DocsSystem.resume(path, config=_config())
        assert resumed.resume_info["snapshot_seq"] is None
        resumed.close()

    def test_stale_watermark_falls_back(self, dataset, tmp_path):
        """A snapshot claiming journal rows that were deleted (the
        documented batch-drop remediation) must be rejected, not
        trusted."""
        path = str(tmp_path / "stale.db")
        self._campaign(dataset, path)
        conn = sqlite3.connect(path)
        (bad_batch,) = conn.execute(
            "SELECT MAX(batch) FROM journal_batches"
        ).fetchone()
        conn.execute(
            "DELETE FROM answers_log WHERE batch = ?", (bad_batch,)
        )
        conn.execute(
            "DELETE FROM journal_batches WHERE batch = ?", (bad_batch,)
        )
        conn.commit()
        conn.close()
        resumed = DocsSystem.resume(path, config=_config())
        assert resumed.resume_info["snapshot_seq"] is None
        resumed.close()

    def test_snapshot_requires_sqlite(self, dataset):
        from repro.errors import ValidationError

        system = DocsSystem(_config())
        system.prepare(dataset)
        with pytest.raises(ValidationError, match="sqlite"):
            system.snapshot()


class TestJournalTruncation:
    """config.truncate_journal: pre-watermark journal rows move to the
    archive after each snapshot; resume stays bit-identical through the
    snapshot path, and the (now impossible) full-replay fallback is
    refused with a clear error rather than silently rebuilding a
    partial campaign."""

    def test_truncated_resume_is_bit_identical(self, dataset, tmp_path):
        plain_path = str(tmp_path / "plain.db")
        plain = DocsSystem(
            _config(), storage="sqlite", path=plain_path
        )
        plain.prepare(dataset)
        _drive(plain, dataset, 28)
        plain.database.journal.flush()

        trunc_path = str(tmp_path / "trunc.db")
        truncating = DocsSystem(
            _config(truncate_journal=True, snapshot_every_batches=2),
            storage="sqlite",
            path=trunc_path,
        )
        truncating.prepare(dataset)
        _drive(truncating, dataset, 28)
        truncating.close()
        # Truncation actually happened: the live journal is shorter
        # than the campaign, and an archive exists.
        conn = sqlite3.connect(trunc_path)
        (archived,) = conn.execute(
            "SELECT COUNT(*) FROM answers_archive"
        ).fetchone()
        conn.close()
        assert archived > 0

        resumed = DocsSystem.resume(
            trunc_path,
            config=_config(truncate_journal=True,
                           snapshot_every_batches=2),
        )
        assert resumed.resume_info["snapshot_seq"] is not None
        _assert_same_state(plain, resumed)
        for worker in WORKERS:
            assert plain.assign(worker, 3) == resumed.assign(worker, 3)
        plain.close()
        resumed.close()

    def test_truncated_file_without_snapshot_refuses_resume(
        self, dataset, tmp_path
    ):
        from repro.errors import JournalCorruptionError

        path = str(tmp_path / "no-snap.db")
        system = DocsSystem(
            _config(truncate_journal=True),
            storage="sqlite",
            path=path,
        )
        system.prepare(dataset)
        _drive(system, dataset, 20)
        system.close()
        conn = sqlite3.connect(path)
        for table in (
            "snapshot_meta", "snapshot_groups", "snapshot_workers"
        ):
            conn.execute(f"DELETE FROM {table}")
        conn.commit()
        conn.close()
        with pytest.raises(JournalCorruptionError, match="truncated"):
            DocsSystem.resume(
                path, config=_config(truncate_journal=True)
            )
